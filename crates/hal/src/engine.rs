//! Deterministic virtual-time scheduling engine.
//!
//! The engine models a node as a set of *resources* (compute units, PCIe link
//! directions, NVLink, DMA engines) and *streams* (CUDA-stream-like FIFO
//! queues). Work is submitted as operations; each operation names the stream
//! it runs on, the resource it occupies, the amount of work (bytes for links,
//! parameters or FLOPs for compute), and the operations it must wait for.
//!
//! Scheduling is *greedy list scheduling in submission order*: an operation
//! starts at the latest of (a) the completion of its dependencies, (b) the
//! completion of the previous operation on its stream, and (c) the instant
//! its resource becomes free. This reproduces the semantics the paper relies
//! on — per-stream ordering, cross-stream events, full-duplex PCIe (H2D and
//! D2H are distinct resources), and exclusive occupancy of each direction —
//! while remaining fully deterministic.
//!
//! Every completed operation is recorded as an [`Interval`] so that
//! utilization timelines (paper Figures 3, 4, and 15) can be derived.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::fault::{FaultEvent, FaultPlan};
use crate::time::SimTime;

/// Identifies a resource registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub(crate) usize);

/// Identifies a stream registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub(crate) usize);

/// Identifies a submitted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub(crate) usize);

/// Classifies what a resource models; used when deriving utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ResourceKind {
    /// GPU execution units (updates, conversions, GEMMs).
    GpuCompute,
    /// Host CPU cores (optimizer updates, downscaling).
    CpuCompute,
    /// Host-to-device direction of a PCIe link.
    LinkH2D,
    /// Device-to-host direction of a PCIe link.
    LinkD2H,
    /// Device-to-device interconnect (NVLink).
    LinkD2D,
    /// Host DRAM bandwidth (allocation, memcpy, conversion on host).
    HostMemory,
    /// NVMe storage bandwidth (checkpointing / optional offload tier).
    Nvme,
}

/// A completed operation, recorded for telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// The resource the operation occupied (`None` for pure markers).
    pub resource: Option<ResourceId>,
    /// The stream the operation ran on.
    pub stream: StreamId,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Amount of work (bytes or parameters or FLOPs, by resource convention).
    pub work: f64,
    /// Free-form label (e.g., `"h2d:sg3:momentum"`).
    pub label: String,
    /// Training phase tag (e.g., `"forward"`, `"update"`).
    pub phase: String,
}

impl Interval {
    /// Duration of the interval.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Specification of one operation to submit to the engine.
///
/// Construct with [`OpSpec::compute`], [`OpSpec::transfer`], or
/// [`OpSpec::marker`], then chain builder methods.
///
/// # Examples
///
/// ```
/// use dos_hal::{Simulator, OpSpec, ResourceKind};
/// let mut sim = Simulator::new();
/// let gpu = sim.add_resource("gpu0", ResourceKind::GpuCompute, 25e9);
/// let s = sim.add_stream("compute");
/// let op = sim.submit(OpSpec::compute(gpu, 1e9).on(s).label("update"))?;
/// assert!((sim.finish_time(op).as_secs() - 0.04).abs() < 1e-12);
/// # Ok::<(), dos_hal::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OpSpec {
    stream: Option<StreamId>,
    resource: Option<ResourceId>,
    work: f64,
    fixed_duration: Option<SimTime>,
    latency: SimTime,
    after: Vec<OpId>,
    not_before: SimTime,
    label: String,
    phase: String,
}

impl OpSpec {
    /// An operation occupying `resource` for `work / rate` seconds.
    pub fn compute(resource: ResourceId, work: f64) -> Self {
        OpSpec {
            stream: None,
            resource: Some(resource),
            work,
            fixed_duration: None,
            latency: SimTime::ZERO,
            after: Vec::new(),
            not_before: SimTime::ZERO,
            label: String::new(),
            phase: String::new(),
        }
    }

    /// A data movement of `bytes` over a link resource. Identical mechanics
    /// to [`OpSpec::compute`]; a separate constructor keeps call sites
    /// self-describing.
    pub fn transfer(link: ResourceId, bytes: f64) -> Self {
        Self::compute(link, bytes)
    }

    /// An operation occupying `resource` for an explicit `duration`,
    /// recording `work` units in the trace. Use when the effective rate of
    /// an operation differs from the resource's registered rate (pageable
    /// transfers, fused conversion paths, contended update-phase bandwidth)
    /// while still attributing the real byte count to the interval.
    pub fn occupy(resource: ResourceId, duration: SimTime, work: f64) -> Self {
        let mut spec = Self::compute(resource, work);
        spec.fixed_duration = Some(duration);
        spec
    }

    /// A zero-duration marker used to join dependencies or stamp phases.
    pub fn marker() -> Self {
        OpSpec {
            stream: None,
            resource: None,
            work: 0.0,
            fixed_duration: None,
            latency: SimTime::ZERO,
            after: Vec::new(),
            not_before: SimTime::ZERO,
            label: String::new(),
            phase: String::new(),
        }
    }

    /// Runs the operation on `stream` (default: a per-simulator default stream).
    pub fn on(mut self, stream: StreamId) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Adds a dependency on a previously submitted operation.
    pub fn after(mut self, op: OpId) -> Self {
        self.after.push(op);
        self
    }

    /// Adds dependencies on many previously submitted operations.
    pub fn after_all<I: IntoIterator<Item = OpId>>(mut self, ops: I) -> Self {
        self.after.extend(ops);
        self
    }

    /// Prevents the operation from starting before `t`.
    pub fn not_before(mut self, t: SimTime) -> Self {
        self.not_before = t;
        self
    }

    /// Adds a fixed latency on top of the throughput-derived duration
    /// (models kernel-launch or DMA-setup overhead).
    pub fn latency(mut self, l: SimTime) -> Self {
        self.latency = l;
        self
    }

    /// Attaches a human-readable label, recorded in the trace.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a phase tag (e.g., `"forward"`), recorded in the trace.
    pub fn phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = phase.into();
        self
    }
}

#[derive(Debug, Clone)]
struct ResourceState {
    name: String,
    kind: ResourceKind,
    rate: f64,
    scale: f64,
    /// One availability time per server; a plain resource has one server,
    /// a pool (core group, multi-channel DMA) has several that serve
    /// operations concurrently. Each remembers the op it last served, for
    /// critical-path reconstruction.
    servers: Vec<(SimTime, Option<OpId>)>,
    busy: SimTime,
}

#[derive(Debug, Clone)]
struct StreamState {
    name: String,
    ready_at: SimTime,
    last_op: Option<OpId>,
}

#[derive(Debug, Clone)]
struct OpState {
    finish: SimTime,
    /// The predecessor whose completion determined this op's start
    /// (dependency, stream order, or resource availability), if any.
    binding: Option<OpId>,
}

/// Deterministic virtual-time scheduling engine.
///
/// See the module documentation above for the scheduling model.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    resources: Vec<ResourceState>,
    streams: Vec<StreamState>,
    ops: Vec<OpState>,
    trace: Vec<Interval>,
    default_stream: Option<StreamId>,
    faults: Option<FaultPlan>,
    /// Wasted occupancy from failed attempts. Kept separate from `trace`,
    /// which must stay index-parallel to `ops` (critical paths index it by
    /// `OpId`).
    fault_trace: Vec<Interval>,
    fault_events: Vec<FaultEvent>,
    /// Per-resource count of ops seen while failure rules were installed,
    /// so `FailureMode::Nth` can target the n-th op on a resource.
    fault_match_counts: HashMap<usize, usize>,
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with throughput `rate` (work units per second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        kind: ResourceKind,
        rate: f64,
    ) -> ResourceId {
        self.add_resource_pool(name, kind, rate, 1)
    }

    /// Registers a resource pool of `servers` identical units, each with
    /// throughput `rate`: up to `servers` operations proceed concurrently,
    /// each at the full per-unit rate (a group of CPU cores, a
    /// multi-channel DMA engine).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive or `servers` is zero.
    pub fn add_resource_pool(
        &mut self,
        name: impl Into<String>,
        kind: ResourceKind,
        rate: f64,
        servers: usize,
    ) -> ResourceId {
        assert!(rate.is_finite() && rate > 0.0, "resource rate must be positive, got {rate}");
        assert!(servers > 0, "resource pool needs at least one server");
        self.resources.push(ResourceState {
            name: name.into(),
            kind,
            rate,
            scale: 1.0,
            servers: vec![(SimTime::ZERO, None); servers],
            busy: SimTime::ZERO,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Registers a stream. Operations on the same stream execute in order.
    pub fn add_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams
            .push(StreamState { name: name.into(), ready_at: SimTime::ZERO, last_op: None });
        StreamId(self.streams.len() - 1)
    }

    /// Scales a resource's effective throughput by `factor`.
    ///
    /// Used to model shared-resource contention (e.g., the paper's DRAM
    /// contention between concurrent PCIe transfers and CPU-side updates,
    /// Figure 15). Affects operations submitted *after* the call.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_throughput_scale(&mut self, resource: ResourceId, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive, got {factor}");
        self.resources[resource.0].scale = factor;
    }

    /// Returns the name a resource was registered with.
    pub fn resource_name(&self, resource: ResourceId) -> &str {
        &self.resources[resource.0].name
    }

    /// Returns the kind a resource was registered with.
    pub fn resource_kind(&self, resource: ResourceId) -> ResourceKind {
        self.resources[resource.0].kind
    }

    /// Returns the name a stream was registered with.
    pub fn stream_name(&self, stream: StreamId) -> &str {
        &self.streams[stream.0].name
    }

    /// Replays the recorded schedule into a [`dos_telemetry::Tracer`] on
    /// the simulated clock: one explicit-time span per interval, on a track
    /// named after the interval's stream and tagged with the resource it
    /// occupied. Resource-less markers become instant events. This is the
    /// bridge that lets the discrete-event engine and the wall-clock
    /// pipelines share one exporter and one analyzer.
    pub fn record_into(&self, tracer: &dos_telemetry::Tracer) {
        for iv in &self.trace {
            let track = self.stream_name(iv.stream);
            match iv.resource {
                Some(r) => tracer.record_span(
                    track,
                    self.resource_name(r),
                    &iv.label,
                    &iv.phase,
                    iv.start.as_secs(),
                    iv.end.as_secs(),
                    iv.work,
                ),
                None => tracer.instant_at(track, &iv.label, &iv.phase, iv.start.as_secs()),
            }
        }
        // Injected-fault records: wasted attempts replay as spans on the
        // stream that suffered them (their occupancy is real schedule time),
        // and each failed attempt additionally lands as an instant on a
        // dedicated `faults` track so the analyzer and trace viewers can
        // attribute stalls without scanning span labels.
        for iv in &self.fault_trace {
            if let Some(r) = iv.resource {
                tracer.record_span(
                    self.stream_name(iv.stream),
                    self.resource_name(r),
                    &iv.label,
                    &iv.phase,
                    iv.start.as_secs(),
                    iv.end.as_secs(),
                    iv.work,
                );
            }
        }
        for ev in &self.fault_events {
            tracer.instant_at(
                "faults",
                &format!("fault:{}:{}", ev.resource, ev.label),
                &ev.phase,
                ev.at.as_secs(),
            );
        }
    }

    /// Returns the effective rate (rate × scale) of a resource.
    pub fn resource_rate(&self, resource: ResourceId) -> f64 {
        let r = &self.resources[resource.0];
        r.rate * r.scale
    }

    /// Installs a [`FaultPlan`]; operations submitted afterwards are subject
    /// to its degradation windows and failure rules. Replaces any previously
    /// installed plan (match counters for `FailureMode::Nth` are reset).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_match_counts.clear();
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Every injected fault occurrence so far (failed attempts, whether or
    /// not the op eventually recovered), in submission order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Wasted-occupancy intervals from failed attempts. Kept separate from
    /// [`Simulator::trace`] so that trace stays index-parallel to op ids.
    pub fn fault_intervals(&self) -> &[Interval] {
        &self.fault_trace
    }

    /// Submits an operation and returns its handle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHandle`] if the spec references an unknown
    /// stream, resource, or dependency, and [`SimError::InvalidWork`] if a
    /// throughput operation has negative or non-finite work.
    pub fn submit(&mut self, spec: OpSpec) -> Result<OpId, SimError> {
        let stream = match spec.stream.or(self.default_stream) {
            Some(s) => s,
            None => {
                let s = self.add_stream("default");
                self.default_stream = Some(s);
                s
            }
        };
        if stream.0 >= self.streams.len() {
            return Err(SimError::UnknownHandle { kind: "stream", index: stream.0 });
        }
        if let Some(r) = spec.resource {
            if r.0 >= self.resources.len() {
                return Err(SimError::UnknownHandle { kind: "resource", index: r.0 });
            }
        }
        if !spec.work.is_finite() || spec.work < 0.0 {
            return Err(SimError::InvalidWork {
                detail: format!("work={} on `{}`", spec.work, spec.label),
            });
        }
        // Track which constraint binds the start time, for critical paths.
        let mut start = spec.not_before;
        let mut binding: Option<OpId> = None;
        let stream_state = &self.streams[stream.0];
        if stream_state.ready_at > start {
            start = stream_state.ready_at;
            binding = stream_state.last_op;
        }
        for dep in &spec.after {
            let dep_state = self
                .ops
                .get(dep.0)
                .ok_or(SimError::UnknownHandle { kind: "op", index: dep.0 })?;
            if dep_state.finish >= start {
                start = dep_state.finish;
                binding = Some(*dep);
            }
        }
        let mut chosen_server = 0;
        let mut fault_intervals: Vec<Interval> = Vec::new();
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        let mut wasted = SimTime::ZERO;
        let duration = match spec.resource {
            Some(r) => {
                let res = &self.resources[r.0];
                // Earliest-available server of the pool serves this op
                // (`add_resource` rejects empty pools, so the fallback arm
                // is unreachable).
                let (idx, (earliest, last)) = res
                    .servers
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, (t, _))| t)
                    .unwrap_or((0, (SimTime::ZERO, None)));
                chosen_server = idx;
                if earliest > start {
                    start = earliest;
                    binding = last;
                }
                let base = match spec.fixed_duration {
                    Some(d) => d,
                    None => SimTime::from_secs(spec.work / (res.rate * res.scale)),
                };
                let name = res.name.clone();
                match &self.faults {
                    None => base + spec.latency,
                    Some(plan) if plan.is_empty() => base + spec.latency,
                    Some(plan) => {
                        // Fault-aware attempt loop. Each failed attempt wastes
                        // `wasted_fraction` of its would-be duration on the
                        // resource, then backs off before retrying; an attempt
                        // starting inside a degradation window is stretched by
                        // the window's throughput scale. The server is modeled
                        // as reserved for the whole retry sequence, which is
                        // conservative for queued peers but keeps greedy
                        // submission-order scheduling deterministic.
                        let op_index = self.ops.len();
                        let targeted = plan.failures.iter().any(|f| f.resource == name);
                        let match_index = if targeted {
                            let c = self.fault_match_counts.entry(r.0).or_insert(0);
                            let i = *c;
                            *c += 1;
                            i
                        } else {
                            0
                        };
                        let mut attempt_start = start;
                        let mut attempt: u32 = 0;
                        loop {
                            let scale = plan.degradation_scale(&name, attempt_start);
                            let dur = SimTime::from_secs(base.as_secs() / scale) + spec.latency;
                            if !(targeted
                                && plan.attempt_fails(&name, match_index, op_index, attempt))
                            {
                                start = attempt_start;
                                break dur;
                            }
                            let lost =
                                SimTime::from_secs(dur.as_secs() * plan.retry.wasted_fraction);
                            let fail_at = attempt_start + lost;
                            wasted += lost;
                            fault_intervals.push(Interval {
                                resource: Some(r),
                                stream,
                                start: attempt_start,
                                end: fail_at,
                                work: 0.0,
                                label: format!("fault:{}", spec.label),
                                phase: spec.phase.clone(),
                            });
                            fault_events.push(FaultEvent {
                                resource: name.clone(),
                                label: spec.label.clone(),
                                phase: spec.phase.clone(),
                                at: fail_at,
                                attempt,
                                recovered: true,
                            });
                            if attempt >= plan.retry.max_retries {
                                for ev in &mut fault_events {
                                    ev.recovered = false;
                                }
                                let attempts = attempt + 1;
                                self.resources[r.0].busy += wasted;
                                self.fault_trace.extend(fault_intervals);
                                self.fault_events.extend(fault_events);
                                return Err(SimError::TransferFault {
                                    resource: name,
                                    label: spec.label,
                                    at: fail_at,
                                    attempts,
                                });
                            }
                            attempt_start = fail_at + plan.backoff_after(attempt);
                            attempt += 1;
                        }
                    }
                }
            }
            None => spec.fixed_duration.unwrap_or(SimTime::ZERO) + spec.latency,
        };
        let finish = start + duration;
        let this_id = OpId(self.ops.len());
        if let Some(r) = spec.resource {
            let res = &mut self.resources[r.0];
            res.servers[chosen_server] = (finish, Some(this_id));
            res.busy += duration + wasted;
        }
        self.fault_trace.extend(fault_intervals);
        self.fault_events.extend(fault_events);
        let stream_state = &mut self.streams[stream.0];
        stream_state.ready_at = finish;
        stream_state.last_op = Some(this_id);
        self.ops.push(OpState { finish, binding });
        self.trace.push(Interval {
            resource: spec.resource,
            stream,
            start,
            end: finish,
            work: spec.work,
            label: spec.label,
            phase: spec.phase,
        });
        Ok(OpId(self.ops.len() - 1))
    }

    /// Submits a zero-duration join of `ops` on `stream`; the returned op
    /// finishes when all of `ops` have finished.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Simulator::submit`].
    pub fn join(
        &mut self,
        stream: StreamId,
        ops: impl IntoIterator<Item = OpId>,
    ) -> Result<OpId, SimError> {
        self.submit(OpSpec::marker().on(stream).after_all(ops).label("join"))
    }

    /// Returns the completion instant of a submitted operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not returned by this simulator.
    pub fn finish_time(&self, op: OpId) -> SimTime {
        self.ops[op.0].finish
    }

    /// The instant at which all submitted work has completed.
    pub fn makespan(&self) -> SimTime {
        self.ops.iter().map(|o| o.finish).max().unwrap_or(SimTime::ZERO)
    }

    /// Total busy time accumulated on a resource.
    pub fn busy_time(&self, resource: ResourceId) -> SimTime {
        self.resources[resource.0].busy
    }

    /// Fraction of `[0, makespan]` during which the resource was busy,
    /// normalized by its server count (1.0 = every server always busy).
    ///
    /// Returns 0 if nothing has been submitted.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let total = self.makespan().as_secs();
        if total == 0.0 {
            return 0.0;
        }
        let servers = self.resources[resource.0].servers.len() as f64;
        (self.busy_time(resource).as_secs() / (total * servers)).min(1.0)
    }

    /// All recorded intervals, in submission order.
    pub fn trace(&self) -> &[Interval] {
        &self.trace
    }

    /// Recorded intervals grouped by phase tag, preserving submission order.
    pub fn trace_by_phase(&self) -> HashMap<String, Vec<&Interval>> {
        let mut map: HashMap<String, Vec<&Interval>> = HashMap::new();
        for iv in &self.trace {
            map.entry(iv.phase.clone()).or_default().push(iv);
        }
        map
    }

    /// Duration spanned by intervals with the given phase tag
    /// (latest end minus earliest start), or zero if the phase is absent.
    pub fn phase_span(&self, phase: &str) -> SimTime {
        let mut start: Option<SimTime> = None;
        let mut end: Option<SimTime> = None;
        for iv in self.trace.iter().filter(|iv| iv.phase == phase) {
            start = Some(start.map_or(iv.start, |s| s.min(iv.start)));
            end = Some(end.map_or(iv.end, |e| e.max(iv.end)));
        }
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => SimTime::ZERO,
        }
    }

    /// Number of operations submitted so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The chain of operations whose completions successively determined
    /// `op`'s start time — the *critical path* ending at `op`, earliest
    /// first. An op with slack before it terminates the walk.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not returned by this simulator.
    pub fn critical_path(&self, op: OpId) -> Vec<OpId> {
        let mut chain = vec![op];
        let mut cursor = op;
        while let Some(prev) = self.ops[cursor.0].binding {
            chain.push(prev);
            cursor = prev;
        }
        chain.reverse();
        chain
    }

    /// Total critical-path seconds attributed to each resource for the path
    /// ending at `op`, as `(resource name or "(marker)", seconds)` sorted by
    /// descending time — "where did the makespan go?".
    pub fn critical_path_breakdown(&self, op: OpId) -> Vec<(String, f64)> {
        let mut by_resource: HashMap<String, f64> = HashMap::new();
        for id in self.critical_path(op) {
            let iv = &self.trace[id.0];
            let name = match iv.resource {
                Some(r) => self.resources[r.0].name.clone(),
                None => "(marker)".to_string(),
            };
            *by_resource.entry(name).or_insert(0.0) += iv.duration().as_secs();
        }
        let mut out: Vec<(String, f64)> = by_resource.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulator {
        Simulator::new()
    }

    #[test]
    fn single_op_duration_follows_rate() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 10.0);
        let st = s.add_stream("s");
        let op = s.submit(OpSpec::compute(r, 5.0).on(st)).unwrap();
        assert_eq!(s.finish_time(op).as_secs(), 0.5);
        assert_eq!(s.makespan().as_secs(), 0.5);
    }

    #[test]
    fn stream_serializes_ops() {
        let mut s = sim();
        let r = s.add_resource("link", ResourceKind::LinkH2D, 1.0);
        let st = s.add_stream("s");
        let a = s.submit(OpSpec::transfer(r, 1.0).on(st)).unwrap();
        let b = s.submit(OpSpec::transfer(r, 1.0).on(st)).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 1.0);
        assert_eq!(s.finish_time(b).as_secs(), 2.0);
    }

    #[test]
    fn distinct_streams_and_resources_overlap() {
        let mut s = sim();
        let h2d = s.add_resource("h2d", ResourceKind::LinkH2D, 1.0);
        let d2h = s.add_resource("d2h", ResourceKind::LinkD2H, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        let a = s.submit(OpSpec::transfer(h2d, 2.0).on(s1)).unwrap();
        let b = s.submit(OpSpec::transfer(d2h, 2.0).on(s2)).unwrap();
        // Full duplex: both finish at t=2, not serialized.
        assert_eq!(s.finish_time(a).as_secs(), 2.0);
        assert_eq!(s.finish_time(b).as_secs(), 2.0);
        assert_eq!(s.makespan().as_secs(), 2.0);
    }

    #[test]
    fn shared_resource_serializes_across_streams() {
        let mut s = sim();
        let link = s.add_resource("h2d", ResourceKind::LinkH2D, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        let a = s.submit(OpSpec::transfer(link, 2.0).on(s1)).unwrap();
        let b = s.submit(OpSpec::transfer(link, 2.0).on(s2)).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 2.0);
        assert_eq!(s.finish_time(b).as_secs(), 4.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut s = sim();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let cpu = s.add_resource("cpu", ResourceKind::CpuCompute, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        let a = s.submit(OpSpec::compute(gpu, 3.0).on(s1)).unwrap();
        let b = s.submit(OpSpec::compute(cpu, 1.0).on(s2).after(a)).unwrap();
        assert_eq!(s.finish_time(b).as_secs(), 4.0);
    }

    #[test]
    fn join_waits_for_all() {
        let mut s = sim();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let cpu = s.add_resource("cpu", ResourceKind::CpuCompute, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        let s3 = s.add_stream("c");
        let a = s.submit(OpSpec::compute(gpu, 3.0).on(s1)).unwrap();
        let b = s.submit(OpSpec::compute(cpu, 5.0).on(s2)).unwrap();
        let j = s.join(s3, [a, b]).unwrap();
        assert_eq!(s.finish_time(j).as_secs(), 5.0);
    }

    #[test]
    fn latency_adds_to_duration() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 10.0);
        let st = s.add_stream("s");
        let op = s
            .submit(OpSpec::compute(r, 10.0).on(st).latency(SimTime::from_millis(5.0)))
            .unwrap();
        assert!((s.finish_time(op).as_secs() - 1.005).abs() < 1e-12);
    }

    #[test]
    fn not_before_is_respected() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let st = s.add_stream("s");
        let op = s
            .submit(OpSpec::compute(r, 1.0).on(st).not_before(SimTime::from_secs(10.0)))
            .unwrap();
        assert_eq!(s.finish_time(op).as_secs(), 11.0);
    }

    #[test]
    fn throughput_scale_slows_resource() {
        let mut s = sim();
        let cpu = s.add_resource("cpu", ResourceKind::CpuCompute, 10.0);
        let st = s.add_stream("s");
        s.set_throughput_scale(cpu, 0.5);
        let op = s.submit(OpSpec::compute(cpu, 10.0).on(st)).unwrap();
        assert_eq!(s.finish_time(op).as_secs(), 2.0);
        assert_eq!(s.resource_rate(cpu), 5.0);
    }

    #[test]
    fn utilization_and_busy_time() {
        let mut s = sim();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let cpu = s.add_resource("cpu", ResourceKind::CpuCompute, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        s.submit(OpSpec::compute(gpu, 4.0).on(s1)).unwrap();
        s.submit(OpSpec::compute(cpu, 2.0).on(s2)).unwrap();
        assert_eq!(s.utilization(gpu), 1.0);
        assert_eq!(s.utilization(cpu), 0.5);
        assert_eq!(s.busy_time(cpu).as_secs(), 2.0);
    }

    #[test]
    fn unknown_dependency_errors() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let st = s.add_stream("s");
        let err = s.submit(OpSpec::compute(r, 1.0).on(st).after(OpId(99))).unwrap_err();
        assert!(matches!(err, SimError::UnknownHandle { kind: "op", .. }));
    }

    #[test]
    fn invalid_work_errors() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let st = s.add_stream("s");
        let err = s.submit(OpSpec::compute(r, f64::NAN).on(st)).unwrap_err();
        assert!(matches!(err, SimError::InvalidWork { .. }));
    }

    #[test]
    fn trace_records_labels_and_phases() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let st = s.add_stream("s");
        s.submit(OpSpec::compute(r, 1.0).on(st).label("update:sg0").phase("update")).unwrap();
        let t = s.trace();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].label, "update:sg0");
        assert_eq!(t[0].phase, "update");
        assert_eq!(t[0].duration().as_secs(), 1.0);
        assert_eq!(s.phase_span("update").as_secs(), 1.0);
        assert_eq!(s.phase_span("missing").as_secs(), 0.0);
        assert_eq!(s.trace_by_phase()["update"].len(), 1);
    }

    #[test]
    fn default_stream_is_created_lazily() {
        let mut s = sim();
        let r = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let a = s.submit(OpSpec::compute(r, 1.0)).unwrap();
        let b = s.submit(OpSpec::compute(r, 1.0)).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 1.0);
        assert_eq!(s.finish_time(b).as_secs(), 2.0);
        assert_eq!(s.op_count(), 2);
    }
}

#[cfg(test)]
mod critical_path_tests {
    use super::*;

    #[test]
    fn path_follows_binding_dependencies() {
        let mut s = Simulator::new();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let cpu = s.add_resource("cpu", ResourceKind::CpuCompute, 1.0);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        // Long GPU op binds; short CPU op has slack.
        let long = s.submit(OpSpec::compute(gpu, 5.0).on(s1)).unwrap();
        let short = s.submit(OpSpec::compute(cpu, 1.0).on(s2)).unwrap();
        let joined = s.join(s2, [long, short]).unwrap();
        let path = s.critical_path(joined);
        assert!(path.contains(&long), "long op must be on the path");
        assert!(!path.contains(&short), "short op has slack");
        assert_eq!(*path.last().unwrap(), joined);
    }

    #[test]
    fn breakdown_attributes_time_to_resources() {
        let mut s = Simulator::new();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 1.0);
        let link = s.add_resource("h2d", ResourceKind::LinkH2D, 1.0);
        let st = s.add_stream("a");
        let xfer = s.submit(OpSpec::transfer(link, 2.0).on(st)).unwrap();
        let compute = s.submit(OpSpec::compute(gpu, 3.0).on(st).after(xfer)).unwrap();
        let bd = s.critical_path_breakdown(compute);
        assert_eq!(bd[0], ("gpu".to_string(), 3.0));
        assert_eq!(bd[1], ("h2d".to_string(), 2.0));
    }

    #[test]
    fn stream_order_binds_when_no_deps() {
        let mut s = Simulator::new();
        let r = s.add_resource("r", ResourceKind::CpuCompute, 1.0);
        let st = s.add_stream("a");
        let a = s.submit(OpSpec::compute(r, 1.0).on(st)).unwrap();
        let b = s.submit(OpSpec::compute(r, 1.0).on(st)).unwrap();
        assert_eq!(s.critical_path(b), vec![a, b]);
    }

    #[test]
    fn unconstrained_op_has_singleton_path() {
        let mut s = Simulator::new();
        let r = s.add_resource("r", ResourceKind::CpuCompute, 1.0);
        let st = s.add_stream("a");
        let a = s.submit(OpSpec::compute(r, 1.0).on(st)).unwrap();
        assert_eq!(s.critical_path(a), vec![a]);
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn pool_serves_concurrently_up_to_capacity() {
        let mut s = Simulator::new();
        let pool = s.add_resource_pool("dma", ResourceKind::LinkH2D, 1.0, 2);
        let streams: Vec<StreamId> = (0..3).map(|i| s.add_stream(format!("s{i}"))).collect();
        let ops: Vec<OpId> = streams
            .iter()
            .map(|&st| s.submit(OpSpec::transfer(pool, 2.0).on(st)).unwrap())
            .collect();
        // Two run concurrently, the third queues behind the first free unit.
        assert_eq!(s.finish_time(ops[0]).as_secs(), 2.0);
        assert_eq!(s.finish_time(ops[1]).as_secs(), 2.0);
        assert_eq!(s.finish_time(ops[2]).as_secs(), 4.0);
        // Busy time sums over servers; utilization normalizes by the pool.
        assert_eq!(s.busy_time(pool).as_secs(), 6.0);
        assert!((s.utilization(pool) - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn single_server_pool_matches_plain_resource() {
        let mut a = Simulator::new();
        let ra = a.add_resource("r", ResourceKind::CpuCompute, 2.0);
        let sa = a.add_stream("s");
        let mut b = Simulator::new();
        let rb = b.add_resource_pool("r", ResourceKind::CpuCompute, 2.0, 1);
        let sb = b.add_stream("s");
        for w in [1.0, 3.0, 0.5] {
            a.submit(OpSpec::compute(ra, w).on(sa)).unwrap();
            b.submit(OpSpec::compute(rb, w).on(sb)).unwrap();
        }
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let mut s = Simulator::new();
        let _ = s.add_resource_pool("r", ResourceKind::CpuCompute, 1.0, 0);
    }
}

#[cfg(test)]
mod occupy_tests {
    use super::*;

    #[test]
    fn occupy_uses_fixed_duration_and_records_work() {
        let mut s = Simulator::new();
        let link = s.add_resource("h2d", ResourceKind::LinkH2D, 1e9);
        let st = s.add_stream("s");
        let op = s
            .submit(OpSpec::occupy(link, SimTime::from_secs(2.0), 5e9).on(st).label("slow"))
            .unwrap();
        assert_eq!(s.finish_time(op).as_secs(), 2.0);
        assert_eq!(s.trace()[0].work, 5e9);
    }

    #[test]
    fn occupy_still_serializes_on_the_resource() {
        let mut s = Simulator::new();
        let link = s.add_resource("h2d", ResourceKind::LinkH2D, 1e9);
        let s1 = s.add_stream("a");
        let s2 = s.add_stream("b");
        let a = s.submit(OpSpec::occupy(link, SimTime::from_secs(1.0), 1.0).on(s1)).unwrap();
        let b = s.submit(OpSpec::occupy(link, SimTime::from_secs(1.0), 1.0).on(s2)).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 1.0);
        assert_eq!(s.finish_time(b).as_secs(), 2.0);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::RetryPolicy;

    fn h2d_sim() -> (Simulator, ResourceId, StreamId) {
        let mut s = Simulator::new();
        let link = s.add_resource("pcie.h2d", ResourceKind::LinkH2D, 1.0);
        let st = s.add_stream("h2d");
        (s, link, st)
    }

    #[test]
    fn degradation_window_stretches_ops_starting_inside_it() {
        let (mut s, link, st) = h2d_sim();
        s.install_fault_plan(FaultPlan::seeded(1).degrade(
            "pcie.h2d",
            SimTime::from_secs(1.0),
            SimTime::from_secs(10.0),
            0.25,
        ));
        // Starts at t=0, outside the window: full speed.
        let a = s.submit(OpSpec::transfer(link, 1.0).on(st)).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 1.0);
        // Starts at t=1, inside: quarter speed.
        let b = s.submit(OpSpec::transfer(link, 1.0).on(st)).unwrap();
        assert_eq!(s.finish_time(b).as_secs(), 5.0);
        // Degradation stretches fixed-duration occupancies too.
        let c = s.submit(OpSpec::occupy(link, SimTime::from_secs(1.0), 7.0).on(st)).unwrap();
        assert_eq!(s.finish_time(c).as_secs(), 9.0);
        // No fault events: degradation is silent slowdown, not failure.
        assert!(s.fault_events().is_empty());
    }

    #[test]
    fn degradation_ignores_other_resources() {
        let mut s = Simulator::new();
        let d2h = s.add_resource("pcie.d2h", ResourceKind::LinkD2H, 1.0);
        let st = s.add_stream("d2h");
        s.install_fault_plan(FaultPlan::seeded(1).degrade(
            "pcie.h2d",
            SimTime::ZERO,
            SimTime::from_secs(10.0),
            0.1,
        ));
        let op = s.submit(OpSpec::transfer(d2h, 2.0).on(st)).unwrap();
        assert_eq!(s.finish_time(op).as_secs(), 2.0);
    }

    #[test]
    fn nth_failure_retries_with_backoff_arithmetic() {
        let (mut s, link, st) = h2d_sim();
        s.install_fault_plan(
            FaultPlan::seeded(0).fail_nth("pcie.h2d", 1, 2).with_retry(RetryPolicy {
                max_retries: 3,
                backoff: SimTime::from_secs(0.5),
                backoff_multiplier: 2.0,
                wasted_fraction: 0.5,
            }),
        );
        let a = s.submit(OpSpec::transfer(link, 1.0).on(st).label("x0")).unwrap();
        assert_eq!(s.finish_time(a).as_secs(), 1.0);
        // Op 1: attempt 0 wastes 0.5s, backoff 0.5s; attempt 1 wastes 0.5s,
        // backoff 1.0s; attempt 2 succeeds taking 1.0s.
        // 1.0 + 0.5 + 0.5 + 0.5 + 1.0 + 1.0 = 4.5.
        let b = s.submit(OpSpec::transfer(link, 1.0).on(st).label("x1")).unwrap();
        assert_eq!(s.finish_time(b).as_secs(), 4.5);
        let events = s.fault_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.recovered && e.label == "x1"));
        assert_eq!(events[0].attempt, 0);
        assert_eq!(events[1].attempt, 1);
        // Wasted attempts are recorded as occupancy and counted busy.
        assert_eq!(s.fault_intervals().len(), 2);
        assert_eq!(s.busy_time(link).as_secs(), 1.0 + 0.5 + 0.5 + 1.0);
        // The op trace itself stays index-parallel to op ids.
        assert_eq!(s.trace().len(), s.op_count());
    }

    #[test]
    fn exhausted_retries_surface_typed_transfer_fault() {
        let (mut s, link, st) = h2d_sim();
        s.install_fault_plan(
            FaultPlan::seeded(0).fail_nth("pcie.h2d", 0, 99).with_retry(RetryPolicy {
                max_retries: 2,
                backoff: SimTime::from_secs(0.1),
                backoff_multiplier: 1.0,
                wasted_fraction: 1.0,
            }),
        );
        let err = s.submit(OpSpec::transfer(link, 1.0).on(st).label("doomed")).unwrap_err();
        match err {
            SimError::TransferFault { resource, label, attempts, .. } => {
                assert_eq!(resource, "pcie.h2d");
                assert_eq!(label, "doomed");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected TransferFault, got {other}"),
        }
        // All three attempts are on record, marked unrecovered; the failed
        // op itself was never admitted to the schedule.
        assert_eq!(s.fault_events().len(), 3);
        assert!(s.fault_events().iter().all(|e| !e.recovered));
        assert_eq!(s.op_count(), 0);
        assert_eq!(s.trace().len(), 0);
    }

    #[test]
    fn random_failures_are_reproducible_across_runs() {
        let run = |seed: u64| -> (Vec<f64>, usize) {
            let (mut s, link, st) = h2d_sim();
            s.install_fault_plan(FaultPlan::seeded(seed).fail_randomly("pcie.h2d", 0.4));
            let finishes: Vec<f64> = (0..20)
                .map(|i| {
                    match s.submit(OpSpec::transfer(link, 1.0).on(st).label(format!("t{i}"))) {
                        Ok(op) => s.finish_time(op).as_secs(),
                        // Retry exhaustion is a legitimate outcome at p=0.4;
                        // encode it distinctly so determinism still compares.
                        Err(SimError::TransferFault { .. }) => -1.0,
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                })
                .collect();
            (finishes, s.fault_events().len())
        };
        let (f1, n1) = run(42);
        let (f2, n2) = run(42);
        assert_eq!(f1, f2, "same seed must give an identical schedule");
        assert_eq!(n1, n2);
        assert!(n1 > 0, "p=0.4 over 20 ops should inject at least one fault");
        let (f3, _) = run(43);
        assert_ne!(f1, f3, "different seed should perturb the schedule");
    }

    #[test]
    fn record_into_exposes_fault_instants_and_wasted_spans() {
        let (mut s, link, st) = h2d_sim();
        s.install_fault_plan(FaultPlan::seeded(0).fail_nth("pcie.h2d", 0, 1));
        s.submit(OpSpec::transfer(link, 1.0).on(st).label("h2d:sg0").phase("update")).unwrap();
        let tracer = dos_telemetry::Tracer::new();
        s.record_into(&tracer);
        let evs = tracer.events();
        let instant = evs
            .iter()
            .find(|e| e.kind == dos_telemetry::EventKind::Instant)
            .expect("fault instant present");
        assert_eq!(instant.track, "faults");
        assert_eq!(instant.name, "fault:pcie.h2d:h2d:sg0");
        assert_eq!(instant.phase, "update");
        let wasted_span = evs
            .iter()
            .find(|e| e.kind == dos_telemetry::EventKind::Span && e.name.starts_with("fault:"))
            .expect("wasted-attempt span present");
        assert_eq!(wasted_span.track, "h2d");
        assert_eq!(wasted_span.resource, "pcie.h2d");
    }

    #[test]
    fn installing_a_plan_resets_nth_counters() {
        let (mut s, link, st) = h2d_sim();
        s.install_fault_plan(FaultPlan::seeded(0).fail_nth("pcie.h2d", 0, 1));
        s.submit(OpSpec::transfer(link, 1.0).on(st)).unwrap();
        assert_eq!(s.fault_events().len(), 1);
        // Reinstall: the next op is once again "the 0th" and fails again.
        s.install_fault_plan(FaultPlan::seeded(0).fail_nth("pcie.h2d", 0, 1));
        s.submit(OpSpec::transfer(link, 1.0).on(st)).unwrap();
        assert_eq!(s.fault_events().len(), 2);
    }
}

#[cfg(test)]
mod trace_export_tests {
    use super::*;

    #[test]
    fn record_into_replays_streams_as_tracks() {
        let mut s = Simulator::new();
        let gpu = s.add_resource("gpu", ResourceKind::GpuCompute, 2.0);
        let st = s.add_stream("stream:update");
        s.submit(OpSpec::compute(gpu, 4.0).on(st).label("gpu-update:sg0").phase("update"))
            .unwrap();
        s.submit(OpSpec::marker().on(st).label("join").phase("update")).unwrap();
        assert_eq!(s.stream_name(st), "stream:update");

        let tracer = dos_telemetry::Tracer::new();
        s.record_into(&tracer);
        let evs = tracer.events();
        assert_eq!(evs.len(), 2);
        let span = evs.iter().find(|e| e.name == "gpu-update:sg0").unwrap();
        assert_eq!(span.track, "stream:update");
        assert_eq!(span.resource, "gpu");
        assert_eq!(span.start, 0.0);
        assert_eq!(span.dur, 2.0); // 4 work at rate 2
        assert_eq!(span.kind, dos_telemetry::EventKind::Span);
        let marker = evs.iter().find(|e| e.name == "join").unwrap();
        assert_eq!(marker.kind, dos_telemetry::EventKind::Instant);
        // The exported timeline matches the engine's own accounting.
        let tl = tracer.to_timeline();
        assert_eq!(tl.busy_time("gpu"), s.busy_time(gpu).as_secs());
    }
}
