//! Error types for the simulated hardware substrate.

use std::error::Error;
use std::fmt;

use crate::time::SimTime;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A memory pool allocation exceeded the pool's capacity.
    ///
    /// This is the simulated equivalent of a CUDA out-of-memory error and is
    /// how experiments such as the paper's Figure 13 (micro-batch 16 OOM on
    /// 80 GB HBM) surface in this reproduction.
    OutOfMemory {
        /// Name of the pool that overflowed.
        pool: String,
        /// Instant at which usage first exceeded capacity.
        at: SimTime,
        /// Bytes requested by the allocation that overflowed.
        requested: u64,
        /// Bytes in use immediately before the failing allocation.
        in_use: u64,
        /// Pool capacity in bytes.
        capacity: u64,
    },
    /// An operation referenced a resource, stream, pool, or op that does not
    /// exist in this simulator instance.
    UnknownHandle {
        /// The kind of handle (`"resource"`, `"stream"`, ...).
        kind: &'static str,
        /// The raw index that failed to resolve.
        index: usize,
    },
    /// An operation was submitted with a non-positive amount of work on a
    /// throughput resource, or a resource was registered with a non-positive
    /// rate.
    InvalidWork {
        /// Human-readable description of the invalid quantity.
        detail: String,
    },
    /// A free was recorded for more bytes than were allocated with the tag.
    UnbalancedFree {
        /// Name of the pool.
        pool: String,
        /// Allocation tag whose balance went negative.
        tag: String,
    },
    /// An injected transfer failure exhausted its retry budget.
    ///
    /// Produced by a [`crate::FaultPlan`] failure rule when every attempt
    /// (initial plus retries) of an operation on the named resource died.
    TransferFault {
        /// Name of the resource the doomed operation occupied.
        resource: String,
        /// Label of the failing operation.
        label: String,
        /// Instant the final attempt died.
        at: SimTime,
        /// Total attempts made (initial attempt plus retries).
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { pool, at, requested, in_use, capacity } => write!(
                f,
                "out of memory in pool `{pool}` at {at}: requested {requested} B with {in_use} B in use (capacity {capacity} B)"
            ),
            SimError::UnknownHandle { kind, index } => {
                write!(f, "unknown {kind} handle with index {index}")
            }
            SimError::InvalidWork { detail } => write!(f, "invalid work amount: {detail}"),
            SimError::UnbalancedFree { pool, tag } => {
                write!(f, "unbalanced free in pool `{pool}` for tag `{tag}`")
            }
            SimError::TransferFault { resource, label, at, attempts } => write!(
                f,
                "transfer fault on `{resource}`: op `{label}` failed all {attempts} attempts (last at {at})"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfMemory {
            pool: "gpu0.hbm".into(),
            at: SimTime::from_secs(1.0),
            requested: 128,
            in_use: 64,
            capacity: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("gpu0.hbm"));
        assert!(msg.contains("128"));
        assert!(msg.contains("capacity 100"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
