//! Deterministic fault injection for the discrete-event engine.
//!
//! The paper's schedule (Alg. 1) assumes PCIe links, DRAM, and device
//! workers behave; production middleware cannot. A [`FaultPlan`] lets
//! `dos-sim` scenarios quantify how much slack an interleaved schedule has
//! before Equation 1's k* stops being optimal, by perturbing the engine
//! with three fault classes:
//!
//! * **link degradation windows** — a resource's effective throughput drops
//!   by a factor over a `[from, until)` window of simulated time (a flaky
//!   PCIe lane, a neighbour saturating DRAM);
//! * **op-level transfer failures** — a matching operation's attempt dies
//!   after wasting part of its duration, surfacing as a typed
//!   [`SimError::TransferFault`] once retries are exhausted;
//! * **retry with backoff** — failed attempts are modeled as *extra
//!   occupancy* on the same resource plus an exponential backoff gap, so
//!   faults consume schedule slack exactly the way real DMA retries do.
//!
//! Everything is deterministic: random failures are a pure hash of
//! `(plan seed, op index, attempt)`, so the same plan over the same
//! submission sequence always produces the same schedule. Every failed
//! attempt is recorded as a fault interval and a [`FaultEvent`];
//! [`crate::Simulator::record_into`] replays both into the tracer
//! (`fault:`-prefixed instants) so the overlap analyzer can attribute
//! stalls to injected faults.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A transient throughput drop on one named resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// Resource name as registered with the simulator (`"pcie.h2d"`, ...).
    pub resource: String,
    /// Window start (inclusive) on the simulated clock.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Throughput multiplier in (0, 1]; 0.25 = quarter speed. Applies to
    /// the whole attempt of any operation *starting* inside the window
    /// (fixed-duration occupancies are stretched by the same factor).
    pub scale: f64,
}

/// How a failure rule decides which attempts die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureMode {
    /// Every attempt of every matching op fails independently with this
    /// probability (hash of plan seed × op index × attempt).
    Random {
        /// Per-attempt failure probability in [0, 1].
        probability: f64,
    },
    /// The `nth` (0-based) operation submitted against the resource fails
    /// exactly `failures` consecutive attempts, then succeeds. Deterministic
    /// targeting for tests and campaigns.
    Nth {
        /// Which matching operation to hit (0-based submission order).
        nth: usize,
        /// How many consecutive attempts fail before the op goes through.
        failures: u32,
    },
}

/// A failure rule bound to one named resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRule {
    /// Resource name as registered with the simulator.
    pub resource: String,
    /// Which attempts die.
    pub mode: FailureMode,
}

/// Retry/backoff semantics shared by every failure rule of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the initial attempt; `attempts = max_retries + 1`.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff: SimTime,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Fraction of the attempt's nominal duration wasted (occupying the
    /// resource) before the attempt dies, in [0, 1].
    pub wasted_fraction: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimTime::from_millis(1.0),
            backoff_multiplier: 2.0,
            wasted_fraction: 0.5,
        }
    }
}

/// One injected fault occurrence (a failed attempt).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Name of the resource the attempt occupied.
    pub resource: String,
    /// Label of the op whose attempt failed.
    pub label: String,
    /// Phase tag of the op.
    pub phase: String,
    /// Instant the attempt died.
    pub at: SimTime,
    /// 0-based attempt number that failed.
    pub attempt: u32,
    /// Whether a later attempt of the same op eventually succeeded.
    pub recovered: bool,
}

/// A deterministic, seedable fault campaign for one [`crate::Simulator`].
///
/// Build with [`FaultPlan::seeded`] and the chaining helpers, then install
/// with [`crate::Simulator::install_fault_plan`]. Resources are referenced
/// by registered name so a plan can be authored before the scenario builds
/// its simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed feeding the per-attempt failure hash.
    pub seed: u64,
    /// Transient throughput drops.
    pub degradations: Vec<DegradationWindow>,
    /// Op-level failure rules.
    pub failures: Vec<FailureRule>,
    /// Retry/backoff semantics applied to every failure.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            degradations: Vec::new(),
            failures: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Adds a degradation window: `resource` runs at `scale` (in (0, 1])
    /// times its throughput for ops starting in `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in (0, 1] or the window is empty.
    #[must_use]
    pub fn degrade(
        mut self,
        resource: impl Into<String>,
        from: SimTime,
        until: SimTime,
        scale: f64,
    ) -> FaultPlan {
        assert!(scale.is_finite() && scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        assert!(until > from, "degradation window must be non-empty");
        self.degradations.push(DegradationWindow { resource: resource.into(), from, until, scale });
        self
    }

    /// Adds a random per-attempt failure rule on `resource`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in [0, 1].
    #[must_use]
    pub fn fail_randomly(mut self, resource: impl Into<String>, probability: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&probability), "probability must be in [0,1]");
        self.failures.push(FailureRule {
            resource: resource.into(),
            mode: FailureMode::Random { probability },
        });
        self
    }

    /// Makes the `nth` op on `resource` fail `failures` consecutive
    /// attempts before succeeding (exceeding the retry budget turns this
    /// into a [`SimError::TransferFault`]).
    ///
    /// [`SimError::TransferFault`]: crate::SimError::TransferFault
    #[must_use]
    pub fn fail_nth(
        mut self,
        resource: impl Into<String>,
        nth: usize,
        failures: u32,
    ) -> FaultPlan {
        self.failures.push(FailureRule {
            resource: resource.into(),
            mode: FailureMode::Nth { nth, failures },
        });
        self
    }

    /// Overrides the retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> FaultPlan {
        self.retry = retry;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.degradations.is_empty() && self.failures.is_empty()
    }

    /// Combined throughput multiplier from every window of `resource`
    /// containing instant `at` (1.0 when none apply).
    pub fn degradation_scale(&self, resource: &str, at: SimTime) -> f64 {
        self.degradations
            .iter()
            .filter(|w| w.resource == resource && at >= w.from && at < w.until)
            .map(|w| w.scale)
            .product()
    }

    /// Whether attempt `attempt` of the `match_index`-th op on `resource`
    /// (the op being the `op_index`-th submission overall) fails.
    pub fn attempt_fails(
        &self,
        resource: &str,
        match_index: usize,
        op_index: usize,
        attempt: u32,
    ) -> bool {
        self.failures.iter().filter(|r| r.resource == resource).any(|r| match r.mode {
            FailureMode::Random { probability } => {
                roll(self.seed, op_index, attempt) < probability
            }
            FailureMode::Nth { nth, failures } => nth == match_index && attempt < failures,
        })
    }

    /// Backoff gap before the retry following failed attempt `attempt`.
    pub fn backoff_after(&self, attempt: u32) -> SimTime {
        let mult = self.retry.backoff_multiplier.powi(attempt as i32);
        SimTime::from_secs(self.retry.backoff.as_secs() * mult)
    }
}

/// Deterministic uniform draw in [0, 1) from (seed, op, attempt) via
/// splitmix64 — no RNG state, so failure decisions are independent of
/// call order and survive simulator cloning.
fn roll(seed: u64, op_index: usize, attempt: u32) -> f64 {
    let mut z = seed
        ^ (op_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(attempt) + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_is_deterministic_and_uniform_ish() {
        assert_eq!(roll(7, 3, 1), roll(7, 3, 1));
        assert_ne!(roll(7, 3, 1), roll(8, 3, 1));
        assert_ne!(roll(7, 3, 1), roll(7, 4, 1));
        assert_ne!(roll(7, 3, 1), roll(7, 3, 2));
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|i| roll(42, i, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from uniform");
        assert!((0..n).all(|i| (0.0..1.0).contains(&roll(42, i, 0))));
    }

    #[test]
    fn degradation_scale_composes_windows() {
        let plan = FaultPlan::seeded(1)
            .degrade("pcie.h2d", SimTime::from_secs(1.0), SimTime::from_secs(2.0), 0.5)
            .degrade("pcie.h2d", SimTime::from_secs(1.5), SimTime::from_secs(3.0), 0.5);
        assert_eq!(plan.degradation_scale("pcie.h2d", SimTime::from_secs(0.5)), 1.0);
        assert_eq!(plan.degradation_scale("pcie.h2d", SimTime::from_secs(1.2)), 0.5);
        assert_eq!(plan.degradation_scale("pcie.h2d", SimTime::from_secs(1.7)), 0.25);
        assert_eq!(plan.degradation_scale("pcie.h2d", SimTime::from_secs(2.5)), 0.5);
        // Exclusive upper bound, other resources untouched.
        assert_eq!(plan.degradation_scale("pcie.h2d", SimTime::from_secs(3.0)), 1.0);
        assert_eq!(plan.degradation_scale("pcie.d2h", SimTime::from_secs(1.2)), 1.0);
    }

    #[test]
    fn nth_rule_targets_exactly_one_op() {
        let plan = FaultPlan::seeded(0).fail_nth("pcie.h2d", 2, 2);
        assert!(!plan.attempt_fails("pcie.h2d", 0, 10, 0));
        assert!(plan.attempt_fails("pcie.h2d", 2, 12, 0));
        assert!(plan.attempt_fails("pcie.h2d", 2, 12, 1));
        assert!(!plan.attempt_fails("pcie.h2d", 2, 12, 2));
        assert!(!plan.attempt_fails("pcie.d2h", 2, 12, 0));
    }

    #[test]
    fn random_rule_rate_tracks_probability() {
        let plan = FaultPlan::seeded(99).fail_randomly("pcie.h2d", 0.3);
        let n = 5_000;
        let hits =
            (0..n).filter(|&i| plan.attempt_fails("pcie.h2d", i, i, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed failure rate {rate}");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let plan = FaultPlan::seeded(0).with_retry(RetryPolicy {
            max_retries: 3,
            backoff: SimTime::from_secs(1.0),
            backoff_multiplier: 2.0,
            wasted_fraction: 0.5,
        });
        assert_eq!(plan.backoff_after(0).as_secs(), 1.0);
        assert_eq!(plan.backoff_after(1).as_secs(), 2.0);
        assert_eq!(plan.backoff_after(2).as_secs(), 4.0);
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = FaultPlan::seeded(7)
            .degrade("pcie.h2d", SimTime::ZERO, SimTime::from_secs(1.0), 0.25)
            .fail_randomly("pcie.h2d", 0.1)
            .fail_nth("nvme", 0, 5);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, plan);
    }
}
