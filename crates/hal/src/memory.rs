//! Simulated memory pools with capacity accounting.
//!
//! A [`MemoryPool`] models one memory (a GPU's HBM, the host DRAM of a NUMA
//! domain, a pinned-buffer arena). Allocations and frees are recorded as
//! timestamped deltas; [`MemoryPool::validate`] replays them in time order to
//! detect the first out-of-memory instant and to produce the usage timeline
//! the paper plots in Figure 3.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::error::SimError;
use crate::time::SimTime;

/// One timestamped change in pool usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemEvent {
    /// Instant of the change.
    pub at: SimTime,
    /// Signed byte delta (positive = allocation).
    pub delta: i64,
    /// Allocation tag (e.g., `"activations"`, `"fp16-params"`).
    pub tag: String,
}

/// A point on the usage timeline produced by [`MemoryPool::timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemSample {
    /// Instant of the sample.
    pub at: SimTime,
    /// Bytes in use immediately after the event at `at`.
    pub in_use: u64,
}

/// A capacity-bounded simulated memory.
///
/// # Examples
///
/// ```
/// use dos_hal::{MemoryPool, SimTime};
/// let mut pool = MemoryPool::new("gpu0.hbm", 80_000_000_000);
/// pool.alloc(SimTime::from_secs(0.0), 10_000_000_000, "fp16-params");
/// pool.alloc(SimTime::from_secs(1.0), 20_000_000_000, "activations");
/// pool.free(SimTime::from_secs(2.0), 20_000_000_000, "activations");
/// pool.validate()?;
/// assert_eq!(pool.peak_usage(), 30_000_000_000);
/// # Ok::<(), dos_hal::SimError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryPool {
    name: String,
    capacity: u64,
    events: Vec<MemEvent>,
}

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        MemoryPool { name: name.into(), capacity, events: Vec::new() }
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pool's capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records an allocation of `bytes` at instant `at`.
    pub fn alloc(&mut self, at: SimTime, bytes: u64, tag: impl Into<String>) {
        self.events.push(MemEvent { at, delta: bytes as i64, tag: tag.into() });
    }

    /// Records a free of `bytes` at instant `at`.
    pub fn free(&mut self, at: SimTime, bytes: u64, tag: impl Into<String>) {
        self.events.push(MemEvent { at, delta: -(bytes as i64), tag: tag.into() });
    }

    /// Events sorted by time (frees before allocations at equal instants, so
    /// that a buffer released and reused at the same timestamp does not
    /// spuriously double-count).
    fn sorted_events(&self) -> Vec<&MemEvent> {
        let mut evs: Vec<&MemEvent> = self.events.iter().collect();
        evs.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.delta.cmp(&b.delta)));
        evs
    }

    /// Replays all events and checks capacity and tag balance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] at the first instant usage exceeds
    /// capacity, or [`SimError::UnbalancedFree`] if any tag's balance goes
    /// negative.
    pub fn validate(&self) -> Result<(), SimError> {
        let mut in_use: i64 = 0;
        let mut per_tag: HashMap<&str, i64> = HashMap::new();
        for ev in self.sorted_events() {
            in_use += ev.delta;
            let bal = per_tag.entry(ev.tag.as_str()).or_insert(0);
            *bal += ev.delta;
            if *bal < 0 {
                return Err(SimError::UnbalancedFree {
                    pool: self.name.clone(),
                    tag: ev.tag.clone(),
                });
            }
            if in_use > self.capacity as i64 {
                return Err(SimError::OutOfMemory {
                    pool: self.name.clone(),
                    at: ev.at,
                    requested: ev.delta.max(0) as u64,
                    in_use: (in_use - ev.delta).max(0) as u64,
                    capacity: self.capacity,
                });
            }
        }
        Ok(())
    }

    /// Peak bytes in use over the whole replay (even past an OOM point).
    pub fn peak_usage(&self) -> u64 {
        let mut in_use: i64 = 0;
        let mut peak: i64 = 0;
        for ev in self.sorted_events() {
            in_use += ev.delta;
            peak = peak.max(in_use);
        }
        peak.max(0) as u64
    }

    /// Bytes in use at instant `t` (events at exactly `t` are included).
    pub fn usage_at(&self, t: SimTime) -> u64 {
        let mut in_use: i64 = 0;
        for ev in self.sorted_events() {
            if ev.at > t {
                break;
            }
            in_use += ev.delta;
        }
        in_use.max(0) as u64
    }

    /// The full usage timeline: one sample per event, in time order.
    pub fn timeline(&self) -> Vec<MemSample> {
        let mut in_use: i64 = 0;
        let mut out = Vec::with_capacity(self.events.len());
        for ev in self.sorted_events() {
            in_use += ev.delta;
            out.push(MemSample { at: ev.at, in_use: in_use.max(0) as u64 });
        }
        out
    }

    /// Evenly-spaced usage samples between `start` and `end` inclusive;
    /// convenient for plotting (paper Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or `end < start`.
    pub fn sampled_timeline(&self, start: SimTime, end: SimTime, steps: usize) -> Vec<MemSample> {
        assert!(steps > 0, "steps must be positive");
        assert!(end >= start, "end must not precede start");
        let span = end.saturating_sub(start).as_secs();
        (0..=steps)
            .map(|i| {
                let at = start + SimTime::from_secs(span * i as f64 / steps as f64);
                MemSample { at, in_use: self.usage_at(at) }
            })
            .collect()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn alloc_free_and_peak() {
        let mut p = MemoryPool::new("hbm", 100);
        p.alloc(t(0.0), 40, "a");
        p.alloc(t(1.0), 50, "b");
        p.free(t(2.0), 40, "a");
        p.alloc(t(3.0), 30, "c");
        p.validate().unwrap();
        assert_eq!(p.peak_usage(), 90);
        assert_eq!(p.usage_at(t(0.5)), 40);
        assert_eq!(p.usage_at(t(1.5)), 90);
        assert_eq!(p.usage_at(t(2.5)), 50);
        assert_eq!(p.usage_at(t(3.5)), 80);
    }

    #[test]
    fn oom_is_detected_with_details() {
        let mut p = MemoryPool::new("hbm", 100);
        p.alloc(t(0.0), 60, "a");
        p.alloc(t(1.0), 60, "b");
        let err = p.validate().unwrap_err();
        match err {
            SimError::OutOfMemory { pool, at, requested, in_use, capacity } => {
                assert_eq!(pool, "hbm");
                assert_eq!(at, t(1.0));
                assert_eq!(requested, 60);
                assert_eq!(in_use, 60);
                assert_eq!(capacity, 100);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn free_before_alloc_at_same_instant_is_allowed() {
        let mut p = MemoryPool::new("hbm", 100);
        p.alloc(t(0.0), 100, "a");
        // At t=1 we simultaneously release "a" and allocate "b": legal because
        // frees replay before allocations at equal timestamps.
        p.alloc(t(1.0), 100, "b");
        p.free(t(1.0), 100, "a");
        p.validate().unwrap();
        assert_eq!(p.peak_usage(), 100);
    }

    #[test]
    fn unbalanced_free_is_detected() {
        let mut p = MemoryPool::new("hbm", 100);
        p.alloc(t(0.0), 10, "a");
        p.free(t(1.0), 20, "a");
        let err = p.validate().unwrap_err();
        assert!(matches!(err, SimError::UnbalancedFree { .. }));
    }

    #[test]
    fn timeline_is_time_ordered() {
        let mut p = MemoryPool::new("hbm", 1000);
        p.alloc(t(2.0), 20, "b");
        p.alloc(t(0.0), 10, "a");
        p.free(t(3.0), 10, "a");
        let tl = p.timeline();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].in_use, 10);
        assert_eq!(tl[1].in_use, 30);
        assert_eq!(tl[2].in_use, 20);
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn sampled_timeline_has_requested_resolution() {
        let mut p = MemoryPool::new("hbm", 1000);
        p.alloc(t(0.0), 100, "a");
        p.free(t(10.0), 100, "a");
        let samples = p.sampled_timeline(t(0.0), t(10.0), 10);
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0].in_use, 100);
        assert_eq!(samples[10].in_use, 0);
    }

    #[test]
    fn empty_pool_is_valid() {
        let p = MemoryPool::new("hbm", 0);
        p.validate().unwrap();
        assert_eq!(p.peak_usage(), 0);
        assert_eq!(p.event_count(), 0);
        assert!(p.timeline().is_empty());
    }
}
