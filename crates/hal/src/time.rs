//! Simulated time.
//!
//! The simulator measures virtual time in seconds stored as `f64`. A newtype
//! keeps simulated instants from being confused with wall-clock values and
//! gives us a total order (the engine never produces NaN).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; constructing one from a non-finite float
/// panics, so comparisons never observe NaN.
///
/// # Examples
///
/// ```
/// use dos_hal::SimTime;
/// let a = SimTime::from_secs(1.5);
/// let b = a + SimTime::from_millis(500.0);
/// assert_eq!(b.as_secs(), 2.0);
/// assert!(b > a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime(secs)
    }

    /// Creates a `SimTime` from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a `SimTime` from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// Returns the instant as seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the instant as milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Constructors reject NaN, so `total_cmp` agrees with the derived
        // `PartialOrd` on every representable value.
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "negative SimTime: {} - {}", self.0, rhs.0);
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2.0).as_secs(), 2.0);
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(2_000_000.0).as_secs(), 2.0);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
        assert_eq!(a.saturating_sub(b).as_secs(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.0) + SimTime::from_secs(0.5);
        assert_eq!(a.as_secs(), 1.5);
        let mut b = SimTime::ZERO;
        b += a;
        assert_eq!(b, a);
        assert_eq!((a - SimTime::from_secs(1.0)).as_secs(), 0.5);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_secs(0.0015).to_string(), "1.500ms");
        assert_eq!(SimTime::from_secs(0.0000015).to_string(), "1.500us");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total.as_secs(), 6.0);
    }
}
