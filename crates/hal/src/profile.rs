//! Calibrated hardware profiles.
//!
//! A [`HardwareProfile`] captures every constant the paper measures on its
//! testbeds (§5.1, Table 1, §1, §5.4): link bandwidths, CPU/GPU optimizer
//! update throughputs, precision-conversion throughputs, memory capacities,
//! and contention factors. Profiles feed both the analytic performance model
//! (Equation 1) and the discrete-event scenarios, so the two always agree on
//! the machine they describe.
//!
//! Bandwidths are bytes/second; update and downscale throughputs are
//! *parameters/second* ("P/s" in the paper); FLOP rates are FLOP/second.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Gibibyte multiplier for capacities.
pub const GIB: u64 = 1 << 30;
/// Decimal gigabyte multiplier used for bandwidths (matching vendor specs).
pub const GB: f64 = 1e9;

/// Precision-conversion and cross-memory transfer throughputs (paper
/// Table 1), in bytes/second of *source* data.
///
/// `G`/`H` denote GPU/host tensors; the subscript is the bit width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionTable {
    /// FP32↔FP16 conversion on the GPU (`G32↔G16`): 1.2 TB/s on H100.
    pub g32_g16: f64,
    /// FP32↔FP16 conversion on the host (`H32↔H16`): 62 GB/s.
    pub h32_h16: f64,
    /// Same-precision FP16 transfer over PCIe (`H16↔G16`): 52 GB/s pinned.
    pub h16_g16: f64,
    /// Fused downscale-and-transfer (`H32→G16`): 8 GB/s.
    pub h32_g16: f64,
    /// Fused upscale-on-the-fly flush (`G16→H32`): 4 GB/s.
    pub g16_h32: f64,
}

/// Inputs to the paper's Equation 1, all in parameters/second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModelInputs {
    /// `B`: effective H2D/D2H throughput for FP32 optimizer-state tensors.
    pub b: f64,
    /// `U_g`: GPU update throughput.
    pub ug: f64,
    /// `U_c`: CPU update throughput (per data-parallel rank).
    pub uc: f64,
    /// `D_c`: CPU FP32→FP16 downscale throughput (per rank).
    pub dc: f64,
}

/// A full description of one training node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Number of GPUs in the node (= maximum data-parallel degree per node).
    pub num_gpus: usize,
    /// HBM capacity per GPU, bytes.
    pub gpu_hbm_bytes: u64,
    /// Host DRAM capacity, bytes (shared by all ranks).
    pub host_dram_bytes: u64,
    /// Number of NUMA domains the DRAM is split across.
    pub numa_domains: usize,
    /// Pinned-memory H2D PCIe bandwidth per GPU, bytes/s.
    pub pcie_h2d: f64,
    /// Pinned-memory D2H PCIe bandwidth per GPU, bytes/s.
    pub pcie_d2h: f64,
    /// Pageable-memory H2D bandwidth, bytes/s.
    pub pcie_h2d_pageable: f64,
    /// Pageable-memory D2H bandwidth, bytes/s.
    pub pcie_d2h_pageable: f64,
    /// Unidirectional NVLink D2D bandwidth, bytes/s.
    pub nvlink_bw: f64,
    /// Total physical CPU cores on the node.
    pub cpu_cores: usize,
    /// Aggregate CPU optimizer-update throughput with all cores, params/s.
    pub cpu_update_pps_total: f64,
    /// GPU optimizer-update throughput per GPU, params/s.
    pub gpu_update_pps: f64,
    /// Aggregate CPU FP32→FP16 downscale throughput, params/s.
    pub cpu_downscale_pps_total: f64,
    /// Achieved dense-compute throughput per GPU for transformer kernels,
    /// FLOP/s (an *effective* rate, already discounted from peak).
    pub gpu_flops: f64,
    /// Host `malloc`+first-touch bandwidth for unpinned staging buffers,
    /// bytes/s (paper Fig. 6 measures ~4 GB/s).
    pub host_alloc_bw: f64,
    /// Host DRAM memcpy bandwidth, bytes/s.
    pub host_memcpy_bw: f64,
    /// Table 1 conversion/transfer throughputs.
    pub conv: ConversionTable,
    /// Effective FP32-optimizer-state transfer throughput used during the
    /// update phase, params/s (`B` of Eq. 1). Lower than raw PCIe because the
    /// source/destination is contended, NUMA-split host DRAM.
    pub update_b_pps: f64,
    /// Multiplier (< 1) applied to CPU update throughput while PCIe traffic
    /// is in flight (DRAM contention; paper Fig. 15 shows CPU utilization
    /// dropping to ~60 % at 50 % GPU-scheduled updates).
    pub dram_contention_cpu_factor: f64,
    /// Fixed kernel-launch / DMA-setup latency per operation.
    pub op_latency: SimTime,
    /// NVMe read bandwidth, bytes/s (checkpoint/offload extension).
    pub nvme_read_bw: f64,
    /// NVMe write bandwidth, bytes/s.
    pub nvme_write_bw: f64,
}

impl HardwareProfile {
    /// CPU cores available to a single data-parallel rank.
    pub fn cores_per_rank(&self) -> usize {
        (self.cpu_cores / self.num_gpus).max(1)
    }

    /// CPU update throughput available to one rank, params/s.
    pub fn cpu_update_pps(&self) -> f64 {
        self.cpu_update_pps_total / self.num_gpus as f64
    }

    /// CPU downscale throughput available to one rank, params/s.
    pub fn cpu_downscale_pps(&self) -> f64 {
        self.cpu_downscale_pps_total / self.num_gpus as f64
    }

    /// Host DRAM capacity available to one rank, bytes.
    pub fn dram_per_rank(&self) -> u64 {
        self.host_dram_bytes / self.num_gpus as u64
    }

    /// Returns a copy with the CPU-core count (and the core-proportional
    /// update/downscale throughputs) rescaled — used for the paper's
    /// "CPU cores per GPU" sweep (Figure 14).
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_gpu` is zero.
    pub fn with_cores_per_gpu(&self, cores_per_gpu: usize) -> HardwareProfile {
        assert!(cores_per_gpu > 0, "cores_per_gpu must be positive");
        let mut p = self.clone();
        let old_per_rank = self.cores_per_rank() as f64;
        let factor = cores_per_gpu as f64 / old_per_rank;
        p.cpu_cores = cores_per_gpu * self.num_gpus;
        p.cpu_update_pps_total *= factor;
        p.cpu_downscale_pps_total *= factor;
        p.name = format!("{} ({cores_per_gpu} cores/gpu)", self.name);
        p
    }

    /// Returns a copy with a different number of GPUs, keeping per-GPU links
    /// and per-core CPU throughput constant — used for the weak-scaling
    /// sweep (Figure 17, where DP degree exceeds one node's GPUs).
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn with_num_gpus(&self, num_gpus: usize) -> HardwareProfile {
        assert!(num_gpus > 0, "num_gpus must be positive");
        let mut p = self.clone();
        let factor = num_gpus as f64 / self.num_gpus as f64;
        p.num_gpus = num_gpus;
        p.cpu_cores = ((self.cpu_cores as f64) * factor).round() as usize;
        p.cpu_update_pps_total *= factor;
        p.cpu_downscale_pps_total *= factor;
        p.host_dram_bytes = ((self.host_dram_bytes as f64) * factor) as u64;
        p.name = format!("{} ({num_gpus} gpus)", self.name);
        p
    }

    /// The Equation-1 inputs for this machine.
    pub fn perf_model_inputs(&self) -> PerfModelInputs {
        PerfModelInputs {
            b: self.update_b_pps,
            ug: self.gpu_update_pps,
            uc: self.cpu_update_pps(),
            dc: self.cpu_downscale_pps(),
        }
    }

    /// Effective bytes/s over PCIe for FP32 optimizer-state traffic during
    /// the update phase (4 bytes per parameter at `update_b_pps`).
    pub fn update_link_bw(&self) -> f64 {
        self.update_b_pps * 4.0
    }

    /// The JLSE 4×H100 testbed of §5.1 — the paper's primary machine.
    ///
    /// Measured constants: 55 GB/s pinned PCIe Gen5 per direction, 133 GB/s
    /// NVLink, 96 cores / 192 threads, 512 GB DDR5 over 2 NUMA domains,
    /// aggregate GPU updates ≈ 100 B P/s (25 B P/s per GPU), aggregate CPU
    /// updates ≈ 8 B P/s, CPU→GPU updated-parameter copies ≈ 12 B P/s, and
    /// the Table 1 conversion throughputs (`D_c` per rank derives from the
    /// 62 GB/s host-side H32↔H16 conversion). The effective Eq.-1 `B` is
    /// calibrated to 4 B P/s (≈ 16 GB/s of FP32 state) — well below the
    /// PCIe peak because optimizer-state streams are sourced from contended,
    /// NUMA-split DRAM — which yields the paper's optimal stride k = 2.
    pub fn jlse_h100() -> HardwareProfile {
        HardwareProfile {
            name: "jlse-4xH100".into(),
            num_gpus: 4,
            gpu_hbm_bytes: 80 * GIB,
            host_dram_bytes: 512 * GIB,
            numa_domains: 2,
            pcie_h2d: 55.0 * GB,
            pcie_d2h: 55.0 * GB,
            pcie_h2d_pageable: 9.0 * GB,
            pcie_d2h_pageable: 16.0 * GB,
            nvlink_bw: 133.0 * GB,
            cpu_cores: 96,
            cpu_update_pps_total: 8.0e9,
            gpu_update_pps: 25.0e9,
            cpu_downscale_pps_total: 62.0e9,
            gpu_flops: 210.0e12,
            host_alloc_bw: 4.0 * GB,
            host_memcpy_bw: 62.0 * GB,
            conv: ConversionTable {
                g32_g16: 1.2e12,
                h32_h16: 62.0 * GB,
                h16_g16: 52.0 * GB,
                h32_g16: 8.0 * GB,
                g16_h32: 4.0 * GB,
            },
            update_b_pps: 4.0e9,
            dram_contention_cpu_factor: 0.75,
            op_latency: SimTime::from_micros(8.0),
            nvme_read_bw: 6.0 * GB,
            nvme_write_bw: 4.0 * GB,
        }
    }

    /// The 4×V100 machine of §5.4 used to validate platform independence of
    /// the performance model: B = 3 B P/s, U_g = 35 B P/s, U_c = 2 B P/s,
    /// D_c = 8.7 B P/s ⇒ k = 2.
    pub fn v100_node() -> HardwareProfile {
        HardwareProfile {
            name: "4xV100-32GB".into(),
            num_gpus: 4,
            gpu_hbm_bytes: 32 * GIB,
            host_dram_bytes: 192 * GIB,
            numa_domains: 2,
            pcie_h2d: 13.0 * GB,
            pcie_d2h: 13.0 * GB,
            pcie_h2d_pageable: 6.0 * GB,
            pcie_d2h_pageable: 6.5 * GB,
            nvlink_bw: 100.0 * GB,
            cpu_cores: 88,
            cpu_update_pps_total: 8.0e9,
            gpu_update_pps: 35.0e9,
            cpu_downscale_pps_total: 34.8e9,
            gpu_flops: 50.0e12,
            host_alloc_bw: 3.0 * GB,
            host_memcpy_bw: 40.0 * GB,
            conv: ConversionTable {
                g32_g16: 750.0 * GB,
                h32_h16: 40.0 * GB,
                h16_g16: 12.0 * GB,
                h32_g16: 5.0 * GB,
                g16_h32: 2.5 * GB,
            },
            update_b_pps: 3.0e9,
            dram_contention_cpu_factor: 0.55,
            op_latency: SimTime::from_micros(10.0),
            nvme_read_bw: 3.0 * GB,
            nvme_write_bw: 2.0 * GB,
        }
    }

    /// ALCF Polaris-like node: 4×A100-40GB with 64 cores (Figure 14's
    /// motivating example of a low CPU-per-GPU machine).
    pub fn polaris_a100() -> HardwareProfile {
        HardwareProfile {
            name: "polaris-4xA100-40GB".into(),
            num_gpus: 4,
            gpu_hbm_bytes: 40 * GIB,
            host_dram_bytes: 512 * GIB,
            numa_domains: 4,
            pcie_h2d: 25.0 * GB,
            pcie_d2h: 25.0 * GB,
            pcie_h2d_pageable: 8.0 * GB,
            pcie_d2h_pageable: 12.0 * GB,
            nvlink_bw: 100.0 * GB,
            cpu_cores: 64,
            cpu_update_pps_total: 5.2e9,
            gpu_update_pps: 30.0e9,
            cpu_downscale_pps_total: 8.0e9,
            gpu_flops: 120.0e12,
            host_alloc_bw: 4.0 * GB,
            host_memcpy_bw: 50.0 * GB,
            conv: ConversionTable {
                g32_g16: 900.0 * GB,
                h32_h16: 50.0 * GB,
                h16_g16: 23.0 * GB,
                h32_g16: 7.0 * GB,
                g16_h32: 3.0 * GB,
            },
            update_b_pps: 3.1e9,
            dram_contention_cpu_factor: 0.75,
            op_latency: SimTime::from_micros(10.0),
            nvme_read_bw: 5.0 * GB,
            nvme_write_bw: 3.5 * GB,
        }
    }

    /// AWS p3dn.24xlarge-like node: 8×V100 with 96 vCPUs (the other
    /// CPU-starved configuration §5.4 cites).
    pub fn aws_p3dn() -> HardwareProfile {
        let mut p = Self::v100_node();
        p.name = "aws-p3dn-8xV100".into();
        p.num_gpus = 8;
        p.cpu_cores = 48; // 96 vCPUs = 48 physical cores
        p.host_dram_bytes = 768 * GIB;
        p.cpu_update_pps_total = 4.4e9;
        p.cpu_downscale_pps_total = 19.0e9;
        p
    }

    /// A Grace-Hopper-like node with a 200 GB/s C2C CPU–GPU interconnect —
    /// the future-work configuration in §6. The effective `B` rises with the
    /// interconnect, which pushes the optimal stride toward all-GPU updates.
    pub fn grace_hopper() -> HardwareProfile {
        let mut p = Self::jlse_h100();
        p.name = "grace-hopper-C2C".into();
        p.pcie_h2d = 200.0 * GB;
        p.pcie_d2h = 200.0 * GB;
        p.update_b_pps = 25.0e9;
        p.conv.h16_g16 = 180.0 * GB;
        p.conv.h32_g16 = 30.0 * GB;
        p.conv.g16_h32 = 15.0 * GB;
        p
    }

    /// All built-in profiles.
    pub fn presets() -> Vec<HardwareProfile> {
        vec![
            Self::jlse_h100(),
            Self::v100_node(),
            Self::polaris_a100(),
            Self::aws_p3dn(),
            Self::grace_hopper(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_profile_matches_paper_constants() {
        let p = HardwareProfile::jlse_h100();
        assert_eq!(p.num_gpus, 4);
        assert_eq!(p.gpu_hbm_bytes, 80 * GIB);
        assert_eq!(p.host_dram_bytes, 512 * GIB);
        assert_eq!(p.pcie_h2d, 55.0 * GB);
        assert_eq!(p.conv.g32_g16, 1.2e12);
        assert_eq!(p.conv.h32_h16, 62.0 * GB);
        assert_eq!(p.conv.h16_g16, 52.0 * GB);
        assert_eq!(p.conv.h32_g16, 8.0 * GB);
        assert_eq!(p.conv.g16_h32, 4.0 * GB);
        // §1: aggregate GPU updates ~100 B P/s, CPU updates ~8 B P/s.
        assert_eq!(p.gpu_update_pps * p.num_gpus as f64, 100.0e9);
        assert_eq!(p.cpu_update_pps_total, 8.0e9);
        // D_c derives from the 62 GB/s host-side FP32->FP16 conversion.
        assert_eq!(p.cpu_downscale_pps_total, 62.0e9);
    }

    #[test]
    fn per_rank_derivations() {
        let p = HardwareProfile::jlse_h100();
        assert_eq!(p.cores_per_rank(), 24);
        assert_eq!(p.cpu_update_pps(), 2.0e9);
        assert_eq!(p.cpu_downscale_pps(), 15.5e9);
        assert_eq!(p.dram_per_rank(), 128 * GIB);
    }

    #[test]
    fn v100_matches_section_5_4() {
        let p = HardwareProfile::v100_node();
        let m = p.perf_model_inputs();
        assert_eq!(m.b, 3.0e9);
        assert_eq!(m.ug, 35.0e9);
        assert_eq!(m.uc, 2.0e9);
        assert!((m.dc - 8.7e9).abs() < 1e-3);
    }

    #[test]
    fn cores_per_gpu_rescaling() {
        let p = HardwareProfile::jlse_h100();
        let half = p.with_cores_per_gpu(12);
        assert_eq!(half.cores_per_rank(), 12);
        assert!((half.cpu_update_pps() - 1.0e9).abs() < 1.0);
        let double = p.with_cores_per_gpu(48);
        assert!((double.cpu_update_pps() - 4.0e9).abs() < 1.0);
    }

    #[test]
    fn gpu_rescaling_keeps_per_rank_resources() {
        let p = HardwareProfile::jlse_h100();
        let big = p.with_num_gpus(16);
        assert_eq!(big.num_gpus, 16);
        assert!((big.cpu_update_pps() - p.cpu_update_pps()).abs() < 1.0);
        assert_eq!(big.dram_per_rank(), p.dram_per_rank());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cores_rejected() {
        let _ = HardwareProfile::jlse_h100().with_cores_per_gpu(0);
    }

    #[test]
    fn presets_are_distinctly_named() {
        let names: Vec<String> =
            HardwareProfile::presets().into_iter().map(|p| p.name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn update_link_bw_is_fp32_bytes() {
        let p = HardwareProfile::v100_node();
        assert_eq!(p.update_link_bw(), 12.0e9); // 3 B P/s of FP32 state
    }
}
