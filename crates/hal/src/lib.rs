//! # dos-hal — simulated hardware substrate
//!
//! This crate is the hardware abstraction layer of the *Deep Optimizer
//! States* reproduction (Maurya et al., MIDDLEWARE 2024). The paper's system
//! runs on CUDA GPUs, PCIe links, and pinned host memory; this crate
//! replaces that hardware with a **deterministic discrete-event model** that
//! preserves the properties the paper's scheduling results depend on:
//!
//! * per-stream FIFO ordering and cross-stream events (CUDA stream
//!   semantics, used by Algorithm 1's dedicated p/m/v transfer streams),
//! * full-duplex PCIe — H2D and D2H are independent resources that can be
//!   occupied simultaneously but each serializes its own traffic,
//! * distinct throughputs for pinned vs. pageable memory, precision
//!   conversion on either side of the link (Table 1), CPU vs. GPU optimizer
//!   updates, and host-DRAM contention,
//! * capacity-bounded memories whose fluctuation over a training iteration
//!   (Figure 3) creates the headroom the middleware exploits.
//!
//! ## Quick tour
//!
//! ```
//! use dos_hal::{HardwareProfile, RankSim, OpSpec, SimTime};
//!
//! // One data-parallel rank of the paper's 4xH100 testbed.
//! let profile = HardwareProfile::jlse_h100();
//! let mut rank = RankSim::new(&profile);
//!
//! // Prefetch one 100M-parameter FP32 subgroup (p, m, v) while the CPU
//! // updates another subgroup: the two overlap because they occupy
//! // different resources.
//! let bytes = 3.0 * 4.0 * 100e6;
//! let prefetch = rank.sim.submit(
//!     OpSpec::transfer(rank.res.h2d, bytes)
//!         .on(rank.streams.param)
//!         .label("prefetch:sg3")
//!         .phase("update"),
//! )?;
//! let cpu_secs = 100e6 / profile.cpu_update_pps();
//! let cpu_update = rank.sim.submit(
//!     OpSpec::compute(rank.res.cpu, cpu_secs)
//!         .on(rank.streams.cpu)
//!         .label("cpu-update:sg1")
//!         .phase("update"),
//! )?;
//! let gpu_update = rank.sim.submit(
//!     OpSpec::compute(rank.res.gpu, 100e6 / profile.gpu_update_pps)
//!         .on(rank.streams.compute)
//!         .after(prefetch)
//!         .label("gpu-update:sg3")
//!         .phase("update"),
//! )?;
//! assert!(rank.sim.finish_time(gpu_update) > rank.sim.finish_time(prefetch));
//! assert!(rank.sim.makespan() >= rank.sim.finish_time(cpu_update));
//! # Ok::<(), dos_hal::SimError>(())
//! ```
//!
//! Higher layers: `dos-sim` builds whole training iterations on these
//! primitives, and `dos-core` implements the paper's interleaved update
//! scheduler against them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The simulated hardware sits under every other crate: failures must
// surface as typed errors, not panics; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod engine;
mod error;
mod fault;
mod memory;
mod node;
mod profile;
mod time;

pub use engine::{Interval, OpId, OpSpec, ResourceId, ResourceKind, Simulator, StreamId};
pub use error::SimError;
pub use fault::{DegradationWindow, FailureMode, FailureRule, FaultEvent, FaultPlan, RetryPolicy};
pub use memory::{MemEvent, MemSample, MemoryPool};
pub use node::{RankResources, RankSim, RankStreams};
pub use profile::{ConversionTable, HardwareProfile, PerfModelInputs, GB, GIB};
pub use time::SimTime;
