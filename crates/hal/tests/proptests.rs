//! Property tests of the discrete-event engine's invariants.

use dos_hal::{MemoryPool, OpSpec, ResourceKind, SimTime, Simulator};
use proptest::prelude::*;

proptest! {
    /// A resource never runs two operations at once: total busy time equals
    /// the sum of durations, and utilization never exceeds 1.
    #[test]
    fn resource_never_overcommits(
        works in proptest::collection::vec(0.1f64..10.0, 1..40),
        rate in 0.5f64..100.0,
    ) {
        let mut sim = Simulator::new();
        let r = sim.add_resource("r", ResourceKind::GpuCompute, rate);
        // Alternate between two streams to force cross-stream contention.
        let s1 = sim.add_stream("a");
        let s2 = sim.add_stream("b");
        for (i, w) in works.iter().enumerate() {
            let stream = if i % 2 == 0 { s1 } else { s2 };
            sim.submit(OpSpec::compute(r, *w).on(stream)).unwrap();
        }
        let expected: f64 = works.iter().map(|w| w / rate).sum();
        prop_assert!((sim.busy_time(r).as_secs() - expected).abs() < 1e-9);
        prop_assert!(sim.utilization(r) <= 1.0 + 1e-12);
        // With a single contended resource, makespan == total busy time.
        prop_assert!((sim.makespan().as_secs() - expected).abs() < 1e-9);
    }

    /// Dependencies only ever delay: adding an edge never makes an op
    /// finish earlier.
    #[test]
    fn dependencies_are_monotone(
        w1 in 0.1f64..5.0,
        w2 in 0.1f64..5.0,
    ) {
        // Independent ops on independent resources.
        let mut free = Simulator::new();
        let r1 = free.add_resource("r1", ResourceKind::GpuCompute, 1.0);
        let r2 = free.add_resource("r2", ResourceKind::CpuCompute, 1.0);
        let s1 = free.add_stream("a");
        let s2 = free.add_stream("b");
        let _a = free.submit(OpSpec::compute(r1, w1).on(s1)).unwrap();
        let b_free = free.submit(OpSpec::compute(r2, w2).on(s2)).unwrap();
        let t_free = free.finish_time(b_free);

        let mut dep = Simulator::new();
        let r1 = dep.add_resource("r1", ResourceKind::GpuCompute, 1.0);
        let r2 = dep.add_resource("r2", ResourceKind::CpuCompute, 1.0);
        let s1 = dep.add_stream("a");
        let s2 = dep.add_stream("b");
        let a = dep.submit(OpSpec::compute(r1, w1).on(s1)).unwrap();
        let b_dep = dep.submit(OpSpec::compute(r2, w2).on(s2).after(a)).unwrap();
        prop_assert!(dep.finish_time(b_dep) >= t_free);
    }

    /// Scaling a resource's throughput down never speeds anything up.
    #[test]
    fn throughput_scaling_is_monotone(
        works in proptest::collection::vec(0.1f64..5.0, 1..20),
        factor in 0.1f64..1.0,
    ) {
        let run = |scale: f64| {
            let mut sim = Simulator::new();
            let r = sim.add_resource("r", ResourceKind::CpuCompute, 10.0);
            sim.set_throughput_scale(r, scale);
            let s = sim.add_stream("s");
            for w in &works {
                sim.submit(OpSpec::compute(r, *w).on(s)).unwrap();
            }
            sim.makespan().as_secs()
        };
        prop_assert!(run(factor) >= run(1.0) - 1e-12);
    }

    /// Alloc/free pairs always validate and the peak bounds every sample.
    #[test]
    fn balanced_pools_validate(
        events in proptest::collection::vec((0.0f64..100.0, 1u64..1000), 1..30),
    ) {
        let total: u64 = events.iter().map(|(_, b)| b).sum();
        let mut pool = MemoryPool::new("p", total);
        for (i, (t, bytes)) in events.iter().enumerate() {
            pool.alloc(SimTime::from_secs(*t), *bytes, format!("tag{i}"));
            pool.free(SimTime::from_secs(t + 1000.0), *bytes, format!("tag{i}"));
        }
        prop_assert!(pool.validate().is_ok());
        let peak = pool.peak_usage();
        for s in pool.timeline() {
            prop_assert!(s.in_use <= peak);
        }
        // Everything freed by the end.
        prop_assert_eq!(pool.usage_at(SimTime::from_secs(10_000.0)), 0);
    }

    /// Stream FIFO: ops on one stream finish in submission order.
    #[test]
    fn stream_order_is_preserved(
        works in proptest::collection::vec(0.01f64..2.0, 2..20),
    ) {
        let mut sim = Simulator::new();
        let r = sim.add_resource("r", ResourceKind::LinkH2D, 3.0);
        let s = sim.add_stream("s");
        let mut last = None;
        for w in &works {
            let op = sim.submit(OpSpec::transfer(r, *w).on(s)).unwrap();
            if let Some(prev) = last {
                prop_assert!(sim.finish_time(op) >= sim.finish_time(prev));
            }
            last = Some(op);
        }
    }
}
