//! # dos-tensor — tensors and mixed-precision numerics
//!
//! Storage substrate for the *Deep Optimizer States* reproduction: dense
//! row-major [`Tensor`]s backed by FP32, software-emulated IEEE [`F16`], or
//! [`Bf16`], plus the chunk-wise precision-conversion kernels
//! ([`convert`]) that the paper's optimized gradient path relies on
//! (§4.1 "PCIe transfers with higher precision", Figure 6, Table 1).
//!
//! The half-precision types are bit-exact (round-to-nearest-even, verified
//! exhaustively over all 65 536 bit patterns), so mixed-precision rounding
//! behaves as it would on real FP16 hardware. The [`kernels`] module holds
//! branchless, autovectorizable twins of the conversions, bit-identical to
//! the scalar oracle and used by every hot path; the scalar code remains
//! the reference the conformance harness checks against.
//!
//! ```
//! use dos_tensor::{Tensor, DType, F16};
//!
//! // FP32 master weights -> FP16 device copy, as in mixed-precision training.
//! let master = Tensor::from_vec(&[4], vec![0.1, 0.2, 0.3, 0.4])?;
//! let device = master.to_dtype(DType::F16);
//! assert_eq!(device.size_bytes(), master.size_bytes() / 2);
//! # Ok::<(), dos_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bf16;
pub mod convert;
mod dtype;
mod error;
mod f16;
pub mod kernels;
mod tensor;

pub use bf16::Bf16;
pub use dtype::DType;
pub use error::TensorError;
pub use f16::F16;
pub use tensor::Tensor;
