//! Branchless, autovectorizable FP16↔FP32 conversion kernels.
//!
//! [`F16::from_f32`]/[`F16::to_f32`] are deliberately written as readable,
//! branchy scalar code — they are the *oracle*. The kernels here compute
//! the exact same bits through straight-line integer arithmetic plus one
//! float-magic trick, so LLVM can keep the loop in SIMD registers instead
//! of stalling on the oracle's four-way branch per element. Bit-exactness
//! against the oracle is enforced three ways: the unit tests below, the
//! `kernels` arm of the tri-oracle conformance harness (`dos-oracle`), and
//! proptests over raw bit patterns.
//!
//! The downscale is `D_c` in the paper's Eq. 1 — one of the two CPU-side
//! throughput constants the adaptive controller steers on — so this is a
//! measured hot path, not a micro-optimization; see `BENCH_7.json`.

use crate::f16::F16;

/// Elements per cache-friendly chunk processed by the slice kernels.
pub const CHUNK: usize = 4096;

/// Converts one f32 bit pattern to the f16 bit pattern `F16::from_f32`
/// would produce, without data-dependent branches.
///
/// * **Normal** halves re-bias the exponent in place and round the low 13
///   mantissa bits to nearest-even with the classic `rem + 0x0FFF + lsb`
///   carry; mantissa overflow carries into the exponent (rounding up to
///   infinity), exactly like the oracle's `wrapping_add`.
/// * **Subnormal/zero** halves use the FPU: `|x|·2²⁴ + 2²³` lands in
///   `[2²³, 2²³+1024]`, so the hardware's own round-to-nearest-even leaves
///   the rounded subnormal payload in the low mantissa bits.
/// * **NaN** keeps its truncated payload but stays NaN
///   (`0x0200 | payload.max(1)`), matching the oracle.
#[inline]
pub fn f16_bits_from_f32_bits(bits: u32) -> u16 {
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;

    // Normal path (exponent already known to land in 1..=30 when selected).
    let rebias = abs.wrapping_sub(112 << 23);
    let h = rebias >> 13;
    let rem = abs & 0x1FFF;
    let h_norm = h + ((rem + 0x0FFF + (h & 1)) >> 13);

    // Subnormal/zero path via float magic (hardware RNE does the rounding).
    let sub = f32::from_bits(abs) * 16_777_216.0 + 8_388_608.0; // |x|·2^24 + 2^23
    let h_sub = sub.to_bits() & 0x0000_07FF;

    // NaN path: truncated payload, NaN-ness preserved.
    let h_nan = 0x7C00 | 0x0200 | ((abs >> 13) & 0x03FF).max(1);

    let magnitude = if abs > 0x7F80_0000 {
        h_nan
    } else if abs >= 0x4780_0000 {
        0x7C00 // overflow (or exact infinity)
    } else if abs >= 0x3880_0000 {
        h_norm
    } else {
        h_sub
    };
    sign | magnitude as u16
}

/// Converts one f16 bit pattern to the f32 bits/value `F16::to_f32` would
/// produce, without data-dependent branches.
#[inline]
pub fn f32_from_f16_bits(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;

    let norm = sign | ((exp + 112) << 23) | (man << 13);
    // Subnormal: man · 2⁻²⁴, exact in f32 (int→float convert + pow-2 scale).
    let sub = (man as f32 * f32::from_bits(0x3380_0000)).to_bits() | sign;
    let naninf = sign | 0x7F80_0000 | (man << 13) | if man != 0 { 0x0040_0000 } else { 0 };

    let bits = if exp == 0x1F {
        naninf
    } else if exp == 0 {
        sub
    } else {
        norm
    };
    f32::from_bits(bits)
}

/// Vectorized FP32→FP16 downscale over equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length (the fallible, chunk-configurable
/// surface is [`crate::convert::downscale_f32_chunked`]).
pub fn downscale(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    for (s, d) in src.chunks(CHUNK).zip(dst.chunks_mut(CHUNK)) {
        for (x, y) in s.iter().zip(d.iter_mut()) {
            *y = F16::from_bits(f16_bits_from_f32_bits(x.to_bits()));
        }
    }
}

/// Scalar oracle twin of [`downscale`]: per-element [`F16::from_f32`].
pub fn downscale_reference(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "downscale length mismatch");
    for (x, y) in src.iter().zip(dst.iter_mut()) {
        *y = F16::from_f32(*x);
    }
}

/// Vectorized FP16→FP32 upscale over equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn upscale(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    for (s, d) in src.chunks(CHUNK).zip(dst.chunks_mut(CHUNK)) {
        for (x, y) in s.iter().zip(d.iter_mut()) {
            *y = f32_from_f16_bits(x.to_bits());
        }
    }
}

/// Scalar oracle twin of [`upscale`]: per-element [`F16::to_f32`].
pub fn upscale_reference(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "upscale length mismatch");
    for (x, y) in src.iter().zip(dst.iter_mut()) {
        *y = x.to_f32();
    }
}

/// Rounds every element through FP16 in place (`x = f16(x) as f32`) — the
/// FP16-gradient-flush and FP16-device-parameter paths of
/// `dos_optim::ModelOptimizer`, fused so the intermediate half never
/// leaves a register.
pub fn round_through_f16(buf: &mut [f32]) {
    for chunk in buf.chunks_mut(CHUNK) {
        for x in chunk.iter_mut() {
            *x = f32_from_f16_bits(f16_bits_from_f32_bits(x.to_bits()));
        }
    }
}

/// Scalar oracle twin of [`round_through_f16`].
pub fn round_through_f16_reference(buf: &mut [f32]) {
    for x in buf.iter_mut() {
        *x = F16::from_f32(*x).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-compare the fast downscale against the oracle, treating two NaN
    /// results as equal only when their bits agree (the oracle pins exact
    /// NaN payload bits, so we demand full equality).
    fn check_f32(x: f32) {
        let want = F16::from_f32(x).to_bits();
        let got = f16_bits_from_f32_bits(x.to_bits());
        assert_eq!(got, want, "downscale({x:?} = {:#010x}) diverged", x.to_bits());
    }

    #[test]
    fn upscale_matches_oracle_exhaustively() {
        for bits in 0..=u16::MAX {
            let want = F16::from_bits(bits).to_f32();
            let got = f32_from_f16_bits(bits);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "upscale({bits:#06x}) diverged: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn downscale_matches_oracle_on_all_f16_values_and_neighbours() {
        // Every exactly-representable half, plus the f32 bit patterns just
        // around it (which exercise every rounding boundary).
        for bits in 0..=u16::MAX {
            let f = F16::from_bits(bits).to_f32();
            let b = f.to_bits();
            for delta in [0u32, 1, 2, 0x0FFF, 0x1000, 0x1001] {
                check_f32(f32::from_bits(b.wrapping_add(delta)));
                check_f32(f32::from_bits(b.wrapping_sub(delta)));
            }
        }
    }

    #[test]
    fn downscale_matches_oracle_on_edge_cases() {
        for x in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            65504.0,
            65519.0,
            65520.0,
            1e6,
            -1e6,
            1e-9,
            -1e-9,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            f32::from_bits(1),           // smallest f32 subnormal
            f32::from_bits(0x7F80_0001), // signalling-ish NaN, payload 1
            f32::from_bits(0xFFC0_0000), // negative quiet NaN
            f32::from_bits(0x3380_0000), // 2^-24 (half of min subnormal: tie)
            f32::from_bits(0x3380_0001), // just above the tie
            6.103_515_6e-5,              // F16::MIN_POSITIVE
            5.960_464_5e-8,              // F16::MIN_SUBNORMAL
        ] {
            check_f32(x);
        }
    }

    #[test]
    fn downscale_matches_oracle_on_lcg_sweep() {
        // 2^20 pseudo-random f32 bit patterns (full-period LCG so the sweep
        // is deterministic and covers high/low bits evenly).
        let mut x: u32 = 0x2545_F491;
        for _ in 0..(1 << 20) {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            check_f32(f32::from_bits(x));
        }
    }

    /// Full 2^32 sweep — ~40 s in release, run explicitly with
    /// `cargo test -p dos-tensor --release -- --ignored exhaustive_u32`.
    #[test]
    #[ignore]
    fn downscale_matches_oracle_exhaustive_u32() {
        let mut bits: u32 = 0;
        loop {
            let want = F16::from_f32(f32::from_bits(bits)).to_bits();
            let got = f16_bits_from_f32_bits(bits);
            assert_eq!(got, want, "downscale({bits:#010x}) diverged");
            bits = bits.wrapping_add(1);
            if bits == 0 {
                break;
            }
        }
    }

    #[test]
    fn slice_kernels_match_their_references() {
        let src: Vec<f32> = (0..10_000)
            .map(|i| ((i as f32) - 5000.0) * 0.037 + 1.0 / (i as f32 + 1.0))
            .collect();
        let mut fast = vec![F16::ZERO; src.len()];
        let mut slow = vec![F16::ZERO; src.len()];
        downscale(&src, &mut fast);
        downscale_reference(&src, &mut slow);
        assert_eq!(fast, slow);

        let mut up_fast = vec![0.0f32; src.len()];
        let mut up_slow = vec![0.0f32; src.len()];
        upscale(&fast, &mut up_fast);
        upscale_reference(&slow, &mut up_slow);
        assert_eq!(
            up_fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            up_slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        let mut rt_fast = src.clone();
        let mut rt_slow = src.clone();
        round_through_f16(&mut rt_fast);
        round_through_f16_reference(&mut rt_slow);
        assert_eq!(
            rt_fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            rt_slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn downscale_rejects_mismatch() {
        downscale(&[1.0, 2.0], &mut [F16::ZERO]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn upscale_rejects_mismatch() {
        upscale(&[F16::ZERO], &mut [0.0, 0.0]);
    }
}
