//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

use crate::dtype::DType;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape did not match the data.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
        /// The offending shape.
        shape: Vec<usize>,
    },
    /// An operation required a specific storage precision.
    DTypeMismatch {
        /// Required dtype.
        expected: DType,
        /// Actual dtype.
        actual: DType,
    },
    /// Source and destination buffers of a conversion differ in length.
    LengthMismatch {
        /// Source length.
        src: usize,
        /// Destination length.
        dst: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual, shape } => write!(
                f,
                "shape mismatch: shape {shape:?} implies {expected} elements, got {actual}"
            ),
            TensorError::DTypeMismatch { expected, actual } => {
                write!(f, "dtype mismatch: expected {expected}, got {actual}")
            }
            TensorError::LengthMismatch { src, dst } => {
                write!(f, "length mismatch: source has {src} elements, destination {dst}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::DTypeMismatch { expected: DType::F32, actual: DType::F16 };
        assert_eq!(e.to_string(), "dtype mismatch: expected fp32, got fp16");
        let e = TensorError::LengthMismatch { src: 3, dst: 4 };
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
