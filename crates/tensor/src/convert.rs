//! Chunk-wise precision conversion kernels.
//!
//! Deep Optimizer States replaces DeepSpeed's gradient flush (allocate an
//! unpinned FP16 host staging buffer → D2H copy → host-side FP16→FP32
//! upscale) with a *chunk-wise in-place on-the-fly* FP16→FP32 conversion on
//! the GPU followed by a direct DMA of FP32 chunks into the pinned host
//! gradient buffer (§4.1, Figure 6). These kernels are the functional
//! counterparts of that path; `dos-hal` models their timing.

use crate::bf16::Bf16;
use crate::error::TensorError;
use crate::f16::F16;
use crate::kernels;

/// Upscales FP16 `src` into FP32 `dst`, processing `chunk` elements at a
/// time (a `chunk` of 0 means one pass over the whole buffer).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the buffers differ in length.
pub fn upscale_f16_chunked(
    src: &[F16],
    dst: &mut [f32],
    chunk: usize,
) -> Result<(), TensorError> {
    if src.len() != dst.len() {
        return Err(TensorError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let chunk = if chunk == 0 { src.len().max(1) } else { chunk };
    for (s, d) in src.chunks(chunk).zip(dst.chunks_mut(chunk)) {
        kernels::upscale(s, d);
    }
    Ok(())
}

/// Downscales FP32 `src` into FP16 `dst` with round-to-nearest-even,
/// processing `chunk` elements at a time.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the buffers differ in length.
pub fn downscale_f32_chunked(
    src: &[f32],
    dst: &mut [F16],
    chunk: usize,
) -> Result<(), TensorError> {
    if src.len() != dst.len() {
        return Err(TensorError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    let chunk = if chunk == 0 { src.len().max(1) } else { chunk };
    for (s, d) in src.chunks(chunk).zip(dst.chunks_mut(chunk)) {
        kernels::downscale(s, d);
    }
    Ok(())
}

/// Upscales BF16 `src` into FP32 `dst`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the buffers differ in length.
pub fn upscale_bf16(src: &[Bf16], dst: &mut [f32]) -> Result<(), TensorError> {
    if src.len() != dst.len() {
        return Err(TensorError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    for (x, y) in src.iter().zip(dst.iter_mut()) {
        *y = x.to_f32();
    }
    Ok(())
}

/// Downscales FP32 `src` into BF16 `dst`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the buffers differ in length.
pub fn downscale_bf16(src: &[f32], dst: &mut [Bf16]) -> Result<(), TensorError> {
    if src.len() != dst.len() {
        return Err(TensorError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    for (x, y) in src.iter().zip(dst.iter_mut()) {
        *y = Bf16::from_f32(*x);
    }
    Ok(())
}

/// Accumulates `src` into `dst` (`dst += src`), the gradient-accumulation
/// kernel (`old_grad.add_(new_grad)`) that §3 observes is orders of
/// magnitude faster on the GPU.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the buffers differ in length.
pub fn accumulate(dst: &mut [f32], src: &[f32]) -> Result<(), TensorError> {
    if src.len() != dst.len() {
        return Err(TensorError::LengthMismatch { src: src.len(), dst: dst.len() });
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upscale_matches_elementwise() {
        let src: Vec<F16> = (0..100).map(|i| F16::from_f32(i as f32 * 0.25)).collect();
        let mut a = vec![0.0f32; 100];
        let mut b = vec![0.0f32; 100];
        upscale_f16_chunked(&src, &mut a, 7).unwrap();
        upscale_f16_chunked(&src, &mut b, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[4], 1.0);
    }

    #[test]
    fn downscale_round_trips_representable_values() {
        let src: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut dst = vec![F16::ZERO; 64];
        downscale_f32_chunked(&src, &mut dst, 16).unwrap();
        let mut back = vec![0.0f32; 64];
        upscale_f16_chunked(&dst, &mut back, 16).unwrap();
        assert_eq!(src, back);
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let src: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let mut out1 = vec![F16::ZERO; 1000];
        let mut out2 = vec![F16::ZERO; 1000];
        downscale_f32_chunked(&src, &mut out1, 1).unwrap();
        downscale_f32_chunked(&src, &mut out2, 333).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let src = vec![F16::ZERO; 3];
        let mut dst = vec![0.0f32; 4];
        assert!(matches!(
            upscale_f16_chunked(&src, &mut dst, 2),
            Err(TensorError::LengthMismatch { src: 3, dst: 4 })
        ));
        let mut short = vec![F16::ZERO; 2];
        assert!(downscale_f32_chunked(&[1.0; 3], &mut short, 1).is_err());
    }

    #[test]
    fn bf16_paths() {
        let src = vec![1.0f32, -2.0, 0.5];
        let mut b = vec![Bf16::ZERO; 3];
        downscale_bf16(&src, &mut b).unwrap();
        let mut back = vec![0.0f32; 3];
        upscale_bf16(&b, &mut back).unwrap();
        assert_eq!(src, back);
        assert!(downscale_bf16(&src, &mut [Bf16::ZERO; 2]).is_err());
        assert!(upscale_bf16(&b, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn accumulate_adds() {
        let mut dst = vec![1.0f32, 2.0, 3.0];
        accumulate(&mut dst, &[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(dst, vec![1.5, 2.5, 3.5]);
        assert!(accumulate(&mut dst, &[1.0]).is_err());
    }
}
