//! Software IEEE 754 binary16 ("half precision").
//!
//! The paper's mixed-precision pipeline stores model parameters and
//! gradients in FP16 on the GPU and FP32 optimizer state on the host, and
//! its gradient-path optimization (Figure 6, Table 1) hinges on *where* the
//! FP16↔FP32 conversion runs. This module provides a bit-exact software
//! half-float so the reproduction exercises real precision effects without
//! FP16 hardware.
//!
//! Conversion uses round-to-nearest-even, matching CUDA's
//! `__float2half_rn`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An IEEE 754 binary16 value stored as raw bits.
///
/// # Examples
///
/// ```
/// use dos_tensor::F16;
/// let h = F16::from_f32(1.0);
/// assert_eq!(h.to_bits(), 0x3C00);
/// assert_eq!(h.to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2⁻¹⁴.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2⁻²⁴.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);

    /// Constructs from raw bits.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bits.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// Values above `F16::MAX` overflow to infinity; values below the
    /// subnormal range underflow to (signed) zero. NaN payloads are
    /// preserved where possible and always stay NaN.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp32 = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp32 == 0xFF {
            // Infinity or NaN.
            if man == 0 {
                return F16(sign | 0x7C00);
            }
            let payload = ((man >> 13) as u16) & 0x03FF;
            // Keep NaN a NaN even if the payload's top bits were truncated.
            return F16(sign | 0x7C00 | 0x0200 | payload.max(1));
        }

        let exp = exp32 - 127 + 15;
        if exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if exp <= 0 {
            // Subnormal half (or zero).
            if exp < -10 {
                return F16(sign);
            }
            let full_man = man | 0x0080_0000; // restore implicit bit
            let shift = (14 - exp) as u32;
            let half_man = (full_man >> shift) as u16;
            let rem = full_man & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut h = half_man;
            if rem > halfway || (rem == halfway && (h & 1) == 1) {
                h += 1; // may carry into the exponent: that is correct
            }
            return F16(sign | h);
        }

        // Normal half.
        let mut h = ((exp as u16) << 10) | ((man >> 13) as u16);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
            h = h.wrapping_add(1); // carry into exponent rounds up to infinity
        }
        F16(sign | h)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let man = (self.0 & 0x03FF) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, _) => {
                // Subnormal: value = man * 2^-24, exact in f32.
                let v = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
                return if sign != 0 { -v } else { v };
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, _) => sign | 0x7F80_0000 | (man << 13) | 0x0040_0000,
            _ => sign | ((exp + 112) << 23) | (man << 13),
        };
        f32::from_bits(bits)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether the value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether the value is finite (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 5.960_464_5e-8);
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(1e-9).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-9).to_bits(), 0x8000);
        // 65520 rounds up to infinity (midpoint between 65504 and out of range).
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        // Just below the midpoint stays finite.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn infinity_round_trips() {
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_finite());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // RNE keeps the even mantissa (1.0).
        let halfway_down = 1.0 + f32::from_bits(0x3A00_0000); // 1 + 2^-11
        assert_eq!(F16::from_f32(halfway_down).to_bits(), 0x3C00);
        // The next representable tie rounds up to even.
        let next = F16::from_bits(0x3C01).to_f32(); // 1 + 2^-10
        let halfway_up = next + f32::from_bits(0x3A00_0000);
        assert_eq!(F16::from_f32(halfway_up).to_bits(), 0x3C02);
    }

    #[test]
    fn subnormal_rounding() {
        // Half of the smallest subnormal rounds to zero (ties-to-even).
        let tiny = F16::MIN_SUBNORMAL.to_f32();
        assert_eq!(F16::from_f32(tiny / 2.0).to_bits(), 0x0000);
        // 0.75x of the smallest subnormal rounds up to it.
        assert_eq!(F16::from_f32(tiny * 0.75), F16::MIN_SUBNORMAL);
    }

    /// Every one of the 65 536 bit patterns must survive an exact
    /// f16 → f32 → f16 round trip (f32 is a superset of f16).
    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed round trip");
            }
        }
    }

    /// RNE means the conversion picks a nearest representable: the error is
    /// bounded by half a ULP of the result.
    #[test]
    fn conversion_is_nearest() {
        let cases = [
            0.1f32, 0.2, 0.3, 1.1, std::f32::consts::PI, 2.72, 1000.5, 0.000123, 42.42, 65503.0,
        ];
        for &x in &cases {
            let h = F16::from_f32(x).to_f32();
            // Neighbours of the chosen value.
            let bits = F16::from_f32(x).to_bits();
            let down = F16::from_bits(bits.wrapping_sub(1)).to_f32();
            let up = F16::from_bits(bits.wrapping_add(1)).to_f32();
            assert!(
                (x - h).abs() <= (x - down).abs() && (x - h).abs() <= (x - up).abs(),
                "{x} -> {h} is not nearest (neighbours {down}, {up})"
            );
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.5);
        assert!(a < b);
        assert!(b > a);
    }
}
