//! Software bfloat16.
//!
//! BF16 shares FP32's exponent range with an 8-bit mantissa; real-world LLM
//! pre-training (BLOOM, GPT-NeoX) uses it interchangeably with FP16 (§2,
//! "Mixed Precision Training"). Conversion is a round-to-nearest-even
//! truncation of the upper 16 bits of the FP32 representation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bfloat16 value stored as raw bits.
///
/// # Examples
///
/// ```
/// use dos_tensor::Bf16;
/// let b = Bf16::from_f32(1.0);
/// assert_eq!(b.to_bits(), 0x3F80);
/// assert_eq!(b.to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);

    /// Constructs from raw bits.
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns the raw bits.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet the NaN, preserve sign and (truncated) payload.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let lower = bits & 0xFFFF;
        let mut upper = (bits >> 16) as u16;
        if lower > 0x8000 || (lower == 0x8000 && (upper & 1) == 1) {
            upper = upper.wrapping_add(1);
        }
        Bf16(upper)
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Whether the value is finite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }
}

impl From<Bf16> for f32 {
    fn from(b: Bf16) -> f32 {
        b.to_f32()
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(Bf16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f32(-2.0).to_bits(), 0xC000);
        // BF16 keeps FP32's range: 1e38 is finite.
        assert!(Bf16::from_f32(1e38).is_finite());
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
    }

    #[test]
    fn nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::NAN.to_f32().is_nan());
    }

    #[test]
    fn exhaustive_round_trip() {
        for bits in 0..=u16::MAX {
            let b = Bf16::from_bits(bits);
            let back = Bf16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed round trip");
            }
        }
    }

    #[test]
    fn rne_tie_behaviour() {
        // 1.0 has bits 0x3F80_0000. A tie at lower=0x8000 with even upper
        // stays; with odd upper rounds up.
        let even_tie = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(even_tie).to_bits(), 0x3F80);
        let odd_tie = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(odd_tie).to_bits(), 0x3F82);
        let above_tie = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above_tie).to_bits(), 0x3F81);
    }

    #[test]
    fn precision_is_coarser_than_f16_in_unit_range() {
        // BF16 has 8 mantissa bits vs FP16's 11 near 1.0.
        let x = 1.0 + 1.0 / 512.0;
        assert_eq!(Bf16::from_f32(x).to_f32(), 1.0); // below bf16 ULP
        assert!(crate::F16::from_f32(x).to_f32() > 1.0); // above f16 ULP
    }
}
