//! Element types for tensors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The element type of a [`Tensor`](crate::Tensor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float — optimizer master weights, momentum, variance.
    F32,
    /// 16-bit IEEE half — GPU-resident model parameters and gradients.
    F16,
    /// bfloat16 — alternative low-precision format with FP32 range.
    BF16,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
        }
    }

    /// Whether this is a 16-bit ("low precision") type.
    pub const fn is_half(self) -> bool {
        matches!(self, DType::F16 | DType::BF16)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "fp32",
            DType::F16 => "fp16",
            DType::BF16 => "bf16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
    }

    #[test]
    fn half_classification() {
        assert!(!DType::F32.is_half());
        assert!(DType::F16.is_half());
        assert!(DType::BF16.is_half());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "fp32");
        assert_eq!(DType::F16.to_string(), "fp16");
        assert_eq!(DType::BF16.to_string(), "bf16");
    }
}
