//! Dense row-major tensors with mixed-precision storage.
//!
//! A [`Tensor`] owns its elements in one of three storage precisions
//! ([`DType`]). Casting between precisions goes through the bit-exact
//! software converters in [`crate::f16`]/[`crate::bf16`], so precision loss
//! in the reproduction matches real mixed-precision training.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bf16::Bf16;
use crate::dtype::DType;
use crate::error::TensorError;
use crate::f16::F16;

/// Backing storage for a tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Storage {
    F32(Vec<f32>),
    F16(Vec<F16>),
    BF16(Vec<Bf16>),
}

impl Storage {
    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::F16(v) => v.len(),
            Storage::BF16(v) => v.len(),
        }
    }

    fn get(&self, i: usize) -> f32 {
        match self {
            Storage::F32(v) => v[i],
            Storage::F16(v) => v[i].to_f32(),
            Storage::BF16(v) => v[i].to_f32(),
        }
    }

    fn set(&mut self, i: usize, x: f32) {
        match self {
            Storage::F32(v) => v[i] = x,
            Storage::F16(v) => v[i] = F16::from_f32(x),
            Storage::BF16(v) => v[i] = Bf16::from_f32(x),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::F16(_) => DType::F16,
            Storage::BF16(_) => DType::BF16,
        }
    }
}

/// A dense, row-major, owned tensor.
///
/// # Examples
///
/// ```
/// use dos_tensor::{Tensor, DType};
/// let t = Tensor::zeros(&[2, 3], DType::F32);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.size_bytes(), 24);
/// let h = t.to_dtype(DType::F16);
/// assert_eq!(h.size_bytes(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    storage: Storage,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: &[usize], dtype: DType) -> Tensor {
        let n: usize = shape.iter().product();
        let storage = match dtype {
            DType::F32 => Storage::F32(vec![0.0; n]),
            DType::F16 => Storage::F16(vec![F16::ZERO; n]),
            DType::BF16 => Storage::BF16(vec![Bf16::ZERO; n]),
        };
        Tensor { shape: shape.to_vec(), storage }
    }

    /// A tensor filled with `value` (rounded to `dtype`).
    pub fn full(shape: &[usize], dtype: DType, value: f32) -> Tensor {
        let mut t = Tensor::zeros(shape, dtype);
        for i in 0..t.numel() {
            t.storage.set(i, value);
        }
        t
    }

    /// Builds an FP32 tensor from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if data.len() != n {
            return Err(TensorError::ShapeMismatch {
                expected: n,
                actual: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor { shape: shape.to_vec(), storage: Storage::F32(data) })
    }

    /// A tensor of i.i.d. normal samples with the given standard deviation,
    /// stored in FP32 (Box–Muller over the supplied RNG; deterministic for a
    /// seeded RNG).
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape: shape.to_vec(), storage: Storage::F32(data) }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.storage.len()
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// Bytes occupied by the elements.
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// Reads element `i` (flat index) as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f32 {
        self.storage.get(i)
    }

    /// Writes element `i` (flat index), rounding to the storage precision.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, x: f32) {
        self.storage.set(i, x);
    }

    /// Borrows the underlying FP32 data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the tensor is not FP32.
    pub fn as_f32(&self) -> Result<&[f32], TensorError> {
        match &self.storage {
            Storage::F32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch { expected: DType::F32, actual: self.dtype() }),
        }
    }

    /// Mutably borrows the underlying FP32 data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the tensor is not FP32.
    pub fn as_f32_mut(&mut self) -> Result<&mut [f32], TensorError> {
        let dtype = self.dtype();
        match &mut self.storage {
            Storage::F32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch { expected: DType::F32, actual: dtype }),
        }
    }

    /// Copies the elements out as an FP32 vector (upcasting if needed).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        (0..self.numel()).map(|i| self.storage.get(i)).collect()
    }

    /// Casts to another precision, rounding with round-to-nearest-even.
    /// Casting to the same dtype clones.
    pub fn to_dtype(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype() {
            return self.clone();
        }
        let n = self.numel();
        let storage = match dtype {
            DType::F32 => Storage::F32((0..n).map(|i| self.storage.get(i)).collect()),
            DType::F16 => {
                Storage::F16((0..n).map(|i| F16::from_f32(self.storage.get(i))).collect())
            }
            DType::BF16 => {
                Storage::BF16((0..n).map(|i| Bf16::from_f32(self.storage.get(i))).collect())
            }
        };
        Tensor { shape: self.shape.clone(), storage }
    }

    /// Reshapes in place without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the new shape's element
    /// count differs.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<(), TensorError> {
        let n: usize = shape.iter().product();
        if n != self.numel() {
            return Err(TensorError::ShapeMismatch {
                expected: self.numel(),
                actual: n,
                shape: shape.to_vec(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Element-wise in-place addition: `self += other`.
    ///
    /// Mirrors the gradient-accumulation kernel
    /// (`old_grad.add_(new_grad)`) the paper moves to the GPU (§3).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.numel(),
                actual: other.numel(),
                shape: other.shape.clone(),
            });
        }
        for i in 0..self.numel() {
            let v = self.storage.get(i) + other.storage.get(i);
            self.storage.set(i, v);
        }
        Ok(())
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for i in 0..self.numel() {
            let v = self.storage.get(i) * s;
            self.storage.set(i, v);
        }
    }

    /// The L2 norm of the elements (computed in f64 for stability).
    pub fn l2_norm(&self) -> f64 {
        (0..self.numel()).map(|i| (self.storage.get(i) as f64).powi(2)).sum::<f64>().sqrt()
    }

    /// Iterates over elements as `f32`.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        (0..self.numel()).map(move |i| self.storage.get(i))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{:?}", self.dtype(), self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_full_and_accessors() {
        let t = Tensor::zeros(&[2, 3], DType::F32);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.get(0), 0.0);
        let u = Tensor::full(&[4], DType::F16, 1.5);
        assert_eq!(u.get(3), 1.5);
        assert_eq!(u.size_bytes(), 8);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(&[2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { expected: 4, actual: 3, .. }));
    }

    #[test]
    fn f16_storage_rounds() {
        let mut t = Tensor::zeros(&[1], DType::F16);
        t.set(0, 1.0 + 1.0 / 4096.0); // below f16 ULP at 1.0
        assert_eq!(t.get(0), 1.0);
    }

    #[test]
    fn dtype_casting_round_trip() {
        let t = Tensor::from_vec(&[3], vec![0.1, -2.5, 100.0]).unwrap();
        let h = t.to_dtype(DType::F16);
        assert_eq!(h.dtype(), DType::F16);
        let back = h.to_dtype(DType::F32);
        // 0.1 is not representable; error bounded by f16 precision.
        assert!((back.get(0) - 0.1).abs() < 1e-4);
        assert_eq!(back.get(1), -2.5);
        assert_eq!(back.get(2), 100.0);
    }

    #[test]
    fn as_f32_enforces_dtype() {
        let t = Tensor::zeros(&[2], DType::F16);
        assert!(matches!(t.as_f32(), Err(TensorError::DTypeMismatch { .. })));
        let u = Tensor::zeros(&[2], DType::F32);
        assert_eq!(u.as_f32().unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        t.reshape(&[3, 2]).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(5), 5.0);
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.to_f32_vec(), vec![1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.to_f32_vec(), vec![3.0, 5.0, 7.0]);
        let c = Tensor::zeros(&[4], DType::F32);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn randn_is_deterministic_and_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[1000], 0.02, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = Tensor::randn(&[1000], 0.02, &mut rng2);
        assert_eq!(a, b);
        let mean: f32 = a.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.005, "mean {mean} too far from 0");
        let var: f32 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 1000.0;
        assert!((var.sqrt() - 0.02).abs() < 0.005, "std {} off", var.sqrt());
    }

    #[test]
    fn l2_norm() {
        let t = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        assert!((t.l2_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_dtype_and_shape() {
        let t = Tensor::zeros(&[2, 2], DType::BF16);
        assert_eq!(t.to_string(), "Tensor<bf16>[2, 2]");
    }
}
