//! Property-based tests for dos-tensor invariants.

use dos_tensor::convert::{accumulate, downscale_f32_chunked, upscale_f16_chunked};
use dos_tensor::{Bf16, DType, F16, Tensor};
use proptest::prelude::*;

proptest! {
    /// f16 -> f32 -> f16 is the identity for every non-NaN value.
    #[test]
    fn f16_f32_round_trip(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// bf16 -> f32 -> bf16 is the identity for every non-NaN value.
    #[test]
    fn bf16_f32_round_trip(bits in any::<u16>()) {
        let b = Bf16::from_bits(bits);
        prop_assume!(!b.is_nan());
        prop_assert_eq!(Bf16::from_f32(b.to_f32()).to_bits(), bits);
    }

    /// The f32 -> f16 conversion picks a *nearest* representable value: no
    /// neighbouring f16 is strictly closer.
    #[test]
    fn f16_conversion_is_nearest(x in -70000.0f32..70000.0) {
        let h = F16::from_f32(x);
        prop_assume!(h.is_finite());
        let v = h.to_f32();
        let bits = h.to_bits();
        // Walk to numeric neighbours (bit-adjacent within the same sign, or
        // across the zero boundary).
        let neighbours = [bits.wrapping_add(1), bits.wrapping_sub(1), bits ^ 0x8000];
        for nb in neighbours {
            let n = F16::from_bits(nb);
            if n.is_finite() {
                prop_assert!(
                    (x - v).abs() <= (x - n.to_f32()).abs() + f32::EPSILON,
                    "{} -> {} but neighbour {} is closer", x, v, n.to_f32()
                );
            }
        }
    }

    /// Conversion is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn f16_conversion_is_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Relative error of f16 rounding is bounded by 2^-11 for normal values.
    #[test]
    fn f16_relative_error_bound(x in 1e-3f32..60000.0) {
        let v = F16::from_f32(x).to_f32();
        let rel = ((x - v) / x).abs();
        prop_assert!(rel <= 1.0 / 2048.0, "relative error {} too large for {}", rel, x);
    }

    /// Chunked downscale/upscale is independent of the chunk size.
    #[test]
    fn chunking_is_transparent(
        data in proptest::collection::vec(-1000.0f32..1000.0, 1..300),
        chunk in 1usize..64,
    ) {
        let n = data.len();
        let mut whole = vec![F16::ZERO; n];
        let mut chunked = vec![F16::ZERO; n];
        downscale_f32_chunked(&data, &mut whole, 0).unwrap();
        downscale_f32_chunked(&data, &mut chunked, chunk).unwrap();
        prop_assert_eq!(&whole, &chunked);

        let mut up_whole = vec![0.0f32; n];
        let mut up_chunked = vec![0.0f32; n];
        upscale_f16_chunked(&whole, &mut up_whole, 0).unwrap();
        upscale_f16_chunked(&chunked, &mut up_chunked, chunk).unwrap();
        prop_assert_eq!(up_whole, up_chunked);
    }

    /// Casting a tensor to f16 and back never increases the element count,
    /// shape, or (beyond rounding) the values.
    #[test]
    fn tensor_cast_preserves_shape(
        data in proptest::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let n = data.len();
        let t = Tensor::from_vec(&[n], data.clone()).unwrap();
        let h = t.to_dtype(DType::F16).to_dtype(DType::F32);
        prop_assert_eq!(h.shape(), t.shape());
        for (i, x) in data.iter().enumerate() {
            prop_assert!((h.get(i) - x).abs() <= x.abs() / 1024.0 + 1e-4);
        }
    }

    /// Accumulation is element-wise addition.
    #[test]
    fn accumulate_is_addition(
        a in proptest::collection::vec(-1e6f32..1e6, 1..64),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5).collect();
        let mut dst = a.clone();
        accumulate(&mut dst, &b).unwrap();
        for i in 0..a.len() {
            prop_assert_eq!(dst[i], a[i] + b[i]);
        }
    }
}
