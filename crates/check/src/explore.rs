//! Schedule exploration: bounded DFS with sleep-set partial-order pruning
//! plus seeded random-walk sampling.
//!
//! Every run executes the body under [`run_with_scheduler`], recording the
//! chosen tid at each decision point. The DFS maintains, per branch, the
//! forced decision prefix and the *sleep sets* injected along it: when the
//! explorer has fully explored choosing `a` at a decision point, `a` is
//! put to sleep for the sibling branches and stays asleep until some
//! executed operation is *dependent* with `a`'s pending operation
//! (conservatively: both touch the same channel — send/send pairs
//! excepted, see [`dependent`] — or either is a thread-lifecycle
//! operation). Branches whose entire enabled set is
//! asleep are abandoned — their terminal states are reachable through an
//! already-explored commutation.
//!
//! Random walks sample the same space uniformly at random (seeded) and
//! catch schedules a truncated DFS frontier would miss.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use dos_core::sync::sched::{run_with_scheduler, PendingOp, Pick, RunError, Tid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget and seeding for one exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum DFS runs (completed or pruned) before the frontier is
    /// abandoned.
    pub dfs_budget: usize,
    /// Number of seeded random-walk runs after the DFS.
    pub random_walks: usize,
    /// Seed for the random walks.
    pub seed: u64,
    /// Per-run decision budget (runaway guard).
    pub max_steps: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { dfs_budget: 256, random_walks: 64, seed: 0, max_steps: 20_000 }
    }
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Runs that reached a terminal state and were verified.
    pub completed: usize,
    /// Distinct complete schedules (by decision sequence).
    pub distinct: usize,
    /// Branches abandoned because their whole enabled set was asleep.
    pub sleep_pruned: usize,
    /// Longest decision sequence observed.
    pub max_depth: usize,
    /// Whether the DFS frontier was fully drained within budget.
    pub exhausted: bool,
}

/// Why a schedule failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// The terminal state differed from the sequential oracle.
    Divergence(String),
    /// All live threads parked, none enabled.
    Deadlock(String),
    /// The root body panicked (outside controller-initiated teardown).
    BodyPanic(String),
    /// The per-run decision budget was exceeded.
    StepLimit(usize),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Divergence(d) => write!(f, "divergence: {d}"),
            FailureKind::Deadlock(d) => write!(f, "deadlock: {d}"),
            FailureKind::BodyPanic(d) => write!(f, "body panic: {d}"),
            FailureKind::StepLimit(n) => write!(f, "step limit {n} exceeded"),
        }
    }
}

/// A failing schedule: the decision sequence that reproduces it, plus why.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Chosen tids, one per decision point.
    pub schedule: Vec<Tid>,
    /// What went wrong at (or on the way to) the terminal state.
    pub kind: FailureKind,
}

/// Result of exploring one body.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Exploration counters.
    pub stats: ExploreStats,
    /// First failure found, if any (exploration stops on it).
    pub failure: Option<Failure>,
}

/// Conservative dependence relation for sleep-set pruning.
///
/// Two pending operations commute when they are channel operations on
/// *different* channels, or when both are *sends* — even on the same
/// channel. Sends never block (channels are unbounded) and cannot fail
/// each other (send errors depend only on receiver liveness), so swapping
/// two sends permutes nothing but queue order. Queue order is
/// unobservable to the bodies under check: per-peer mesh links are
/// single-producer, and every multi-producer channel aggregates its
/// messages commutatively (reductions fold in rank order, retries by
/// subgroup id — never by arrival order), which the bitwise
/// terminal-state oracle enforces on every schedule that *is* explored.
/// Everything else (thread lifecycle, mixed ops on one channel) is
/// treated as dependent.
fn dependent(a: &PendingOp, b: &PendingOp) -> bool {
    if matches!((a, b), (PendingOp::Send(_), PendingOp::Send(_))) {
        return false;
    }
    match (a.channel(), b.channel()) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// One recorded decision of a guided run.
#[derive(Debug, Clone)]
struct DecisionRecord {
    enabled: Vec<(Tid, PendingOp)>,
    sleep: Vec<(Tid, PendingOp)>,
    chosen: Tid,
}

/// Decision policy for one run: replay a forced prefix, then extend with
/// the lowest enabled tid not asleep, maintaining the sleep set.
struct Guided<'a> {
    forced: &'a [Tid],
    injections: &'a [(usize, Vec<(Tid, PendingOp)>)],
    sleep: Vec<(Tid, PendingOp)>,
    records: Vec<DecisionRecord>,
    sleep_stopped: bool,
    replay_diverged: bool,
}

impl<'a> Guided<'a> {
    fn new(forced: &'a [Tid], injections: &'a [(usize, Vec<(Tid, PendingOp)>)]) -> Guided<'a> {
        Guided {
            forced,
            injections,
            sleep: Vec::new(),
            records: Vec::new(),
            sleep_stopped: false,
            replay_diverged: false,
        }
    }

    fn pick(&mut self, step: usize, enabled: &[(Tid, PendingOp)]) -> Pick {
        for (pos, adds) in self.injections {
            if *pos == step {
                for a in adds {
                    if !self.sleep.iter().any(|(t, _)| t == &a.0) {
                        self.sleep.push(*a);
                    }
                }
            }
        }
        let choice = if step < self.forced.len() {
            let want = self.forced[step];
            match enabled.iter().find(|(t, _)| *t == want) {
                Some(&(t, op)) => Some((t, op)),
                None => {
                    self.replay_diverged = true;
                    return Pick::Stop;
                }
            }
        } else {
            enabled.iter().find(|(t, _)| !self.sleep.iter().any(|(s, _)| s == t)).copied()
        };
        let Some((tid, op)) = choice else {
            self.sleep_stopped = true;
            return Pick::Stop;
        };
        self.records.push(DecisionRecord {
            enabled: enabled.to_vec(),
            sleep: self.sleep.clone(),
            chosen: tid,
        });
        // Waking rule: an executed op wakes every sleeper dependent on it.
        self.sleep.retain(|(st, sop)| *st != tid && !dependent(sop, &op));
        Pick::Run(tid)
    }
}

fn panic_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn schedule_hash(salt: u64, schedule: &[Tid]) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    schedule.hash(&mut h);
    h.finish()
}

/// One DFS work item: a decision prefix plus the sleep sets to inject
/// while replaying it.
struct Branch {
    forced: Vec<Tid>,
    injections: Vec<(usize, Vec<(Tid, PendingOp)>)>,
}

enum RunResult {
    /// Terminal state reached; verification outcome attached.
    Complete { divergence: Option<String> },
    /// Pruned: the whole enabled set was asleep.
    SleepStopped,
    /// The forced prefix stopped matching the enabled sets (only possible
    /// when replaying a schedule against a different or nondeterministic
    /// body).
    ReplayDiverged,
    /// Hard failure independent of verification.
    Failed(FailureKind),
}

/// Runs `body` once under the guided policy. Returns the run's
/// classification, its decision records, and the executed schedule.
fn run_guided<R, B, V>(
    body: &B,
    verify: &V,
    forced: &[Tid],
    injections: &[(usize, Vec<(Tid, PendingOp)>)],
    max_steps: usize,
) -> (RunResult, Vec<DecisionRecord>, Vec<Tid>)
where
    B: Fn() -> R + Send + Sync,
    R: Send,
    V: Fn(&R) -> Option<String>,
{
    let mut guided = Guided::new(forced, injections);
    let outcome = run_with_scheduler(body, |step, enabled| guided.pick(step, enabled), max_steps);
    let schedule: Vec<Tid> = outcome.trace.iter().map(|r| r.chosen).collect();
    let records = std::mem::take(&mut guided.records);
    let result = match &outcome.error {
        Some(RunError::Deadlock { parked, step }) => RunResult::Failed(FailureKind::Deadlock(
            format!("at decision {step}: parked = {parked:?}"),
        )),
        Some(RunError::StepLimit { limit }) => RunResult::Failed(FailureKind::StepLimit(*limit)),
        Some(RunError::Stopped { .. }) => {
            if guided.replay_diverged {
                RunResult::ReplayDiverged
            } else {
                RunResult::SleepStopped
            }
        }
        None => match &outcome.result {
            Ok(r) => RunResult::Complete { divergence: verify(r) },
            Err(p) => RunResult::Failed(FailureKind::BodyPanic(panic_to_string(p.as_ref()))),
        },
    };
    (result, records, schedule)
}

/// Explores `body`'s schedule space: DFS with sleep sets, then random
/// walks. `verify` inspects each terminal state and returns a divergence
/// description if it is wrong; exploration stops at the first failure.
///
/// `salt` decorrelates distinct-schedule hashing across scenarios sharing
/// one global counter; `distinct_seen` accumulates across calls.
pub fn explore<R, B, V>(
    cfg: &ExploreConfig,
    salt: u64,
    body: B,
    verify: V,
    distinct_seen: &mut HashSet<u64>,
) -> Exploration
where
    B: Fn() -> R + Send + Sync,
    R: Send,
    V: Fn(&R) -> Option<String>,
{
    let mut stats = ExploreStats::default();
    let mut runs = 0usize;

    // --- Bounded DFS with sleep sets -----------------------------------
    let mut stack: Vec<Branch> = vec![Branch { forced: Vec::new(), injections: Vec::new() }];
    let mut budget_hit = false;
    while let Some(branch) = stack.pop() {
        if runs >= cfg.dfs_budget {
            budget_hit = true;
            stack.clear();
            break;
        }
        runs += 1;
        let (result, records, schedule) =
            run_guided(&body, &verify, &branch.forced, &branch.injections, cfg.max_steps);
        stats.max_depth = stats.max_depth.max(schedule.len());
        match result {
            RunResult::Complete { divergence } => {
                stats.completed += 1;
                if distinct_seen.insert(schedule_hash(salt, &schedule)) {
                    stats.distinct += 1;
                }
                if let Some(d) = divergence {
                    return Exploration {
                        stats,
                        failure: Some(Failure { schedule, kind: FailureKind::Divergence(d) }),
                    };
                }
            }
            RunResult::SleepStopped => stats.sleep_pruned += 1,
            RunResult::ReplayDiverged => {
                // The body is expected to be schedule-deterministic; a
                // replay divergence during DFS is itself a finding.
                return Exploration {
                    stats,
                    failure: Some(Failure {
                        schedule,
                        kind: FailureKind::Divergence(
                            "body is not schedule-deterministic: forced replay diverged"
                                .to_string(),
                        ),
                    }),
                };
            }
            RunResult::Failed(kind) => {
                return Exploration { stats, failure: Some(Failure { schedule, kind }) }
            }
        }

        // Children: alternatives at every free decision of this run.
        // Pushed in reverse so the stack pops them left-to-right, keeping
        // the sleep-set accumulation order consistent with recursive DFS.
        let mut children: Vec<Branch> = Vec::new();
        for (i, rec) in records.iter().enumerate().skip(branch.forced.len()) {
            let chosen_op = rec
                .enabled
                .iter()
                .find(|(t, _)| *t == rec.chosen)
                .map(|(_, op)| *op)
                .unwrap_or(PendingOp::Start);
            let mut slept: Vec<(Tid, PendingOp)> = vec![(rec.chosen, chosen_op)];
            for &(alt, alt_op) in rec.enabled.iter() {
                if alt == rec.chosen || rec.sleep.iter().any(|(t, _)| *t == alt) {
                    continue;
                }
                let mut forced = schedule[..i].to_vec();
                forced.push(alt);
                let mut injections = branch.injections.clone();
                injections.push((i, slept.clone()));
                children.push(Branch { forced, injections });
                slept.push((alt, alt_op));
            }
        }
        children.reverse();
        stack.extend(children);
    }
    stats.exhausted = !budget_hit;

    // --- Seeded random walks -------------------------------------------
    for walk in 0..cfg.random_walks {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed.wrapping_add(walk as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let outcome = run_with_scheduler(
            &body,
            |_, enabled| {
                let idx = rng.gen_range(0..enabled.len());
                Pick::Run(enabled[idx].0)
            },
            cfg.max_steps,
        );
        let schedule: Vec<Tid> = outcome.trace.iter().map(|r| r.chosen).collect();
        stats.max_depth = stats.max_depth.max(schedule.len());
        let failure = match &outcome.error {
            Some(RunError::Deadlock { parked, step }) => Some(FailureKind::Deadlock(format!(
                "at decision {step}: parked = {parked:?}"
            ))),
            Some(RunError::StepLimit { limit }) => Some(FailureKind::StepLimit(*limit)),
            Some(RunError::Stopped { .. }) => None,
            None => match &outcome.result {
                Ok(r) => {
                    stats.completed += 1;
                    if distinct_seen.insert(schedule_hash(salt, &schedule)) {
                        stats.distinct += 1;
                    }
                    verify(r).map(FailureKind::Divergence)
                }
                Err(p) => Some(FailureKind::BodyPanic(panic_to_string(p.as_ref()))),
            },
        };
        if let Some(kind) = failure {
            return Exploration { stats, failure: Some(Failure { schedule, kind }) };
        }
    }

    Exploration { stats, failure: None }
}

/// Replays `schedule` exactly (then extends with the default policy) and
/// reports whether the failure reproduces. Used by `--replay` and the
/// shrinker.
pub fn replay<R, B, V>(
    schedule: &[Tid],
    body: &B,
    verify: &V,
    max_steps: usize,
) -> Option<FailureKind>
where
    B: Fn() -> R + Send + Sync,
    R: Send,
    V: Fn(&R) -> Option<String>,
{
    let (result, _, _) = run_guided(body, verify, schedule, &[], max_steps);
    match result {
        RunResult::Complete { divergence } => divergence.map(FailureKind::Divergence),
        RunResult::SleepStopped | RunResult::ReplayDiverged => None,
        RunResult::Failed(kind) => Some(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_core::sync;

    /// Two producers race onto one channel; the consumer folds
    /// commutatively, so the terminal state is insensitive to producer
    /// interleaving — exactly the shape send/send commutativity prunes.
    fn fan_in_sum() -> i64 {
        let (tx, rx) = sync::unbounded::<i64>();
        sync::scope(|scope| {
            for k in 0..2u32 {
                let tx = tx.clone();
                scope.spawn(move || {
                    tx.send(1i64 << (8 * k)).expect("receiver alive");
                });
            }
            drop(tx);
            let mut sum = 0i64;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
    }

    fn verify_sum(sum: &i64) -> Option<String> {
        (*sum != 0x0101).then(|| format!("bad sum {sum:#x}"))
    }

    #[test]
    fn send_send_commutativity_prunes_fan_in_schedules() {
        let cfg =
            ExploreConfig { dfs_budget: 100_000, random_walks: 0, seed: 0, max_steps: 20_000 };
        let mut seen = HashSet::new();
        let ex = explore(&cfg, 0, fan_in_sum, verify_sum, &mut seen);
        assert!(ex.failure.is_none(), "unexpected failure: {:?}", ex.failure);
        assert!(ex.stats.exhausted, "DFS did not drain within budget");
        // Pinned reduction: with the pre-commutativity relation (any two
        // ops on one channel dependent, including send/send) this exact
        // DFS completes 908 runs before exhausting; treating send/send
        // pairs as independent prunes the redundant producer orderings
        // down to 796. A regression that re-couples sends re-inflates
        // this count.
        assert_eq!(ex.stats.completed, 796, "schedule count shifted");
        assert_eq!(ex.stats.distinct, ex.stats.completed, "DFS revisited a schedule");
    }
}
