//! Check scenarios: concrete, deterministic pipeline instances whose
//! every terminal schedule must match the sequential oracle bitwise.
//!
//! A scenario fixes the body completely — parameter count, subgroup size,
//! stride, residents, fault plan, and the deterministic init/gradient
//! formulas — so a schedule token (`scenario` + decision sequence) is a
//! full reproduction recipe. Three scenario kinds exist:
//!
//! * [`ScenarioKind::Pipeline`] — the real [`dos_core::hybrid_update`].
//!   Expected to pass under *every* schedule; any divergence, deadlock, or
//!   panic is a pipeline bug.
//! * [`ScenarioKind::Rendezvous`] — the real
//!   [`dos_collectives::Communicator`] in blocking mode over
//!   [`dos_collectives::InProcTransport`], one virtual thread per rank:
//!   barrier, then rounds of all-reduce with per-rank perturbation, then
//!   an all-gather. The disconnect variant has one rank drop its
//!   transport before the final round — survivors must observe a typed
//!   rank failure (poison propagation), never a deadlock. Expected to
//!   pass under every schedule; any divergence or deadlock is a
//!   collective-layer bug.
//! * [`ScenarioKind::BuggyLostSend`] — a deliberately seeded ordering bug
//!   (see [`buggy_lost_send_update`]): when an H2D send fails because the
//!   worker already disconnected, the job is dropped instead of re-run on
//!   the CPU. The OS-default-like schedule (main thread runs until it
//!   blocks) never fails a send — all sends complete before the worker
//!   first runs — so only genuine schedule exploration exposes it. Used
//!   by tests and `--replay` demos to prove the checker catches, shrinks,
//!   and replays real ordering bugs; never part of the default suite.

use dos_collectives::{CollectiveError, Communicator};
use dos_core::sync;
use dos_hal::HardwareProfile;
use dos_serve::{Coordinator, JobSpec, ServeOptions};
use dos_core::{
    hybrid_update, zenflow_reference, DeviceFault, PipelineConfig, StridePolicy, ZenFlowConfig,
    ZenFlowPipeline,
};
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_tensor::F16;
use dos_zero::{partition_into_subgroups, SubgroupSpec};

/// Which body a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The real hybrid pipeline (must pass under every schedule).
    Pipeline,
    /// Blocking-mode collectives over the in-process mesh transport (must
    /// pass under every schedule). Field reuse: `params` is the per-rank
    /// buffer length, `subgroup` the world size, `stride` the number of
    /// all-reduce rounds, `residents` unused (0); a
    /// [`FaultPlan::Disconnect`] names the rank that drops its transport
    /// before the final round.
    Rendezvous,
    /// The `dos-serve` coordinator on a one-GPU cluster: two tenants
    /// submit one job each from concurrent virtual threads, so admit,
    /// preempt, and complete events interleave freely. Field reuse:
    /// `params`/`subgroup` shape each job's trainer, `stride` is the
    /// iteration count per job, `residents` the lease length in
    /// iterations (1 forces a preemption between every pair of slices).
    /// Must pass under every schedule: no lost jobs, no double-granted
    /// leases, and per-tenant numerics bitwise equal to dedicated runs.
    Coordinator,
    /// The ZenFlow cross-iteration asynchronous update pipeline
    /// ([`dos_core::ZenFlowPipeline`]): hot subgroups update inside the
    /// step, cold subgroups accumulate and flush to detached workers that
    /// race the following steps, with a `poll_pending` harvest between
    /// steps and a final drain barrier. Field reuse: `stride` is the
    /// staleness bound `S`, `residents` the hot subgroup count `r`
    /// (importance ratio `r / n`). Must pass under every schedule: the
    /// drained terminal state is bitwise equal to the sequential
    /// bounded-staleness oracle [`dos_core::zenflow_reference`], and the
    /// observed max staleness never exceeds `S`.
    ZenFlow,
    /// The seeded lost-send bug fixture (fails under some schedules).
    BuggyLostSend,
}

/// A scenario's injected fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Healthy worker.
    None,
    /// Worker panics after fully processing N jobs.
    Panic(usize),
    /// Worker returns silently after fully processing N jobs.
    Disconnect(usize),
}

impl FaultPlan {
    fn to_device_fault(self) -> Option<DeviceFault> {
        match self {
            FaultPlan::None => None,
            FaultPlan::Panic(n) => Some(DeviceFault::PanicAfter(n)),
            FaultPlan::Disconnect(n) => Some(DeviceFault::DisconnectAfter(n)),
        }
    }
}

/// One fully pinned check scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckScenario {
    /// Body selector.
    pub kind: ScenarioKind,
    /// Flat parameter count.
    pub params: usize,
    /// Subgroup size (`partition_into_subgroups(params, subgroup)`).
    pub subgroup: usize,
    /// Update stride k (every k-th dynamic subgroup ships to the device).
    pub stride: usize,
    /// Trailing static device residents.
    pub residents: usize,
    /// Injected worker fault.
    pub fault: FaultPlan,
}

/// Everything a terminal schedule must pin bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// Updated master parameters.
    pub params: Vec<f32>,
    /// First-moment state.
    pub momentum: Vec<f32>,
    /// Second-moment state.
    pub variance: Vec<f32>,
    /// Downscaled FP16 parameters.
    pub fp16: Vec<F16>,
}

fn rendezvous_init(rank: usize, i: usize) -> f32 {
    ((rank * 17 + i * 7 + 3) % 23) as f32 / 23.0
}

fn rendezvous_perturb(rank: usize, round: usize, i: usize) -> f32 {
    ((rank * 11 + round * 5 + i * 3 + 1) % 19) as f32 / 19.0 - 0.5
}

/// One rank of the rendezvous body: barrier, `rounds` all-reduce rounds
/// with a per-rank perturbation after each, then an all-gather. The
/// injected `dead` rank skips the final round and returns — dropping its
/// transport, which is what its peers' collectives must survive with a
/// typed error instead of a hang.
///
/// The status a rank reports deliberately omits the *blamed* rank: once
/// the first survivor errors out, it drops its own links too, so later
/// survivors may attribute the cascade rather than the original failure.
/// Failure-vs-success per rank is schedule-deterministic; attribution is
/// not, and must stay out of the bitwise terminal state.
fn rendezvous_rank(
    rank: usize,
    comm: Communicator,
    elems: usize,
    rounds: usize,
    dead: Option<usize>,
) -> (Vec<f32>, f32, Vec<f32>) {
    fn status_of(e: &CollectiveError) -> f32 {
        if matches!(e, CollectiveError::RankFailed { .. }) {
            1.0
        } else {
            2.0
        }
    }
    let mut buf: Vec<f32> = (0..elems).map(|i| rendezvous_init(rank, i)).collect();
    if let Err(e) = comm.barrier() {
        return (buf, status_of(&e), Vec::new());
    }
    let my_rounds = if dead == Some(rank) { rounds - 1 } else { rounds };
    for round in 0..my_rounds {
        match comm.all_reduce_sum(&mut buf) {
            Ok(()) => {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = *b * 0.5 + rendezvous_perturb(rank, round, i);
                }
            }
            Err(e) => return (buf, status_of(&e), Vec::new()),
        }
    }
    if dead == Some(rank) {
        return (buf, 0.0, Vec::new());
    }
    match comm.all_gather(&buf) {
        Ok(g) => (buf, 0.0, g),
        Err(e) => (buf, status_of(&e), Vec::new()),
    }
}

fn deterministic_init(n: usize) -> (Vec<f32>, Vec<f32>) {
    let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0).collect();
    let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
    (init, grads)
}

/// Per-step gradient stream for the ZenFlow scenario (step 0 coincides
/// with the single-step pipeline formula above). Time-varying so the
/// importance partition actually moves across steps.
fn zenflow_grads(n: usize, step: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 7 + step * 11 + 1) % 29) as f32 / 29.0 - 0.5).collect()
}

/// Steps the ZenFlow scenario drives before draining: enough for cold
/// subgroups to flush mid-run (workers racing later steps) *and* to leave
/// residue for the drain barrier at every suite staleness bound.
const ZENFLOW_STEPS: usize = 3;

fn first_mismatch_f32(name: &str, got: &[f32], want: &[f32]) -> Option<String> {
    if got.len() != want.len() {
        return Some(format!("{name}: length {} != {}", got.len(), want.len()));
    }
    got.iter().zip(want).position(|(a, b)| a.to_bits() != b.to_bits()).map(|i| {
        format!("{name}[{i}]: got {:?} (0x{:08x}), want {:?} (0x{:08x})", got[i], got[i].to_bits(), want[i], want[i].to_bits())
    })
}

impl CheckScenario {
    /// Encodes the scenario as a token coordinate, e.g.
    /// `pl-p48-g8-k2-r0-fn`, `pl-p48-g8-k2-r1-fp1`, `bug-p64-g8-k2-r0-fd1`.
    pub fn encode(&self) -> String {
        let kind = match self.kind {
            ScenarioKind::Pipeline => "pl",
            ScenarioKind::Rendezvous => "rdv",
            ScenarioKind::Coordinator => "co",
            ScenarioKind::ZenFlow => "zf",
            ScenarioKind::BuggyLostSend => "bug",
        };
        let fault = match self.fault {
            FaultPlan::None => "fn".to_string(),
            FaultPlan::Panic(n) => format!("fp{n}"),
            FaultPlan::Disconnect(n) => format!("fd{n}"),
        };
        format!(
            "{kind}-p{}-g{}-k{}-r{}-{fault}",
            self.params, self.subgroup, self.stride, self.residents
        )
    }

    /// Parses a coordinate produced by [`CheckScenario::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn decode(s: &str) -> Result<CheckScenario, String> {
        let fields: Vec<&str> = s.split('-').collect();
        if fields.len() != 6 {
            return Err(format!("scenario {s:?}: want 6 '-'-separated fields, got {}", fields.len()));
        }
        let kind = match fields[0] {
            "pl" => ScenarioKind::Pipeline,
            "rdv" => ScenarioKind::Rendezvous,
            "co" => ScenarioKind::Coordinator,
            "zf" => ScenarioKind::ZenFlow,
            "bug" => ScenarioKind::BuggyLostSend,
            other => return Err(format!("unknown scenario kind {other:?}")),
        };
        let num = |f: &str, tag: &str| -> Result<usize, String> {
            f.strip_prefix(tag)
                .ok_or_else(|| format!("field {f:?}: want prefix {tag:?}"))?
                .parse::<usize>()
                .map_err(|e| format!("field {f:?}: {e}"))
        };
        let fault = match fields[5] {
            "fn" => FaultPlan::None,
            f if f.starts_with("fp") => FaultPlan::Panic(num(f, "fp")?),
            f if f.starts_with("fd") => FaultPlan::Disconnect(num(f, "fd")?),
            other => return Err(format!("unknown fault field {other:?}")),
        };
        Ok(CheckScenario {
            kind,
            params: num(fields[1], "p")?,
            subgroup: num(fields[2], "g")?,
            stride: num(fields[3], "k")?,
            residents: num(fields[4], "r")?,
            fault,
        })
    }

    fn fresh_state(&self) -> (MixedPrecisionState, Vec<f32>, Vec<SubgroupSpec>) {
        let (init, grads) = deterministic_init(self.params);
        let state = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        let sgs = partition_into_subgroups(self.params, self.subgroup);
        (state, grads, sgs)
    }

    /// Rendezvous field decoding: `(world, rounds, elems, dead)`. A
    /// disconnect rank outside the world is ignored rather than rejected,
    /// keeping decode total over the coordinate grammar.
    fn rendezvous_shape(&self) -> (usize, usize, usize, Option<usize>) {
        let world = self.subgroup.max(1);
        let dead = match self.fault {
            FaultPlan::Disconnect(r) if r < world => Some(r),
            _ => None,
        };
        (world, self.stride.max(1), self.params, dead)
    }

    /// The sequential oracle: `full_step` + full downscale on one thread
    /// (pipeline kinds), or the rank-order collective fold
    /// ([`CheckScenario::rendezvous_expected`]).
    pub fn expected(&self) -> Observed {
        if self.kind == ScenarioKind::Rendezvous {
            return self.rendezvous_expected();
        }
        if self.kind == ScenarioKind::Coordinator {
            return self.coordinator_expected();
        }
        if self.kind == ScenarioKind::ZenFlow {
            return self.zenflow_expected();
        }
        let (mut state, grads, _) = self.fresh_state();
        state.full_step(&grads);
        let fp16 = state.downscale_range(0..self.params);
        Observed {
            params: state.params().to_vec(),
            momentum: state.momentum().to_vec(),
            variance: state.variance().to_vec(),
            fp16,
        }
    }

    /// Runs the scenario body once (under whatever scheduler context is
    /// installed) and returns the terminal state.
    ///
    /// # Panics
    ///
    /// Panics on pipeline precondition errors — scenarios are constructed
    /// to satisfy them, so a failure here is a scenario-definition bug.
    pub fn observed(&self) -> Observed {
        if self.kind == ScenarioKind::Rendezvous {
            return self.rendezvous_observed();
        }
        if self.kind == ScenarioKind::Coordinator {
            return self.coordinator_observed();
        }
        if self.kind == ScenarioKind::ZenFlow {
            return self.zenflow_observed();
        }
        let (mut state, grads, sgs) = self.fresh_state();
        match self.kind {
            ScenarioKind::Rendezvous | ScenarioKind::Coordinator | ScenarioKind::ZenFlow => {
                unreachable!("handled above")
            }
            ScenarioKind::Pipeline => {
                let cfg = PipelineConfig {
                    stride: StridePolicy::Fixed(self.stride.max(1)),
                    static_residents: self.residents,
                    fault_injection: self.fault.to_device_fault(),
                };
                let report = match hybrid_update(&mut state, &grads, &sgs, cfg) {
                    Ok(r) => r,
                    Err(e) => panic!("scenario {} precondition failure: {e}", self.encode()),
                };
                Observed {
                    params: state.params().to_vec(),
                    momentum: state.momentum().to_vec(),
                    variance: state.variance().to_vec(),
                    fp16: report.fp16_params,
                }
            }
            ScenarioKind::BuggyLostSend => {
                let kill_after = match self.fault {
                    FaultPlan::Disconnect(n) => n,
                    _ => 1,
                };
                let fp16 = buggy_lost_send_update(
                    &mut state,
                    &grads,
                    &sgs,
                    self.stride.max(1),
                    kill_after,
                );
                Observed {
                    params: state.params().to_vec(),
                    momentum: state.momentum().to_vec(),
                    variance: state.variance().to_vec(),
                    fp16,
                }
            }
        }
    }

    /// Runs the blocking-mode collective rendezvous: one virtual thread
    /// per rank over an in-process mesh. The terminal
    /// [`Observed`] reuses the pipeline fields: `params` holds every
    /// rank's final buffer in rank order, `momentum` one status per rank
    /// (0.0 completed, 1.0 typed rank failure, 2.0 any other error — a
    /// collective-layer bug the oracle flags), `variance` the
    /// concatenated all-gather results, `fp16` is empty.
    fn rendezvous_observed(&self) -> Observed {
        let (world, rounds, elems, dead) = self.rendezvous_shape();
        let comms = Communicator::world(world);
        let per_rank: Vec<(Vec<f32>, f32, Vec<f32>)> = sync::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    scope.spawn(move || rendezvous_rank(rank, comm, elems, rounds, dead))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => panic!("rendezvous rank panicked"),
                })
                .collect()
        });
        let mut params = Vec::new();
        let mut momentum = Vec::new();
        let mut variance = Vec::new();
        for (buf, status, gathered) in per_rank {
            params.extend_from_slice(&buf);
            momentum.push(status);
            variance.extend_from_slice(&gathered);
        }
        Observed { params, momentum, variance, fp16: Vec::new() }
    }

    /// The two-tenant fixture the coordinator scenario serves: one job
    /// per tenant, CPU-only strides (the coordinator's own concurrency is
    /// what exploration should bite on, not the inner pipeline's), seeds
    /// fixed so every job's numerics are a pure function of its spec.
    fn coordinator_fixture(&self) -> Vec<JobSpec> {
        let iterations = self.stride.max(1);
        ["alfa", "beta"]
            .iter()
            .enumerate()
            .map(|(i, tenant)| {
                let spec: Result<JobSpec, _> = serde_json::from_str(&format!(
                    r#"{{ "tenant": "{tenant}", "name": "j", "iterations": {iterations},
                          "seed": {}, "trainer": {{
                              "params": {}, "subgroup_size": {},
                              "deep_optimizer_states": {{ "update_stride": "cpu_only" }} }} }}"#,
                    i as u64 + 1,
                    self.params,
                    self.subgroup,
                ));
                match spec {
                    Ok(s) => s,
                    Err(e) => panic!("scenario {} fixture: {e}", self.encode()),
                }
            })
            .collect()
    }

    /// Runs the coordinator body: two virtual submitter threads race
    /// their jobs into the intake channel while the coordinator admits,
    /// grants, preempts, and completes on a one-GPU cluster. The terminal
    /// [`Observed`] packs every job's final state sorted by tenant —
    /// schedule-invariant by design — plus `[completed,
    /// lease_violations]` markers appended to `momentum`.
    fn coordinator_observed(&self) -> Observed {
        let fixture = self.coordinator_fixture();
        let profile = HardwareProfile::jlse_h100().with_num_gpus(1);
        let slice = self.residents.max(1);
        let (tx, rx) = sync::unbounded();
        let (report, states) = sync::scope(|scope| {
            for spec in fixture {
                let tx = tx.clone();
                scope.spawn(move || {
                    let _ = tx.send(spec);
                });
            }
            drop(tx);
            let mut coord = Coordinator::new(
                profile,
                ServeOptions {
                    slice_iters: Some(slice),
                    retain_final_states: true,
                    prove_preemption: false,
                    ..ServeOptions::default()
                },
            );
            let report = match coord.run_channel(rx) {
                Ok(r) => r,
                Err(e) => panic!("scenario {} serve failure: {e}", self.encode()),
            };
            (report, coord.job_states())
        });
        let mut params = Vec::new();
        let mut momentum = Vec::new();
        let mut variance = Vec::new();
        for (_, _, state) in &states {
            params.extend_from_slice(&state.params);
            momentum.extend_from_slice(state.optimizer.momentum());
            variance.extend_from_slice(state.optimizer.variance());
        }
        momentum.push(report.completed as f32);
        momentum.push(report.lease_violations as f32);
        Observed { params, momentum, variance, fp16: Vec::new() }
    }

    /// Sequential oracle for [`ScenarioKind::Coordinator`]: each job run
    /// standalone on a dedicated trainer (no coordinator, no preemption),
    /// in tenant order — exactly what the served numerics must equal
    /// bitwise on every terminal schedule. The markers assert both jobs
    /// completed and no lease was ever double-granted.
    fn coordinator_expected(&self) -> Observed {
        let mut params = Vec::new();
        let mut momentum = Vec::new();
        let mut variance = Vec::new();
        let fixture = self.coordinator_fixture();
        let completed = fixture.len() as f32;
        for spec in fixture {
            let init = dos_serve::init_stream(spec.seed, spec.trainer.params);
            let mut trainer = match spec.trainer.clone().build(init) {
                Ok(t) => t,
                Err(e) => panic!("scenario {} oracle build: {e}", self.encode()),
            };
            for iter in 0..spec.iterations {
                let grads = dos_serve::grad_stream(spec.seed, iter, spec.trainer.params);
                if let Err(e) = trainer.step(&grads) {
                    panic!("scenario {} oracle step: {e}", self.encode());
                }
            }
            params.extend_from_slice(trainer.params());
            momentum.extend_from_slice(trainer.momentum());
            variance.extend_from_slice(trainer.variance());
        }
        momentum.push(completed);
        momentum.push(0.0);
        Observed { params, momentum, variance, fp16: Vec::new() }
    }

    /// Decodes the ZenFlow policy from the coordinate fields: `stride` is
    /// the staleness bound, `residents` the hot subgroup count `r`, turned
    /// into an importance ratio `r / n` (clamped so at least one and at
    /// most all subgroups are hot — `hot_count` ceils, so the ratio maps
    /// back onto exactly `r` for the suite shapes).
    fn zenflow_config(&self) -> ZenFlowConfig {
        let n = dos_zero::partition_into_subgroups(self.params, self.subgroup).len().max(1);
        let r = self.residents.clamp(1, n);
        ZenFlowConfig {
            importance_ratio: r as f64 / n as f64,
            staleness_bound: self.stride.max(1),
        }
    }

    /// Runs the ZenFlow cross-iteration body: [`ZENFLOW_STEPS`] calls to
    /// [`ZenFlowPipeline::step`] with a [`ZenFlowPipeline::poll_pending`]
    /// harvest between steps (so finished asynchronous workers rendezvous
    /// at schedule-dependent points), then the mandatory drain barrier.
    /// The terminal [`Observed`] packs the full optimizer state, the full
    /// FP16 downscale, and the observed maximum staleness appended to
    /// `momentum` — so a schedule that over-ages a cold gradient diverges
    /// from the oracle even if the numerics happen to agree.
    ///
    /// The staleness bound is also asserted directly: exceeding it panics,
    /// which exploration reports as a schedule failure.
    fn zenflow_observed(&self) -> Observed {
        let (init, _) = deterministic_init(self.params);
        let mut state = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        let sgs = partition_into_subgroups(self.params, self.subgroup);
        let cfg = self.zenflow_config();
        let mut pipe = ZenFlowPipeline::new(sgs, cfg);
        for t in 0..ZENFLOW_STEPS {
            pipe.step(&mut state, &zenflow_grads(self.params, t));
            pipe.poll_pending(&mut state);
        }
        pipe.drain(&mut state);
        let max_age = pipe.max_age_seen();
        assert!(
            max_age <= cfg.effective_staleness(),
            "scenario {}: staleness bound violated ({max_age} > {})",
            self.encode(),
            cfg.effective_staleness()
        );
        let fp16 = state.downscale_range(0..self.params);
        let mut momentum = state.momentum().to_vec();
        momentum.push(max_age as f32);
        Observed {
            params: state.params().to_vec(),
            momentum,
            variance: state.variance().to_vec(),
            fp16,
        }
    }

    /// Sequential oracle for [`ScenarioKind::ZenFlow`]:
    /// [`zenflow_reference`] over the same gradient stream — the identical
    /// importance/accumulate/flush/drain decisions inline on one thread —
    /// with the reference's max staleness as the `momentum` marker.
    fn zenflow_expected(&self) -> Observed {
        let (init, _) = deterministic_init(self.params);
        let mut state = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        let sgs = partition_into_subgroups(self.params, self.subgroup);
        let cfg = self.zenflow_config();
        let steps: Vec<Vec<f32>> =
            (0..ZENFLOW_STEPS).map(|t| zenflow_grads(self.params, t)).collect();
        let max_age = zenflow_reference(&mut state, &sgs, &cfg, &steps);
        let fp16 = state.downscale_range(0..self.params);
        let mut momentum = state.momentum().to_vec();
        momentum.push(max_age as f32);
        Observed {
            params: state.params().to_vec(),
            momentum,
            variance: state.variance().to_vec(),
            fp16,
        }
    }

    /// Sequential oracle for [`ScenarioKind::Rendezvous`]: replays the
    /// rank-order element-wise fold the collective layer guarantees
    /// (`all_reduce_sum` accumulates in rank order, independent of
    /// arrival order), so the comparison is bitwise. With an injected
    /// disconnect the final round fails on every survivor — buffers stay
    /// at their pre-final-round state, no gather happens, and each
    /// survivor's status must be the typed rank-failure marker.
    fn rendezvous_expected(&self) -> Observed {
        let (world, rounds, elems, dead) = self.rendezvous_shape();
        let mut bufs: Vec<Vec<f32>> = (0..world)
            .map(|r| (0..elems).map(|i| rendezvous_init(r, i)).collect())
            .collect();
        let full_rounds = if dead.is_some() { rounds - 1 } else { rounds };
        for round in 0..full_rounds {
            let mut sum = vec![0.0f32; elems];
            for buf in &bufs {
                for (s, b) in sum.iter_mut().zip(buf) {
                    *s += b;
                }
            }
            for (r, buf) in bufs.iter_mut().enumerate() {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = sum[i] * 0.5 + rendezvous_perturb(r, round, i);
                }
            }
        }
        let momentum: Vec<f32> = (0..world)
            .map(|r| if dead.is_some() && dead != Some(r) { 1.0 } else { 0.0 })
            .collect();
        let variance: Vec<f32> = if dead.is_some() {
            Vec::new()
        } else {
            let gathered: Vec<f32> = bufs.iter().flatten().copied().collect();
            (0..world).flat_map(|_| gathered.clone()).collect()
        };
        Observed {
            params: bufs.into_iter().flatten().collect(),
            momentum,
            variance,
            fp16: Vec::new(),
        }
    }

    /// Bitwise comparison against the sequential oracle; `Some` describes
    /// the first mismatch.
    pub fn verify(&self, obs: &Observed) -> Option<String> {
        let want = self.expected();
        first_mismatch_f32("params", &obs.params, &want.params)
            .or_else(|| first_mismatch_f32("momentum", &obs.momentum, &want.momentum))
            .or_else(|| first_mismatch_f32("variance", &obs.variance, &want.variance))
            .or_else(|| {
                if obs.fp16 != want.fp16 {
                    let i = obs
                        .fp16
                        .iter()
                        .zip(&want.fp16)
                        .position(|(a, b)| a != b)
                        .unwrap_or(usize::MAX);
                    Some(format!("fp16[{i}] diverged"))
                } else {
                    None
                }
            })
    }

    /// The default suite `dos-cli check` explores: the real pipeline
    /// across strides, residents, and both fault-recovery paths.
    pub fn default_suite() -> Vec<CheckScenario> {
        let pl = |params, subgroup, stride, residents, fault| CheckScenario {
            kind: ScenarioKind::Pipeline,
            params,
            subgroup,
            stride,
            residents,
            fault,
        };
        vec![
            // Healthy pipeline: stride sweep + residents.
            pl(48, 8, 2, 0, FaultPlan::None),
            pl(48, 8, 1, 0, FaultPlan::None),
            pl(48, 8, 3, 1, FaultPlan::None),
            pl(64, 8, 2, 2, FaultPlan::None),
            // PanicAfter recovery path (worker dies mid-step).
            pl(48, 8, 2, 0, FaultPlan::Panic(0)),
            pl(48, 8, 2, 0, FaultPlan::Panic(1)),
            pl(64, 8, 1, 1, FaultPlan::Panic(2)),
            // DisconnectAfter recovery path (worker hangs up mid-step).
            pl(48, 8, 2, 0, FaultPlan::Disconnect(0)),
            pl(48, 8, 2, 0, FaultPlan::Disconnect(1)),
            pl(64, 8, 1, 1, FaultPlan::Disconnect(2)),
        ]
    }

    /// The rendezvous suite `dos-cli check` explores alongside the
    /// pipeline: blocking-mode collectives over the in-process mesh,
    /// healthy and with a mid-run rank disconnect.
    pub fn rendezvous_suite() -> Vec<CheckScenario> {
        let rdv = |elems, world, rounds, fault| CheckScenario {
            kind: ScenarioKind::Rendezvous,
            params: elems,
            subgroup: world,
            stride: rounds,
            residents: 0,
            fault,
        };
        vec![
            rdv(4, 3, 2, FaultPlan::None),
            rdv(4, 2, 3, FaultPlan::None),
            rdv(4, 3, 2, FaultPlan::Disconnect(1)),
            rdv(4, 3, 1, FaultPlan::Disconnect(2)),
        ]
    }

    /// The coordinator suite `dos-cli check` explores alongside the
    /// pipeline: the two-tenant serve fixture, once with single-iteration
    /// leases (a preemption between every pair of slices) and once with a
    /// lease long enough that jobs complete unpreempted.
    pub fn coordinator_suite() -> Vec<CheckScenario> {
        let co = |params, subgroup, iterations, slice| CheckScenario {
            kind: ScenarioKind::Coordinator,
            params,
            subgroup,
            stride: iterations,
            residents: slice,
            fault: FaultPlan::None,
        };
        vec![co(16, 8, 2, 1), co(16, 8, 2, 2)]
    }

    /// The ZenFlow suite `dos-cli check` explores alongside the pipeline:
    /// the cross-iteration asynchronous update body across staleness
    /// bounds and hot-set sizes (6 subgroups with 2 hot, then 8 subgroups
    /// with 3 hot).
    pub fn zenflow_suite() -> Vec<CheckScenario> {
        let zf = |params, subgroup, staleness, hot| CheckScenario {
            kind: ScenarioKind::ZenFlow,
            params,
            subgroup,
            stride: staleness,
            residents: hot,
            fault: FaultPlan::None,
        };
        vec![zf(48, 8, 1, 2), zf(48, 8, 2, 2), zf(64, 8, 1, 3)]
    }

    /// The canonical seeded-bug demo scenario: stride 1 ships every
    /// subgroup, the worker disconnects after one job, and the buggy
    /// fallback drops any job whose send fails.
    pub fn seeded_bug() -> CheckScenario {
        CheckScenario {
            kind: ScenarioKind::BuggyLostSend,
            params: 64,
            subgroup: 8,
            stride: 1,
            residents: 0,
            fault: FaultPlan::Disconnect(1),
        }
    }
}

/// The deliberately seeded ordering bug: a copy of the hybrid pipeline's
/// structure whose send-failure fallback *drops the job* instead of
/// re-running it on the CPU.
///
/// Under the default "main runs until it blocks" schedule every H2D send
/// is enqueued before the worker first runs, so no send ever fails and the
/// consumed-but-unreturned jobs are correctly retried via the pending
/// list — the bug stays invisible. Only a schedule that lets the worker
/// consume its kill quota and disconnect *while the main thread still has
/// sends outstanding* makes a send fail and exposes the dropped update.
///
/// Returns the FP16 downscale the (buggy) step produced.
pub fn buggy_lost_send_update(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    stride: usize,
    kill_after: usize,
) -> Vec<F16> {
    state.begin_step();
    let step = state.step_count();
    let rule = state.rule();
    let lr = state.lr();

    let (h2d_tx, h2d_rx) = sync::unbounded::<(SubgroupSpec, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>();
    let (d2h_tx, d2h_rx) = sync::unbounded::<(SubgroupSpec, Vec<f32>, Vec<f32>, Vec<f32>, Vec<F16>)>();

    let mut fp16 = vec![F16::ZERO; state.len()];
    let mut pending: Vec<SubgroupSpec> = Vec::new();
    let mut worker_lost = false;

    sync::scope(|scope| {
        let worker = scope.spawn(move || {
            let mut processed = 0usize;
            while let Ok((sg, mut p, mut m, mut v, g)) = h2d_rx.recv() {
                if processed == kill_after {
                    return; // injected disconnect: drops both endpoints
                }
                rule.apply(step, lr, &mut p, &g, &mut m, &mut v);
                let p16 = p.iter().map(|&x| F16::from_f32(x)).collect();
                if d2h_tx.send((sg, p, m, v, p16)).is_err() {
                    return;
                }
                processed += 1;
            }
        });

        let cpu_apply = |state: &mut MixedPrecisionState, fp16: &mut Vec<F16>, sg: &SubgroupSpec| {
            state.update_range(sg.range(), &grads[sg.range()]);
            for (dst, src) in fp16[sg.range()].iter_mut().zip(state.downscale_range(sg.range())) {
                *dst = src;
            }
        };

        for (i, sg) in subgroups.iter().enumerate() {
            let on_device = !worker_lost && (i + 1) % stride.max(1) == 0;
            if on_device {
                let (p, m, v) = state.snapshot_range(sg.range());
                let job = (*sg, p.to_vec(), m.to_vec(), v.to_vec(), grads[sg.range()].to_vec());
                match h2d_tx.send(job) {
                    Ok(()) => pending.push(*sg),
                    Err(_) => {
                        // BUG: the job never left the host, but nothing
                        // re-runs it — its subgroup silently keeps the
                        // pre-update state.
                        worker_lost = true;
                    }
                }
            } else {
                cpu_apply(state, &mut fp16, sg);
            }
        }
        drop(h2d_tx);

        while let Ok((sg, p, m, v, p16)) = d2h_rx.recv() {
            pending.retain(|q| q.id != sg.id);
            state.write_back_range(sg.range(), &p, &m, &v);
            fp16[sg.range()].copy_from_slice(&p16);
        }

        let _ = worker.join();

        // The pending-retry path itself is correct (same as the real
        // pipeline): consumed-but-unreturned jobs re-run on the CPU.
        for sg in std::mem::take(&mut pending) {
            cpu_apply(state, &mut fp16, &sg);
        }
    });

    fp16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_round_trip() {
        for sc in CheckScenario::default_suite()
            .into_iter()
            .chain(CheckScenario::rendezvous_suite())
            .chain(CheckScenario::coordinator_suite())
            .chain(CheckScenario::zenflow_suite())
            .chain([CheckScenario::seeded_bug()])
        {
            assert_eq!(CheckScenario::decode(&sc.encode()), Ok(sc), "{}", sc.encode());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CheckScenario::decode("pl-p48-g8-k2-r0").is_err());
        assert!(CheckScenario::decode("xx-p48-g8-k2-r0-fn").is_err());
        assert!(CheckScenario::decode("pl-q48-g8-k2-r0-fn").is_err());
        assert!(CheckScenario::decode("pl-p48-g8-k2-r0-fz9").is_err());
    }

    #[test]
    fn pipeline_scenarios_pass_outside_a_checked_run() {
        // Sanity: the bodies themselves are sound under the OS scheduler.
        for sc in CheckScenario::default_suite() {
            let obs = sc.observed();
            assert!(sc.verify(&obs).is_none(), "{} diverged", sc.encode());
        }
    }

    #[test]
    fn coordinator_scenarios_pass_outside_a_checked_run() {
        // The serve fixture's numerics must match dedicated runs even
        // under the OS scheduler (preemption included).
        for sc in CheckScenario::coordinator_suite() {
            let obs = sc.observed();
            assert!(sc.verify(&obs).is_none(), "{} diverged", sc.encode());
        }
    }

    #[test]
    fn rendezvous_scenarios_pass_outside_a_checked_run() {
        // Same sanity for the collective rendezvous, including the
        // disconnect variants: survivors must report the typed rank
        // failure (status 1.0) with buffers frozen at the pre-final-round
        // state, under the OS scheduler too.
        for sc in CheckScenario::rendezvous_suite() {
            let obs = sc.observed();
            assert!(sc.verify(&obs).is_none(), "{} diverged", sc.encode());
        }
    }

    #[test]
    fn zenflow_scenarios_pass_outside_a_checked_run() {
        // The cross-iteration bodies must match the sequential
        // bounded-staleness oracle bitwise under the OS scheduler too,
        // and every suite entry must exercise the cold path (a marker of
        // 0 would mean the scenario degenerated to synchronous Adam).
        for sc in CheckScenario::zenflow_suite() {
            let obs = sc.observed();
            assert!(sc.verify(&obs).is_none(), "{} diverged", sc.encode());
            let max_age = obs.momentum[obs.momentum.len() - 1];
            assert!(max_age >= 1.0, "{}: cold path never exercised", sc.encode());
        }
    }

    #[test]
    fn buggy_fixture_is_clean_under_the_default_schedule() {
        // The seeded bug must be invisible under the deterministic default
        // schedule (main thread runs until it blocks): every send is
        // enqueued before the worker first runs, so no send fails. This is
        // what makes it a fair "only schedule exploration finds this"
        // fixture.
        let sc = CheckScenario::seeded_bug();
        let failure = crate::explore::replay(
            &[],
            &|| sc.observed(),
            &|obs| sc.verify(obs),
            20_000,
        );
        assert!(failure.is_none(), "seeded bug fired under the default schedule: {failure:?}");
    }
}
