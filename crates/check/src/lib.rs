//! `dos-check`: deterministic schedule exploration and differential
//! fuzzing for the hybrid update pipeline.
//!
//! Two engines, one verdict:
//!
//! * **Schedule exploration** ([`explore`]) runs Algorithm-1 bodies under
//!   `dos-core`'s cooperative scheduler (`dos_core::sync::sched`, behind
//!   the `check` feature) and walks their interleaving space — bounded DFS
//!   with sleep-set partial-order pruning plus seeded random walks. Every
//!   terminal schedule must match the sequential oracle **bitwise**;
//!   deadlocks and lost wakeups surface as scheduler-level failures. A
//!   failing schedule is greedily shrunk ([`shrink`]) and printed as a
//!   replayable token ([`token`]): `dos-cli check --replay dc1:…`.
//! * **Differential fuzzing** ([`fuzz`]) drives seeded random
//!   (model zoo × scheduler × stride × resident ratio × fault plan)
//!   configurations through the tri-oracle — Equation 1 vs the
//!   discrete-event simulator on the perf arm, the hybrid pipeline vs its
//!   sequential twin on the numerics arm — with proptest-shim shrinking
//!   and a committed regression corpus under `tests/corpus/`.
//!
//! [`run_check`] is the entry point behind `dos-cli check`; it explores
//! the default scenario suite (healthy pipeline plus both `PanicAfter`
//! and `DisconnectAfter` recovery paths, the blocking-mode collective
//! rendezvous — healthy and with a mid-run rank disconnect — the
//! two-tenant serve coordinator, and the ZenFlow cross-iteration
//! asynchronous update pipeline) until the requested number of distinct
//! schedules is reached, then runs the fuzz arms, and returns a
//! JSON-serializable [`report::CheckReport`]. A scenario prefix filter
//! (`dos-cli check --scenario zf`) narrows the suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod explore;
pub mod fuzz;
pub mod hygiene;
pub mod report;
pub mod scenarios;
pub mod shrink;
pub mod token;

use std::collections::HashSet;
use std::path::PathBuf;

use explore::ExploreConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use report::{CheckReport, FuzzFailureReport, FuzzSummary, ScenarioReport, ScheduleFailureReport};
use scenarios::CheckScenario;
use token::ScheduleToken;

/// Per-run decision budget (runaway guard) shared by every engine.
pub const DEFAULT_MAX_STEPS: usize = 20_000;

/// Options for one [`run_check`] invocation.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Target number of distinct schedules across the scenario suite.
    pub schedules: usize,
    /// Number of sampled fuzz cases.
    pub fuzz: usize,
    /// Seed for random walks and fuzz sampling.
    pub seed: u64,
    /// Regression corpus directory (`tests/corpus/`); `None` skips replay.
    pub corpus_dir: Option<PathBuf>,
    /// Restrict exploration to scenarios whose coordinate starts with this
    /// prefix (e.g. `"zf"` for the ZenFlow suite, `"pl-p48"` for the
    /// 48-parameter pipeline shapes); `None` explores the full suite.
    pub scenario_filter: Option<String>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            schedules: 1_200,
            fuzz: 24,
            seed: 0,
            corpus_dir: None,
            scenario_filter: None,
        }
    }
}

/// Budget ceiling on shrinking one failing schedule or fuzz case.
const SHRINK_TRIALS: usize = 400;

/// Extra random-walk top-up rounds before giving up on the distinct
/// target (the space can be smaller than requested).
const TOPUP_ROUNDS: usize = 40;

fn explore_scenario(
    sc: &CheckScenario,
    cfg: &ExploreConfig,
    salt: u64,
    distinct_seen: &mut HashSet<u64>,
) -> explore::Exploration {
    explore::explore(cfg, salt, || sc.observed(), |obs| sc.verify(obs), distinct_seen)
}

fn shrink_failure(sc: &CheckScenario, failure: &explore::Failure) -> ScheduleFailureReport {
    let token = ScheduleToken::new(&sc.encode(), &failure.schedule).render();
    let shrunk = shrink::shrink_schedule(
        &failure.schedule,
        |candidate| {
            explore::replay(candidate, &|| sc.observed(), &|obs| sc.verify(obs), DEFAULT_MAX_STEPS)
                .is_some()
        },
        SHRINK_TRIALS,
    );
    ScheduleFailureReport {
        message: failure.kind.to_string(),
        token,
        shrunk_token: ScheduleToken::new(&sc.encode(), &shrunk.schedule).render(),
        shrink_trials: shrunk.trials,
    }
}

/// Explores one scenario and folds the outcome (including a shrunk,
/// tokenized failure if any) into a [`ScenarioReport`].
pub fn check_scenario(
    sc: &CheckScenario,
    cfg: &ExploreConfig,
    salt: u64,
    distinct_seen: &mut HashSet<u64>,
) -> ScenarioReport {
    let ex = explore_scenario(sc, cfg, salt, distinct_seen);
    ScenarioReport {
        scenario: sc.encode(),
        completed: ex.stats.completed,
        distinct: ex.stats.distinct,
        sleep_pruned: ex.stats.sleep_pruned,
        max_depth: ex.stats.max_depth,
        exhausted: ex.stats.exhausted,
        failure: ex.failure.as_ref().map(|f| shrink_failure(sc, f)),
    }
}

fn fuzz_failure(origin: &str, case: &fuzz::FuzzCase, divergence: String) -> FuzzFailureReport {
    let (shrunk, trials) =
        fuzz::shrink_case(case, |c| fuzz::run_case(c).is_some(), SHRINK_TRIALS);
    FuzzFailureReport {
        origin: origin.to_string(),
        coordinates: case.coordinates(),
        divergence,
        shrunk_case_json: fuzz::render_case(&shrunk),
        shrink_trials: trials,
    }
}

/// Runs the full check: schedule exploration over the default suite, then
/// sampled fuzzing, then corpus replay.
///
/// # Errors
///
/// Returns a description when the corpus directory is unreadable or holds
/// an unparsable case — corpus corruption must fail loudly.
pub fn run_check(opts: &CheckOptions) -> Result<CheckReport, String> {
    let suite: Vec<CheckScenario> = CheckScenario::default_suite()
        .into_iter()
        .chain(CheckScenario::rendezvous_suite())
        .chain(CheckScenario::coordinator_suite())
        .chain(CheckScenario::zenflow_suite())
        .filter(|sc| {
            opts.scenario_filter
                .as_deref()
                .is_none_or(|f| sc.encode().starts_with(f))
        })
        .collect();
    if suite.is_empty() {
        return Err(format!(
            "scenario filter {:?} matches nothing in the suite",
            opts.scenario_filter.as_deref().unwrap_or("")
        ));
    }
    let mut distinct_seen: HashSet<u64> = HashSet::new();
    let mut scenarios: Vec<ScenarioReport> = Vec::new();

    // First pass: split the schedule budget evenly; DFS carries half,
    // random walks the other half.
    let per = (opts.schedules / suite.len().max(1)).max(16);
    for (i, sc) in suite.iter().enumerate() {
        let cfg = ExploreConfig {
            dfs_budget: per,
            random_walks: per / 2,
            seed: opts.seed.wrapping_add(i as u64),
            max_steps: DEFAULT_MAX_STEPS,
        };
        scenarios.push(check_scenario(sc, &cfg, i as u64, &mut distinct_seen));
    }

    // Top-up: extra random-walk rounds until the distinct target is met.
    let healthy = scenarios.iter().all(|s| s.failure.is_none());
    if healthy {
        let mut round = 0usize;
        while distinct_seen.len() < opts.schedules && round < TOPUP_ROUNDS {
            round += 1;
            for (i, sc) in suite.iter().enumerate() {
                if distinct_seen.len() >= opts.schedules {
                    break;
                }
                let cfg = ExploreConfig {
                    dfs_budget: 0,
                    random_walks: per / 2,
                    seed: opts
                        .seed
                        .wrapping_add(1_000_003)
                        .wrapping_mul(round as u64 + 1)
                        .wrapping_add(i as u64),
                    max_steps: DEFAULT_MAX_STEPS,
                };
                let ex = explore_scenario(sc, &cfg, i as u64, &mut distinct_seen);
                let entry = &mut scenarios[i];
                entry.completed += ex.stats.completed;
                entry.distinct += ex.stats.distinct;
                entry.max_depth = entry.max_depth.max(ex.stats.max_depth);
                if entry.failure.is_none() {
                    entry.failure = ex.failure.as_ref().map(|f| shrink_failure(sc, f));
                }
            }
        }
    }

    // Fuzz arms: sampled cases, then corpus replay.
    let mut failures: Vec<FuzzFailureReport> = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(0x5eed_f022));
    for _ in 0..opts.fuzz {
        let case = fuzz::sample_case(&mut rng);
        if let Some(d) = fuzz::run_case(&case) {
            failures.push(fuzz_failure("sampled", &case, d));
        }
    }
    let mut corpus_replayed = 0usize;
    if let Some(dir) = &opts.corpus_dir {
        for entry in fuzz::load_corpus(dir)? {
            corpus_replayed += 1;
            if let Some(d) = fuzz::run_case(&entry.case) {
                failures.push(fuzz_failure(&entry.name, &entry.case, d));
            }
        }
    }

    let fuzz_summary =
        FuzzSummary { sampled: opts.fuzz, corpus_replayed, failures };
    // Hygiene: explored bodies must route all blocking through the
    // dos_core::sync facade, or exploration silently loses interleavings.
    let hygiene = hygiene::scan_default();
    let passed = scenarios.iter().all(|s| s.failure.is_none())
        && fuzz_summary.failures.is_empty()
        && hygiene.findings.is_empty();
    Ok(CheckReport {
        distinct_total: distinct_seen.len(),
        scenarios,
        fuzz: fuzz_summary,
        hygiene,
        passed,
    })
}

/// Replays a schedule token against its scenario: parses it, rebuilds the
/// body, replays the forced prefix (default-extended), and returns the
/// reproduced failure, if any.
///
/// # Errors
///
/// Returns a description when the token or its scenario coordinate does
/// not parse.
pub fn replay_token(token: &str) -> Result<Option<String>, String> {
    let parsed = ScheduleToken::parse(token).map_err(|e| e.to_string())?;
    let sc = CheckScenario::decode(&parsed.scenario)?;
    Ok(explore::replay(
        &parsed.schedule,
        &|| sc.observed(),
        &|obs| sc.verify(obs),
        DEFAULT_MAX_STEPS,
    )
    .map(|kind| kind.to_string()))
}
