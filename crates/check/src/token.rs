//! Replayable schedule tokens.
//!
//! A token pins everything needed to reproduce one failing schedule:
//! the scenario (which fixes the body and its inputs bit for bit) and the
//! decision sequence (which fixes the interleaving). Format:
//!
//! ```text
//! dc1:<scenario>:<schedule>
//! ```
//!
//! where `<scenario>` is [`crate::scenarios::CheckScenario::encode`]'s
//! string and `<schedule>` is the chosen tid per decision point, one
//! base-36 digit each (virtual thread ids never reach double digits in
//! practice; the format caps them at 35).

use dos_core::sync::sched::Tid;

/// Token format version prefix.
const PREFIX: &str = "dc1";

/// A parsed schedule token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleToken {
    /// Encoded scenario coordinate (see
    /// [`crate::scenarios::CheckScenario::encode`]).
    pub scenario: String,
    /// Chosen tid per decision point.
    pub schedule: Vec<Tid>,
}

/// Why a token failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// The token does not have the `dc1:<scenario>:<schedule>` shape.
    Malformed(String),
    /// A schedule character is not a base-36 digit.
    BadDigit(char),
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::Malformed(d) => write!(f, "malformed schedule token: {d}"),
            TokenError::BadDigit(c) => write!(f, "bad schedule digit {c:?} (want base-36)"),
        }
    }
}

impl std::error::Error for TokenError {}

impl ScheduleToken {
    /// Builds a token from a scenario coordinate and a decision sequence.
    ///
    /// # Panics
    ///
    /// Panics if a tid exceeds 35 (unencodable in one base-36 digit) or
    /// the scenario string contains `:`.
    pub fn new(scenario: &str, schedule: &[Tid]) -> ScheduleToken {
        assert!(!scenario.contains(':'), "scenario coordinates must not contain ':'");
        assert!(schedule.iter().all(|&t| t < 36), "tid out of base-36 range");
        ScheduleToken { scenario: scenario.to_string(), schedule: schedule.to_vec() }
    }

    /// Renders the `dc1:<scenario>:<schedule>` string.
    pub fn render(&self) -> String {
        let digits: String = self
            .schedule
            .iter()
            .map(|&t| char::from_digit(t as u32, 36).unwrap_or('?'))
            .collect();
        format!("{PREFIX}:{}:{digits}", self.scenario)
    }

    /// Parses a rendered token.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError`] when the prefix, shape, or schedule digits
    /// are invalid. The scenario coordinate is *not* validated here — see
    /// [`crate::scenarios::CheckScenario::decode`].
    pub fn parse(s: &str) -> Result<ScheduleToken, TokenError> {
        let mut parts = s.splitn(3, ':');
        let (prefix, scenario, digits) = match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(sc), Some(d)) => (p, sc, d),
            _ => {
                return Err(TokenError::Malformed(format!(
                    "expected 3 ':'-separated fields, got {:?}",
                    s
                )))
            }
        };
        if prefix != PREFIX {
            return Err(TokenError::Malformed(format!(
                "unknown version prefix {prefix:?} (want {PREFIX:?})"
            )));
        }
        if scenario.is_empty() {
            return Err(TokenError::Malformed("empty scenario coordinate".to_string()));
        }
        let mut schedule = Vec::with_capacity(digits.len());
        for c in digits.chars() {
            match c.to_digit(36) {
                Some(d) => schedule.push(d as Tid),
                None => return Err(TokenError::BadDigit(c)),
            }
        }
        Ok(ScheduleToken { scenario: scenario.to_string(), schedule })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let t = ScheduleToken::new("pl-p48-g8-k2-r0-fn", &[0, 0, 1, 2, 35, 1]);
        let s = t.render();
        assert_eq!(ScheduleToken::parse(&s), Ok(t));
    }

    #[test]
    fn rejects_malformed() {
        assert!(ScheduleToken::parse("dc1:only-two-fields").is_err());
        assert!(ScheduleToken::parse("dc9:x:01").is_err());
        assert!(ScheduleToken::parse("dc1::01").is_err());
        assert!(matches!(ScheduleToken::parse("dc1:x:0!"), Err(TokenError::BadDigit('!'))));
    }

    #[test]
    fn empty_schedule_is_valid() {
        let t = ScheduleToken::parse("dc1:x:").unwrap();
        assert!(t.schedule.is_empty());
    }
}
