//! Greedy schedule shrinking.
//!
//! A failing schedule found by DFS or a random walk is often long and
//! mostly incidental. The shrinker minimizes it against a `still_fails`
//! predicate (which replays a candidate prefix and default-extends it):
//!
//! 1. **Prefix search** — try increasingly long prefixes (0, 1, 2, 4, …)
//!    and keep the shortest one that still fails. Dropping the suffix is
//!    almost always possible because the default policy extension
//!    deterministically completes the run.
//! 2. **Element removal** — repeatedly try deleting each decision; a
//!    deleted decision that leaves the failure intact was incidental.
//!    Candidates whose replay diverges (the forced tid is not enabled)
//!    simply don't fail and are rejected by the predicate.
//!
//! Both passes are capped by a trial budget so shrinking stays inside the
//! tier-1 time envelope even for pathological schedules.

use dos_core::sync::sched::Tid;

/// Outcome of shrinking: the minimized schedule and how many replay
/// trials it took.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized failing schedule.
    pub schedule: Vec<Tid>,
    /// Replay trials spent.
    pub trials: usize,
}

/// Minimizes `schedule` while `still_fails` holds, spending at most
/// `max_trials` replays.
pub fn shrink_schedule<F>(schedule: &[Tid], mut still_fails: F, max_trials: usize) -> Shrunk
where
    F: FnMut(&[Tid]) -> bool,
{
    let mut trials = 0usize;
    let mut cur: Vec<Tid> = schedule.to_vec();

    // Pass 1: shortest failing prefix, probing lengths 0, 1, 2, 4, 8, …
    let mut len = 0usize;
    loop {
        if trials >= max_trials {
            return Shrunk { schedule: cur, trials };
        }
        if len >= cur.len() {
            break;
        }
        trials += 1;
        if still_fails(&cur[..len]) {
            cur.truncate(len);
            break;
        }
        len = if len == 0 { 1 } else { len * 2 };
    }

    // Pass 2: greedy element removal to a fixpoint.
    let mut improved = true;
    while improved && trials < max_trials {
        improved = false;
        let mut i = 0;
        while i < cur.len() && trials < max_trials {
            let mut candidate = cur.clone();
            candidate.remove(i);
            trials += 1;
            if still_fails(&candidate) {
                cur = candidate;
                improved = true;
                // Don't advance: position i now holds the next element.
            } else {
                i += 1;
            }
        }
    }

    Shrunk { schedule: cur, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_load_bearing_decisions() {
        // Failure iff the schedule contains a 2 somewhere before a 3.
        let fails = |s: &[Tid]| {
            let two = s.iter().position(|&t| t == 2);
            let three = s.iter().position(|&t| t == 3);
            matches!((two, three), (Some(a), Some(b)) if a < b)
        };
        let noisy = vec![0, 1, 1, 2, 0, 1, 3, 0, 0, 1];
        assert!(fails(&noisy));
        let out = shrink_schedule(&noisy, fails, 500);
        assert_eq!(out.schedule, vec![2, 3]);
    }

    #[test]
    fn prefix_pass_drops_default_extendable_suffix() {
        // Failure iff the first decision is 1 (everything after is noise
        // when replay default-extends).
        let fails = |s: &[Tid]| s.first() == Some(&1);
        let out = shrink_schedule(&[1, 0, 0, 0, 0, 0, 0, 0], fails, 100);
        assert_eq!(out.schedule, vec![1]);
    }

    #[test]
    fn respects_trial_budget() {
        let out = shrink_schedule(&[0; 64], |_| false, 5);
        assert!(out.trials <= 6);
        assert_eq!(out.schedule.len(), 64);
    }
}
