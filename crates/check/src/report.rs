//! Structured check reports: one JSON-serializable summary per
//! `dos-cli check` run, plus a human rendering.

use serde::{Deserialize, Serialize};

use crate::hygiene::HygieneSummary;

/// A failing schedule, tokenized and shrunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleFailureReport {
    /// What went wrong (divergence detail, deadlock, panic, step limit).
    pub message: String,
    /// Replayable token of the schedule as found.
    pub token: String,
    /// Replayable token of the shrunk schedule.
    pub shrunk_token: String,
    /// Replay trials the shrinker spent.
    pub shrink_trials: usize,
}

/// Exploration summary of one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario coordinate (see `CheckScenario::encode`).
    pub scenario: String,
    /// Terminal schedules reached and verified.
    pub completed: usize,
    /// Distinct schedules contributed (deduplicated globally).
    pub distinct: usize,
    /// Branches pruned by sleep sets.
    pub sleep_pruned: usize,
    /// Longest decision sequence observed.
    pub max_depth: usize,
    /// Whether the DFS frontier drained within budget.
    pub exhausted: bool,
    /// Failure, if the scenario diverged/deadlocked/panicked.
    pub failure: Option<ScheduleFailureReport>,
}

/// A failing fuzz case, shrunk and rendered.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzFailureReport {
    /// Where the case came from (`sampled` or a corpus file stem).
    pub origin: String,
    /// One-line case coordinates.
    pub coordinates: String,
    /// First divergence description.
    pub divergence: String,
    /// Shrunk case as pretty JSON, ready for `tests/corpus/`.
    pub shrunk_case_json: String,
    /// Shrink trials spent.
    pub shrink_trials: usize,
}

/// Differential-fuzz summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzSummary {
    /// Sampled cases run.
    pub sampled: usize,
    /// Corpus cases replayed.
    pub corpus_replayed: usize,
    /// Failures across both.
    pub failures: Vec<FuzzFailureReport>,
}

/// Full report of one check run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckReport {
    /// Per-scenario exploration summaries.
    pub scenarios: Vec<ScenarioReport>,
    /// Distinct schedules across all scenarios.
    pub distinct_total: usize,
    /// Fuzz summary.
    pub fuzz: FuzzSummary,
    /// Concurrency-hygiene scan over the code under check.
    #[serde(default)]
    pub hygiene: HygieneSummary,
    /// Whether everything passed.
    pub passed: bool,
}

impl CheckReport {
    /// Serializes the report as pretty JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\": \"unrenderable report: {e:?}\"}}"))
    }

    /// Renders a terminal-friendly summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str("schedule exploration\n");
        for sc in &self.scenarios {
            let status = match &sc.failure {
                None => "ok".to_string(),
                Some(f) => format!("FAIL ({})", f.message),
            };
            out.push_str(&format!(
                "  {:<24} {:>5} schedules ({:>4} distinct, {:>4} pruned, depth {:>3}{}) {}\n",
                sc.scenario,
                sc.completed,
                sc.distinct,
                sc.sleep_pruned,
                sc.max_depth,
                if sc.exhausted { ", exhausted" } else { "" },
                status
            ));
            if let Some(f) = &sc.failure {
                out.push_str(&format!("    replay:  dos-cli check --replay {}\n", f.token));
                out.push_str(&format!(
                    "    shrunk:  dos-cli check --replay {}  ({} trials)\n",
                    f.shrunk_token, f.shrink_trials
                ));
            }
        }
        out.push_str(&format!("  total distinct schedules: {}\n", self.distinct_total));
        out.push_str(&format!(
            "differential fuzz: {} sampled + {} corpus, {} failure(s)\n",
            self.fuzz.sampled,
            self.fuzz.corpus_replayed,
            self.fuzz.failures.len()
        ));
        out.push_str(&format!(
            "hygiene: {} files scanned, {} facade bypass(es)\n",
            self.hygiene.scanned_files,
            self.hygiene.findings.len()
        ));
        for f in &self.hygiene.findings {
            out.push_str(&format!("  FAIL {}:{} raw std::sync {}: {}\n", f.file, f.line, f.pattern, f.snippet));
        }
        for f in &self.fuzz.failures {
            out.push_str(&format!("  FAIL [{}] {}\n    {}\n", f.origin, f.coordinates, f.divergence));
            out.push_str(&format!("    shrunk case ({} trials):\n", f.shrink_trials));
            for line in f.shrunk_case_json.lines() {
                out.push_str(&format!("      {line}\n"));
            }
        }
        out.push_str(if self.passed { "check: PASS\n" } else { "check: FAIL\n" });
        out
    }
}
