//! Concurrency hygiene: flag raw `std::sync` blocking primitives in code
//! under check.
//!
//! Schedule exploration only sees yield points that go through the
//! `dos_core::sync` facade. A raw `std::sync::Mutex`, `Condvar`,
//! `RwLock`, `Barrier`, or `mpsc` channel in explored code blocks the
//! *OS* thread instead of the virtual one — interleavings hide from the
//! explorer and a deadlock under check becomes a wedge instead of a
//! reported failure. This pass scans the crates whose bodies the
//! scenarios run (`dos-core`, `dos-collectives`, `dos-train`,
//! `dos-control`, `dos-serve`) and reports every offending line.
//!
//! Raw `std::sync::atomic` types are flagged for the same reason from the
//! other direction: an atomic load/store is *not* a facade yield point, so
//! cross-thread communication through one is invisible to the explorer —
//! a spin-until-flag loop wedges the virtual scheduler, and an
//! `Ordering`-bearing handshake hides exactly the interleavings the
//! checker exists to enumerate. Lock-free code with a genuine reason
//! (e.g. telemetry counters never read back by explored control flow)
//! must carry the explicit `check-hygiene: allow` marker.
//!
//! Escape hatch: a line containing `check-hygiene: allow` is skipped, as
//! are `//` comment lines. The facade's own implementation
//! (`core/src/sync`) is exempt — wrapping the primitives is its job.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Substrings that mark a facade bypass when they appear with a
/// `std::sync` qualification on the same line.
const BLOCKING_PRIMITIVES: [&str; 5] = ["Mutex", "Condvar", "RwLock", "Barrier", "mpsc"];

/// Substrings that mark an ordering-bearing atomic when they appear with a
/// `std::sync::atomic` qualification on the same line (`Atomic` covers the
/// whole `AtomicBool`/`AtomicUsize`/`AtomicU64`/… family).
const ATOMIC_PRIMITIVES: [&str; 3] = ["Atomic", "Ordering", "fence"];

/// One offending source line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HygieneFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The primitive that matched.
    pub pattern: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

/// Summary of one hygiene scan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HygieneSummary {
    /// Rust files scanned.
    pub scanned_files: usize,
    /// Facade bypasses found (must be empty to pass).
    pub findings: Vec<HygieneFinding>,
}

/// The source roots the default scan covers: every crate whose code runs
/// inside a check scenario body.
pub fn default_roots() -> Vec<PathBuf> {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    ["core/src", "collectives/src", "train/src", "control/src", "serve/src"]
        .iter()
        .map(|r| ws.join(r))
        .collect()
}

fn flagged(line: &str) -> Option<&'static str> {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") || line.contains("check-hygiene: allow") {
        return None;
    }
    if !line.contains("std::sync") {
        return None;
    }
    if line.contains("std::sync::atomic") {
        return ATOMIC_PRIMITIVES.iter().find(|p| line.contains(*p)).copied();
    }
    BLOCKING_PRIMITIVES.iter().find(|p| line.contains(*p)).copied()
}

fn scan_file(path: &Path, rel: &str, out: &mut HygieneSummary) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    out.scanned_files += 1;
    for (i, line) in text.lines().enumerate() {
        if let Some(pattern) = flagged(line) {
            out.findings.push(HygieneFinding {
                file: rel.to_string(),
                line: i + 1,
                pattern: pattern.to_string(),
                snippet: line.trim().to_string(),
            });
        }
    }
}

fn scan_dir(dir: &Path, root: &Path, out: &mut HygieneSummary) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // The facade implementation itself is exempt.
            if path.file_name().is_some_and(|n| n == "sync") {
                continue;
            }
            scan_dir(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            && path.file_stem().is_none_or(|n| n != "sync")
        {
            let rel = path
                .strip_prefix(root.join(".."))
                .unwrap_or(&path)
                .display()
                .to_string();
            scan_file(&path, &rel, out);
        }
    }
}

/// Scans `roots` (each a crate `src/` directory) for facade bypasses.
pub fn scan(roots: &[PathBuf]) -> HygieneSummary {
    let mut out = HygieneSummary::default();
    for root in roots {
        scan_dir(root, root, &mut out);
    }
    out
}

/// Scans the default code-under-check roots.
pub fn scan_default() -> HygieneSummary {
    scan(&default_roots())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dos-hygiene-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flags_raw_primitives_and_honors_allows() {
        let root = tmp_root("flags");
        std::fs::write(
            root.join("bad.rs"),
            "use std::sync::Mutex;\n\
             // use std::sync::Condvar; (comment: fine)\n\
             let m: std::sync::RwLock<u8>; // check-hygiene: allow\n\
             let c = std::sync::mpsc::channel::<u8>();\n\
             use std::sync::Arc; // Arc is not a blocking primitive\n",
        )
        .unwrap();
        let summary = scan(std::slice::from_ref(&root));
        assert_eq!(summary.scanned_files, 1);
        let patterns: Vec<&str> =
            summary.findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(patterns, vec!["Mutex", "mpsc"], "{:?}", summary.findings);
        assert_eq!(summary.findings[0].line, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn flags_raw_atomics_and_honors_allows() {
        // One flagged site (a raw atomic handshake) and one allowed site
        // (the escape hatch), pinning the atomic arm of the scan.
        let root = tmp_root("atomics");
        std::fs::write(
            root.join("spin.rs"),
            "use std::sync::atomic::{AtomicBool, Ordering};\n\
             // use std::sync::atomic::fence; (comment: fine)\n\
             use std::sync::atomic::AtomicU64; // check-hygiene: allow — write-only counter\n",
        )
        .unwrap();
        let summary = scan(std::slice::from_ref(&root));
        assert_eq!(summary.scanned_files, 1);
        let patterns: Vec<&str> =
            summary.findings.iter().map(|f| f.pattern.as_str()).collect();
        assert_eq!(patterns, vec!["Atomic"], "{:?}", summary.findings);
        assert_eq!(summary.findings[0].line, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sync_facade_files_are_exempt(){
        let root = tmp_root("facade");
        std::fs::create_dir_all(root.join("sync")).unwrap();
        std::fs::write(root.join("sync/mod.rs"), "use std::sync::Condvar;\n").unwrap();
        std::fs::write(root.join("sync.rs"), "use std::sync::Mutex;\n").unwrap();
        std::fs::write(root.join("other.rs"), "fn ok() {}\n").unwrap();
        let summary = scan(std::slice::from_ref(&root));
        assert!(summary.findings.is_empty(), "{:?}", summary.findings);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn the_real_code_under_check_is_clean() {
        let summary = scan_default();
        assert!(summary.scanned_files > 10, "roots missing? {summary:?}");
        assert!(
            summary.findings.is_empty(),
            "facade bypass in code under check: {:?}",
            summary.findings
        );
    }
}
