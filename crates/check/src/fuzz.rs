//! Differential fuzzing: seeded random configurations through the
//! tri-oracle (Eq. 1 closed form vs discrete-event simulator vs functional
//! pipeline vs its sequential twin), with proptest-shim shrinking and a
//! committed regression corpus.
//!
//! Each [`FuzzCase`] pins a point in (model zoo × scheduler × stride ×
//! resident ratio × tensor shape × fault plan × step count) space and is
//! checked on two arms:
//!
//! * **perf** — `dos-oracle`'s [`evaluate_cell`]: the Equation 1
//!   prediction and the simulator must agree within the scheduler
//!   family's declared tolerance band;
//! * **numerics** — a seeded random optimizer state driven through the
//!   full [`dos_train::Trainer`] config-JSON surface (the case is rendered
//!   as a `"deep_optimizer_states"` document, parsed, resolved, and
//!   stepped through the pooled pipeline, including injected worker
//!   faults) must match the sequential `full_step` twin bitwise, momentum
//!   and variance included, plus the FP16 downscale of the final step.
//!   Routing through the JSON surface means entry-resolution bugs are
//!   fuzzable events, not just unit-test concerns.
//!
//! A failing case is shrunk with the proptest shim's
//! [`ShrinkValue`](proptest::strategy::ShrinkValue) halving walk — each
//! numeric field descends toward its floor while the failure holds — and
//! rendered as JSON ready to be committed under `tests/corpus/`.

use std::path::Path;

use proptest::strategy::ShrinkValue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dos_core::{DeviceFault, StridePolicy};
use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_oracle::perf::{evaluate_cell, SchedulerKind};
use dos_train::Trainer;

/// The model names fuzz cases draw from (Table 2 zoo + NVMe extension).
const MODELS: &[&str] = &["7B", "8.3B", "10B", "13B", "20B", "33B"];

/// One fuzz configuration; everything needed to reproduce both arms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Seed for the numerics arm's state/gradient sampling.
    pub seed: u64,
    /// Model-zoo name for the perf arm.
    pub model: String,
    /// `"zero3-offload"`, `"twinflow"`, or `"dos"`.
    pub scheduler: String,
    /// Update stride k (used by the `"dos"` scheduler and the pipeline).
    pub stride: usize,
    /// Static GPU-resident ratio for the perf arm.
    pub resident_ratio: f64,
    /// Flat parameter count of the numerics-arm state.
    pub params: usize,
    /// Subgroup size of the numerics-arm partition.
    pub subgroup: usize,
    /// Trailing static residents in the pipeline config.
    pub residents: usize,
    /// `"none"`, `"panic"`, or `"disconnect"`.
    pub fault_kind: String,
    /// Worker kill point (jobs fully processed before the fault fires).
    pub fault_after: usize,
    /// Optimizer steps the numerics arm runs.
    pub steps: usize,
}

impl FuzzCase {
    fn scheduler_kind(&self) -> Result<SchedulerKind, String> {
        match self.scheduler.as_str() {
            "zero3-offload" => Ok(SchedulerKind::Zero3Offload),
            "twinflow" => Ok(SchedulerKind::TwinFlow),
            "dos" => Ok(SchedulerKind::DeepOptimizerStates(StridePolicy::Fixed(
                self.stride.max(1),
            ))),
            other => Err(format!("unknown scheduler {other:?}")),
        }
    }

    fn fault(&self) -> Result<Option<DeviceFault>, String> {
        match self.fault_kind.as_str() {
            "none" => Ok(None),
            "panic" => Ok(Some(DeviceFault::PanicAfter(self.fault_after))),
            "disconnect" => Ok(Some(DeviceFault::DisconnectAfter(self.fault_after))),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }

    /// Renders the numerics arm as a Trainer configuration document — the
    /// same JSON shape a user would put in a config file (§4.4).
    pub fn trainer_json(&self) -> String {
        format!(
            r#"{{
  "params": {},
  "subgroup_size": {},
  "rule": "adam",
  "lr": 0.01,
  "static_residents": {},
  "deep_optimizer_states": {{ "enabled": true, "update_stride": {} }}
}}"#,
            self.params.max(1),
            self.subgroup.max(1),
            self.residents,
            self.stride.max(1)
        )
    }

    /// Compact one-line coordinate for reports.
    pub fn coordinates(&self) -> String {
        format!(
            "seed={} {}/{}/k={} ratio={:.2} p={} g={} r={} fault={}:{} steps={}",
            self.seed,
            self.model,
            self.scheduler,
            self.stride,
            self.resident_ratio,
            self.params,
            self.subgroup,
            self.residents,
            self.fault_kind,
            self.fault_after,
            self.steps
        )
    }
}

/// Samples one case from the fuzz distribution.
pub fn sample_case(rng: &mut StdRng) -> FuzzCase {
    let model = MODELS.choose(rng).copied().unwrap_or("7B").to_string();
    let scheduler =
        ["zero3-offload", "twinflow", "dos"].choose(rng).copied().unwrap_or("dos").to_string();
    let fault_kind = ["none", "none", "panic", "disconnect"]
        .choose(rng)
        .copied()
        .unwrap_or("none")
        .to_string();
    FuzzCase {
        seed: rng.gen::<u64>(),
        model,
        scheduler,
        stride: rng.gen_range(1..=4usize),
        resident_ratio: *[0.0, 0.1, 0.25, 0.5].choose(rng).unwrap_or(&0.0),
        params: rng.gen_range(16..=160usize),
        subgroup: rng.gen_range(5..=48usize),
        residents: rng.gen_range(0..=2usize),
        fault_kind,
        fault_after: rng.gen_range(0..=4usize),
        steps: rng.gen_range(1..=2usize),
    }
}

fn bitwise_mismatch(name: &str, step: usize, got: &[f32], want: &[f32]) -> Option<String> {
    got.iter().zip(want).position(|(a, b)| a.to_bits() != b.to_bits()).map(|i| {
        format!(
            "step {step}: {name}[{i}] got {:?} (0x{:08x}), want {:?} (0x{:08x})",
            got[i],
            got[i].to_bits(),
            want[i],
            want[i].to_bits()
        )
    })
}

/// Runs both oracle arms; `Some` describes the first divergence.
pub fn run_case(case: &FuzzCase) -> Option<String> {
    // --- Perf arm: Eq. 1 vs simulator --------------------------------
    let kind = match case.scheduler_kind() {
        Ok(k) => k,
        Err(e) => return Some(e),
    };
    if ModelSpec::by_name(&case.model).is_none() {
        return Some(format!("unknown model {:?}", case.model));
    }
    let cell = evaluate_cell(&case.model, &HardwareProfile::jlse_h100(), kind, case.resident_ratio);
    if !cell.conformant() {
        return Some(format!(
            "perf arm: {} ratio {:.4} outside [{:.2}, {:.2}]",
            cell.coordinates(),
            cell.ratio(),
            cell.band.lo,
            cell.band.hi
        ));
    }

    // --- Numerics arm: JSON-configured Trainer vs sequential twin -----
    let fault = match case.fault() {
        Ok(f) => f,
        Err(e) => return Some(e),
    };
    let n = case.params.max(1);
    let mut rng = StdRng::seed_from_u64(case.seed);
    let init: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut seq = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
    let mut trainer = match Trainer::from_json(&case.trainer_json(), init) {
        Ok(t) => t,
        Err(e) => return Some(format!("numerics arm: trainer config rejected: {e}")),
    };
    trainer.inject_fault(fault);
    let mut last_fp16 = Vec::new();
    for step in 0..case.steps.max(1) {
        let grads: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        seq.full_step(&grads);
        match trainer.step(&grads) {
            Ok(report) => last_fp16 = report.fp16_params,
            Err(e) => return Some(format!("step {step}: pipeline precondition failure: {e}")),
        }
        if let Some(d) = bitwise_mismatch("params", step, trainer.params(), seq.params())
            .or_else(|| bitwise_mismatch("momentum", step, trainer.momentum(), seq.momentum()))
            .or_else(|| bitwise_mismatch("variance", step, trainer.variance(), seq.variance()))
        {
            return Some(format!("numerics arm: {d}"));
        }
    }
    let want_fp16 = seq.downscale_range(0..n);
    if last_fp16 != want_fp16 {
        return Some("numerics arm: final fp16 downscale diverged".to_string());
    }
    None
}

/// Shrinks a failing case with the proptest shim's halving walk: each
/// numeric field descends toward its floor (and the categorical fields
/// toward their simplest values) while the case keeps failing. Returns the
/// minimized case and the trial count.
pub fn shrink_case<F>(case: &FuzzCase, mut still_fails: F, max_trials: usize) -> (FuzzCase, usize)
where
    F: FnMut(&FuzzCase) -> bool,
{
    let mut cur = case.clone();
    let mut trials = 0usize;
    let mut improved = true;
    while improved && trials < max_trials {
        improved = false;

        // Numeric fields: (accessor, floor) pairs driven by ShrinkValue.
        type Get = fn(&FuzzCase) -> usize;
        type Set = fn(&mut FuzzCase, usize);
        let fields: Vec<(Get, Set, usize)> = vec![
            (|c| c.params, |c, v| c.params = v, 4),
            (|c| c.subgroup, |c, v| c.subgroup = v, 1),
            (|c| c.steps, |c, v| c.steps = v, 1),
            (|c| c.fault_after, |c, v| c.fault_after = v, 0),
            (|c| c.residents, |c, v| c.residents = v, 0),
            (|c| c.stride, |c, v| c.stride = v, 1),
        ];
        for (get, set, floor) in fields {
            for candidate in get(&cur).shrink_toward(&floor) {
                if trials >= max_trials {
                    return (cur, trials);
                }
                let mut next = cur.clone();
                set(&mut next, candidate);
                trials += 1;
                if still_fails(&next) {
                    cur = next;
                    improved = true;
                    break;
                }
            }
        }
        for candidate in cur.resident_ratio.shrink_toward(&0.0) {
            if trials >= max_trials {
                return (cur, trials);
            }
            let mut next = cur.clone();
            next.resident_ratio = candidate;
            trials += 1;
            if still_fails(&next) {
                cur = next;
                improved = true;
                break;
            }
        }
        // Categorical fields: single jump to the simplest value.
        for simplify in [
            |c: &mut FuzzCase| c.model = "7B".to_string(),
            |c: &mut FuzzCase| c.fault_kind = "none".to_string(),
            |c: &mut FuzzCase| c.scheduler = "zero3-offload".to_string(),
        ] {
            let mut next = cur.clone();
            simplify(&mut next);
            if next != cur && trials < max_trials {
                trials += 1;
                if still_fails(&next) {
                    cur = next;
                    improved = true;
                }
            }
        }
    }
    (cur, trials)
}

/// A corpus entry: the file stem it was loaded from plus the case.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem (e.g. `0001-disconnect-k3`).
    pub name: String,
    /// The pinned case.
    pub case: FuzzCase,
}

/// Loads every `*.json` fuzz case under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns a description of the first unreadable or unparsable file —
/// corpus corruption must fail the check run, not skip cases silently.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut entries: Vec<(String, std::path::PathBuf)> = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| format!("corpus dir {}: {e}", dir.display()))?;
    for item in rd {
        let item = item.map_err(|e| format!("corpus dir {}: {e}", dir.display()))?;
        let path = item.path();
        if path.extension().is_some_and(|x| x == "json") {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            entries.push((stem, path));
        }
    }
    entries.sort();
    let mut out = Vec::with_capacity(entries.len());
    for (name, path) in entries {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case: FuzzCase =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e:?}", path.display()))?;
        out.push(CorpusEntry { name, case });
    }
    Ok(out)
}

/// Renders a case as pretty JSON, ready to commit under `tests/corpus/`.
pub fn render_case(case: &FuzzCase) -> String {
    serde_json::to_string_pretty(case).unwrap_or_else(|e| format!("<unrenderable case: {e:?}>"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_case() -> FuzzCase {
        FuzzCase {
            seed: 7,
            model: "7B".to_string(),
            scheduler: "dos".to_string(),
            stride: 2,
            resident_ratio: 0.1,
            params: 48,
            subgroup: 8,
            residents: 1,
            fault_kind: "disconnect".to_string(),
            fault_after: 1,
            steps: 2,
        }
    }

    #[test]
    fn case_round_trips_through_json() {
        let case = base_case();
        let text = render_case(&case);
        let back: FuzzCase = serde_json::from_str(&text).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn healthy_sampled_cases_pass_both_arms() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..6 {
            let case = sample_case(&mut rng);
            assert_eq!(run_case(&case), None, "case failed: {}", case.coordinates());
        }
    }

    #[test]
    fn numerics_arm_case_renders_as_a_valid_config_document() {
        let case = base_case();
        let cfg = dos_train::TrainerConfig::from_json(&case.trainer_json()).unwrap();
        assert_eq!(cfg.params, 48);
        assert_eq!(cfg.static_residents, 1);
        assert_eq!(cfg.pipeline().stride, StridePolicy::Fixed(2));
    }

    #[test]
    fn corrupted_scheduler_is_reported_not_skipped() {
        let mut case = base_case();
        case.scheduler = "does-not-exist".to_string();
        assert!(run_case(&case).is_some());
    }

    #[test]
    fn shrinker_descends_to_the_smallest_failing_shape() {
        // Synthetic failure predicate: fails whenever params >= 20 and
        // steps >= 2 — the shrinker should land exactly on the boundary.
        let case = base_case(); // params 48, steps 2
        let fails = |c: &FuzzCase| c.params >= 20 && c.steps >= 2;
        assert!(fails(&case));
        let (small, _) = shrink_case(&case, fails, 500);
        assert_eq!(small.params, 20);
        assert_eq!(small.steps, 2);
        assert_eq!(small.fault_kind, "none");
    }
}
