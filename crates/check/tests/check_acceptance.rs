//! Acceptance tests for the checker itself.
//!
//! * The full check run explores ≥ 1,000 distinct schedules of
//!   `hybrid_update` — including both `PanicAfter` and `DisconnectAfter`
//!   recovery paths — with bitwise parity at every terminal state.
//! * The deliberately seeded lost-send ordering bug is caught by
//!   exploration, greedily shrunk, and reproduced from its schedule token.

use std::collections::HashSet;

use dos_check::explore::ExploreConfig;
use dos_check::scenarios::{CheckScenario, FaultPlan};
use dos_check::token::ScheduleToken;
use dos_check::{check_scenario, replay_token, run_check, CheckOptions, DEFAULT_MAX_STEPS};

#[test]
fn full_check_run_clears_a_thousand_distinct_schedules() {
    let opts = CheckOptions {
        schedules: 1_000,
        fuzz: 8,
        seed: 7,
        corpus_dir: None,
        scenario_filter: None,
    };
    let report = run_check(&opts).unwrap();
    assert!(report.passed, "check failed:\n{}", report.render_human());
    assert!(
        report.distinct_total >= 1_000,
        "only {} distinct schedules explored",
        report.distinct_total
    );

    // Both fault-recovery paths contributed schedules of their own.
    let suite = CheckScenario::default_suite();
    let fault_covered = |pred: fn(FaultPlan) -> bool| {
        report
            .scenarios
            .iter()
            .zip(&suite)
            .filter(|(_, sc)| pred(sc.fault))
            .map(|(r, _)| r.completed)
            .sum::<usize>()
    };
    assert!(fault_covered(|f| matches!(f, FaultPlan::Panic(_))) > 0, "no PanicAfter coverage");
    assert!(
        fault_covered(|f| matches!(f, FaultPlan::Disconnect(_))) > 0,
        "no DisconnectAfter coverage"
    );
    assert!(report.fuzz.failures.is_empty(), "fuzz arm diverged");
}

#[test]
fn seeded_ordering_bug_is_caught_shrunk_and_replayed_by_token() {
    let sc = CheckScenario::seeded_bug();
    let cfg = ExploreConfig {
        dfs_budget: 2_000,
        random_walks: 200,
        seed: 1,
        max_steps: DEFAULT_MAX_STEPS,
    };
    let mut seen = HashSet::new();
    let report = check_scenario(&sc, &cfg, 0xb06, &mut seen);
    let failure = report.failure.expect("exploration missed the seeded lost-send bug");
    assert!(
        failure.message.contains("divergence"),
        "expected a divergence, got: {}",
        failure.message
    );

    // The shrunk schedule is strictly shorter than trivial noise and still
    // reproduces via its token alone.
    let shrunk = ScheduleToken::parse(&failure.shrunk_token).unwrap();
    let found = ScheduleToken::parse(&failure.token).unwrap();
    assert!(shrunk.schedule.len() <= found.schedule.len());
    let reproduced = replay_token(&failure.shrunk_token)
        .expect("shrunk token failed to parse")
        .expect("shrunk token did not reproduce the failure");
    assert!(reproduced.contains("divergence"), "unexpected reproduction: {reproduced}");

    // And the original (unshrunk) token reproduces too.
    assert!(replay_token(&failure.token).unwrap().is_some());
}

#[test]
fn rendezvous_scenarios_clear_five_hundred_distinct_schedules() {
    // The blocking-mode collective rendezvous (barrier + all-reduce
    // rounds + gather over the in-process mesh, healthy and with a
    // mid-run rank disconnect) must clear 500+ distinct schedules with no
    // deadlock and bitwise parity at every terminal state. A hang here
    // would surface as a detected deadlock, not a stuck test.
    let suite = CheckScenario::rendezvous_suite();
    let mut seen = HashSet::new();
    let mut round = 0usize;
    while seen.len() < 500 && round < 40 {
        for (i, sc) in suite.iter().enumerate() {
            let cfg = ExploreConfig {
                dfs_budget: if round == 0 { 64 } else { 0 },
                random_walks: 64,
                seed: xr_dv_seed(round, i),
                max_steps: DEFAULT_MAX_STEPS,
            };
            let report = check_scenario(sc, &cfg, i as u64, &mut seen);
            assert!(
                report.failure.is_none(),
                "{} failed: {:?}",
                sc.encode(),
                report.failure
            );
        }
        round += 1;
    }
    assert!(seen.len() >= 500, "only {} distinct rendezvous schedules", seen.len());
}

fn xr_dv_seed(round: usize, i: usize) -> u64 {
    (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64)
}

#[test]
fn coordinator_scenarios_clear_two_hundred_distinct_schedules() {
    // The multi-tenant serve coordinator (two submitter threads racing
    // into the intake channel, one-GPU cluster, preemption between
    // slices) must clear 200+ distinct schedules with no lost job, no
    // double-granted lease, and bitwise-identical per-tenant numerics at
    // every terminal state.
    let suite = CheckScenario::coordinator_suite();
    let mut seen = HashSet::new();
    let mut round = 0usize;
    while seen.len() < 200 && round < 40 {
        for (i, sc) in suite.iter().enumerate() {
            let cfg = ExploreConfig {
                dfs_budget: if round == 0 { 48 } else { 0 },
                random_walks: 48,
                seed: xr_dv_seed(round, i).wrapping_add(0xc0),
                max_steps: DEFAULT_MAX_STEPS,
            };
            let report = check_scenario(sc, &cfg, 100 + i as u64, &mut seen);
            assert!(
                report.failure.is_none(),
                "{} failed: {:?}",
                sc.encode(),
                report.failure
            );
        }
        round += 1;
    }
    assert!(seen.len() >= 200, "only {} distinct coordinator schedules", seen.len());
}

#[test]
fn zenflow_scenarios_clear_a_thousand_distinct_schedules() {
    // The ZenFlow cross-iteration bodies (hot synchronous updates racing
    // detached cold-flush workers across step boundaries, harvested at
    // `poll_pending` yield points) must clear 1,000+ distinct schedules
    // with the staleness bound held and bitwise parity against the
    // sequential bounded-staleness oracle at every terminal state. Runs
    // through `run_check` with the scenario prefix filter, which is
    // exactly what the CI smoke invokes via `dos-cli check --scenario zf`.
    let opts = CheckOptions {
        schedules: 1_000,
        fuzz: 0,
        seed: 11,
        corpus_dir: None,
        scenario_filter: Some("zf".to_string()),
    };
    let report = run_check(&opts).unwrap();
    assert!(report.passed, "zenflow check failed:\n{}", report.render_human());
    assert!(
        report.distinct_total >= 1_000,
        "only {} distinct zenflow schedules explored",
        report.distinct_total
    );
    assert_eq!(report.scenarios.len(), CheckScenario::zenflow_suite().len());
    assert!(report.scenarios.iter().all(|s| s.scenario.starts_with("zf-")));
}

#[test]
fn scenario_filter_rejects_a_prefix_matching_nothing() {
    let opts = CheckOptions {
        schedules: 16,
        fuzz: 0,
        seed: 0,
        corpus_dir: None,
        scenario_filter: Some("nope".to_string()),
    };
    assert!(run_check(&opts).is_err());
}

#[test]
fn replay_token_rejects_garbage() {
    assert!(replay_token("not-a-token").is_err());
    assert!(replay_token("dc1:pl-p48-g8-k2-r0:00").is_err()); // 5-field scenario
    assert!(replay_token("dc1:zz-p48-g8-k2-r0-fn:00").is_err()); // unknown kind
}

#[test]
fn healthy_token_replays_clean() {
    let sc = CheckScenario::default_suite()[0];
    let token = ScheduleToken::new(&sc.encode(), &[]).render();
    assert_eq!(replay_token(&token).unwrap(), None);
}
