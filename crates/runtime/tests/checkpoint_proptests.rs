//! Property tests of the checkpoint container: any captured state
//! round-trips bitwise, and any truncation or single-bit corruption is a
//! *typed* error — never silently wrong training state.

use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_runtime::{CheckpointError, TrainingCheckpoint};
use proptest::prelude::*;

fn checkpoint_for(n: usize, seed: u32, steps: usize, iteration: usize) -> TrainingCheckpoint {
    let init: Vec<f32> = (0..n)
        .map(|i| ((i as u32).wrapping_mul(seed).wrapping_add(7) % 1000) as f32 / 1000.0 - 0.5)
        .collect();
    let mut optimizer = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
    for s in 0..steps {
        let grads: Vec<f32> = (0..n).map(|i| ((i + s) as f32 * 0.37).sin() * 0.1).collect();
        optimizer.full_step(&grads);
    }
    TrainingCheckpoint { params: optimizer.params().to_vec(), optimizer, iteration }
}

/// Every corruption must surface as one of the container's typed errors.
fn is_typed_corruption(err: &CheckpointError) -> bool {
    matches!(
        err,
        CheckpointError::BadMagic { .. }
            | CheckpointError::UnsupportedVersion { .. }
            | CheckpointError::Truncated { .. }
            | CheckpointError::ChecksumMismatch { .. }
            | CheckpointError::Corrupt { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_capture_round_trips_bitwise(
        n in 1usize..200,
        seed in any::<u32>(),
        steps in 0usize..4,
        iteration in 0usize..100_000,
    ) {
        let ckpt = checkpoint_for(n, seed, steps, iteration);
        let bytes = ckpt.to_bytes().unwrap();
        let back = TrainingCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.params, &ckpt.params);
        prop_assert_eq!(back.iteration, ckpt.iteration);
        prop_assert_eq!(back.optimizer.params(), ckpt.optimizer.params());
        prop_assert_eq!(back.optimizer.momentum(), ckpt.optimizer.momentum());
        prop_assert_eq!(back.optimizer.variance(), ckpt.optimizer.variance());
    }

    /// A crash can tear the file at *any* byte: every prefix must be
    /// rejected with a typed error, never parsed into partial state.
    #[test]
    fn any_truncation_is_a_typed_error(
        n in 1usize..120,
        seed in any::<u32>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let ckpt = checkpoint_for(n, seed, 1, 17);
        let bytes = ckpt.to_bytes().unwrap();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        match TrainingCheckpoint::from_bytes(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "truncation at {cut}/{} parsed", bytes.len()),
            Err(e) => prop_assert!(is_typed_corruption(&e), "untyped error: {e}"),
        }
    }

    /// A single flipped bit anywhere — header or payload — must be caught
    /// by the magic/version/length checks or the checksum.
    #[test]
    fn any_single_bit_flip_is_detected(
        n in 1usize..120,
        seed in any::<u32>(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let ckpt = checkpoint_for(n, seed, 1, 23);
        let mut bytes = ckpt.to_bytes().unwrap();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        match TrainingCheckpoint::from_bytes(&bytes) {
            Ok(_) => prop_assert!(false, "bit {bit} of byte {pos} flipped undetected"),
            Err(e) => prop_assert!(is_typed_corruption(&e), "untyped error: {e}"),
        }
    }
}
