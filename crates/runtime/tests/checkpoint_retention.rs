//! Kill-and-resume matrix over checkpoint retention.
//!
//! For every retention depth N ∈ {1, 2, 5}, simulate a training run that
//! saved more checkpoints than the store retains, then crash it with:
//!
//! * **torn newest** — the most recent checkpoint is truncated mid-write:
//!   recovery must fall back to the newest *valid* checkpoint and restore
//!   it bitwise (impossible at N = 1, where the tear must be a typed
//!   error);
//! * **torn all** — every retained checkpoint is damaged: recovery must
//!   fail with the typed [`CheckpointError::NoValidCheckpoint`], counting
//!   each rejected candidate — never a silent fallback to garbage state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_runtime::{CheckpointError, CheckpointStore, TrainingCheckpoint};

static DIRS: AtomicUsize = AtomicUsize::new(0);

fn fresh_store(keep: usize) -> (CheckpointStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "dos-ckpt-retention-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let store = CheckpointStore::open(&dir, keep).unwrap();
    (store, dir)
}

fn checkpoint_for(iteration: usize) -> TrainingCheckpoint {
    let n = 32;
    let init: Vec<f32> = (0..n).map(|i| ((i * 11 + 2) % 27) as f32 / 27.0).collect();
    let mut optimizer = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
    let grads: Vec<f32> = (0..n).map(|i| ((i * 3 + 4) % 17) as f32 / 17.0 - 0.5).collect();
    for _ in 0..iteration {
        optimizer.full_step(&grads);
    }
    TrainingCheckpoint { params: optimizer.params().to_vec(), optimizer, iteration }
}

/// Tears a checkpoint file the way a crash mid-write would: keeps only a
/// prefix of its bytes.
fn tear(path: &Path) {
    let bytes = std::fs::read(path).unwrap();
    assert!(bytes.len() > 8, "checkpoint unexpectedly tiny");
    std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
}

fn assert_restores_bitwise(got: &TrainingCheckpoint, want_iteration: usize) {
    let want = checkpoint_for(want_iteration);
    assert_eq!(got.iteration, want_iteration);
    let pairs = [
        (got.optimizer.params(), want.optimizer.params(), "params"),
        (got.optimizer.momentum(), want.optimizer.momentum(), "momentum"),
        (got.optimizer.variance(), want.optimizer.variance(), "variance"),
    ];
    for (g, w, name) in pairs {
        assert_eq!(g.len(), w.len());
        for (i, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}[{i}] not bitwise after resume");
        }
    }
}

const SAVES: usize = 6;

#[test]
fn retention_prunes_to_exactly_n() {
    for keep in [1usize, 2, 5] {
        let (store, dir) = fresh_store(keep);
        for it in 1..=SAVES {
            store.save(&checkpoint_for(it)).unwrap();
        }
        let files = store.list();
        assert_eq!(files.len(), keep, "keep={keep}: retained {files:?}");
        // The retained files are the *newest* N.
        let (restored, _) = store.latest_valid().unwrap();
        assert_restores_bitwise(&restored, SAVES);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_newest_falls_back_one_or_errors_at_depth_one() {
    for keep in [1usize, 2, 5] {
        let (store, dir) = fresh_store(keep);
        for it in 1..=SAVES {
            store.save(&checkpoint_for(it)).unwrap();
        }
        let files = store.list();
        tear(files.last().unwrap());
        match store.latest_valid() {
            Ok((restored, path)) => {
                assert!(keep > 1, "keep=1 must not recover from a torn-only store");
                // Fallback lands on the second-newest, bitwise.
                assert_eq!(path, files[files.len() - 2]);
                assert_restores_bitwise(&restored, SAVES - 1);
            }
            Err(CheckpointError::NoValidCheckpoint { rejected, .. }) => {
                assert_eq!(keep, 1, "keep={keep} had valid fallbacks but errored");
                assert_eq!(rejected, 1);
            }
            Err(other) => panic!("keep={keep}: unexpected error {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_all_is_a_typed_error_never_garbage() {
    for keep in [1usize, 2, 5] {
        let (store, dir) = fresh_store(keep);
        for it in 1..=SAVES {
            store.save(&checkpoint_for(it)).unwrap();
        }
        for file in store.list() {
            tear(&file);
        }
        match store.latest_valid() {
            Err(CheckpointError::NoValidCheckpoint { rejected, dir: reported }) => {
                assert_eq!(rejected, keep, "every retained candidate must be counted");
                assert_eq!(reported, dir);
            }
            Ok((ckpt, path)) => panic!(
                "keep={keep}: torn store silently produced iteration {} from {}",
                ckpt.iteration,
                path.display()
            ),
            Err(other) => panic!("keep={keep}: wrong error type {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_and_resume_continues_training_identically() {
    // Full kill-and-resume: crash after SAVES iterations with a torn
    // newest, resume from the fallback, re-run the lost iteration, and
    // land bitwise where an uninterrupted run lands.
    let (store, dir) = fresh_store(2);
    for it in 1..=SAVES {
        store.save(&checkpoint_for(it)).unwrap();
    }
    tear(store.list().last().unwrap());
    let (restored, _) = store.latest_valid().unwrap();
    assert_eq!(restored.iteration, SAVES - 1);

    let mut resumed = restored.optimizer;
    let n = resumed.len();
    let grads: Vec<f32> = (0..n).map(|i| ((i * 3 + 4) % 17) as f32 / 17.0 - 0.5).collect();
    resumed.full_step(&grads);
    let uninterrupted = checkpoint_for(SAVES);
    for (i, (a, b)) in resumed.params().iter().zip(uninterrupted.optimizer.params()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "resumed params[{i}] diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
