//! Schedule exploration of the async checkpoint write/rotate path.
//!
//! [`AsyncCheckpointer`] runs on `dos-core`'s sync facade, so a checked
//! run virtualizes its background writer: every interleaving of
//! train-thread progress (request → poll → drain) against the writer's
//! completion is explored, and at every terminal schedule the store must
//! hold exactly the retained files and `latest_valid` must restore the
//! newest checkpoint bitwise.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dos_check::explore::{explore, ExploreConfig};
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_runtime::{AsyncCheckpointer, CheckpointStore, TrainingCheckpoint};

fn checkpoint_for(n: usize, iteration: usize) -> TrainingCheckpoint {
    let init: Vec<f32> = (0..n).map(|i| ((i * 17 + 3) % 23) as f32 / 23.0).collect();
    let mut optimizer = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
    let grads: Vec<f32> = (0..n).map(|i| ((i * 5 + 1) % 19) as f32 / 19.0 - 0.5).collect();
    for _ in 0..iteration {
        optimizer.full_step(&grads);
    }
    TrainingCheckpoint { params: optimizer.params().to_vec(), optimizer, iteration }
}

fn fresh_dir(tag: &str, counter: &AtomicUsize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dos-ckpt-sched-{tag}-{}-{}",
        std::process::id(),
        counter.fetch_add(1, Ordering::Relaxed)
    ))
}

/// What one write/rotate run must pin at its terminal state.
#[derive(Debug)]
struct Terminal {
    files: usize,
    restored_iteration: usize,
    restored_params: Vec<f32>,
}

#[test]
fn write_rotate_path_matches_oracle_under_every_schedule() {
    let counter = AtomicUsize::new(0);
    let want = checkpoint_for(24, 2);

    let body = || {
        let dir = fresh_dir("rotate", &counter);
        let store = CheckpointStore::open(&dir, 1).unwrap();
        let mut writer = AsyncCheckpointer::new();
        // Two overlapping async saves: the second request must drain the
        // first (at most one write in flight), then rotation keeps only
        // the newest.
        writer.save_async_in(checkpoint_for(24, 1), &store).unwrap();
        writer.save_async_in(checkpoint_for(24, 2), &store).unwrap();
        // Observing completion is itself a scheduling decision.
        let _ = writer.is_writing();
        writer.drain().unwrap();
        let files = store.list().len();
        let (restored, _) = store.latest_valid().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        Terminal {
            files,
            restored_iteration: restored.iteration,
            restored_params: restored.optimizer.params().to_vec(),
        }
    };
    let verify = |t: &Terminal| {
        if t.files != 1 {
            return Some(format!("retention kept {} files, want 1", t.files));
        }
        if t.restored_iteration != 2 {
            return Some(format!("restored iteration {}, want 2", t.restored_iteration));
        }
        let got = &t.restored_params;
        let expect = want.optimizer.params();
        got.iter().zip(expect).position(|(a, b)| a.to_bits() != b.to_bits()).map(|i| {
            format!("restored params[{i}]: got {:?}, want {:?}", got[i], expect[i])
        })
    };

    let cfg = ExploreConfig { dfs_budget: 128, random_walks: 32, seed: 3, max_steps: 20_000 };
    let mut seen = HashSet::new();
    let ex = explore(&cfg, 0xc47, body, verify, &mut seen);
    assert!(ex.failure.is_none(), "write/rotate diverged: {:?}", ex.failure);
    assert!(ex.stats.completed > 0, "no terminal schedules explored");
    assert!(
        ex.stats.distinct > 1,
        "expected multiple distinct writer/trainer interleavings, got {}",
        ex.stats.distinct
    );
    assert!(ex.stats.exhausted, "schedule space unexpectedly large for this body");
}

#[test]
fn plain_save_async_interleavings_all_land_the_file() {
    let counter = AtomicUsize::new(0);
    let body = || {
        let dir = fresh_dir("plain", &counter);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solo.dos");
        let mut writer = AsyncCheckpointer::new();
        writer.save_async(checkpoint_for(16, 1), &path).unwrap();
        let done = writer.is_writing();
        writer.drain().unwrap();
        let loaded = TrainingCheckpoint::load(&path).map(|c| c.iteration);
        let _ = std::fs::remove_dir_all(&dir);
        (done, loaded)
    };
    let verify = |(_, loaded): &(bool, Result<usize, _>)| match loaded {
        Ok(1) => None,
        other => Some(format!("reload after drain: {other:?}")),
    };

    let cfg = ExploreConfig { dfs_budget: 64, random_walks: 16, seed: 5, max_steps: 20_000 };
    let mut seen = HashSet::new();
    let ex = explore(&cfg, 0x50f0, body, verify, &mut seen);
    assert!(ex.failure.is_none(), "solo async save diverged: {:?}", ex.failure);
    assert!(ex.stats.exhausted && ex.stats.completed > 0);
}
