//! JSON runtime configuration.
//!
//! The paper ships Deep Optimizer States as a middleware "that can be
//! enabled and configured through a single JSON entry in the configuration
//! file given to the training runtime" (§4.4). This module mirrors that
//! surface: a DeepSpeed-style JSON document with a
//! `"deep_optimizer_states"` entry.

use serde::{Deserialize, Serialize};

use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;
use dos_sim::{GradientPath, TrainConfig};
use dos_zero::{OffloadConfig, ZeroStage};

/// Errors raised while parsing or resolving a runtime configuration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The JSON failed to parse.
    Parse(serde_json::Error),
    /// A referenced name could not be resolved.
    Unknown {
        /// What kind of name (`"model"`, `"profile"`, ...).
        kind: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// A field value is out of range.
    Invalid {
        /// Description of the invalid value.
        detail: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "invalid config JSON: {e}"),
            ConfigError::Unknown { kind, name } => write!(f, "unknown {kind}: `{name}`"),
            ConfigError::Invalid { detail } => write!(f, "invalid config value: {detail}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for ConfigError {
    fn from(e: serde_json::Error) -> Self {
        ConfigError::Parse(e)
    }
}

// The `"deep_optimizer_states"` entry itself is owned by `dos-train` (the
// functional Trainer's JSON surface shares it); re-exported here so the
// simulator-facing document keeps its historical import paths.
pub use dos_train::{CollectivesEntry, DosEntry, NamedStride, StrideEntry};

/// The whole runtime configuration document.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RuntimeConfig {
    /// Table 2 model name (`"7B"`, ..., `"20B"`).
    pub model: String,
    /// Hardware profile name (`"jlse-4xH100"`, `"4xV100-32GB"`, ...), or
    /// omitted for the H100 default.
    #[serde(default)]
    pub profile: Option<String>,
    /// ZeRO stage (1, 2, or 3; the paper evaluates 3).
    #[serde(default = "default_stage")]
    pub zero_stage: u8,
    /// Data-parallel degree (defaults to the profile's GPU count).
    #[serde(default)]
    pub data_parallel: Option<usize>,
    /// Micro-batch size per GPU.
    #[serde(default = "default_one")]
    pub micro_batch: usize,
    /// Gradient accumulation steps.
    #[serde(default = "default_one")]
    pub grad_accumulation: usize,
    /// Subgroup size in parameters (DeepSpeed's
    /// `sub_group_size`; paper default 100 M).
    #[serde(default = "default_subgroup")]
    pub subgroup_size: usize,
    /// TwinFlow-style static GPU residency ratio in `[0, 1]`.
    #[serde(default)]
    pub gpu_resident_ratio: f64,
    /// Offload the FP32 optimizer state to NVMe instead of host DRAM
    /// (ZeRO-Infinity tier; §6 future work).
    #[serde(default)]
    pub nvme_offload: bool,
    /// Activation checkpointing (paper default: on).
    #[serde(default = "default_true")]
    pub activation_checkpointing: bool,
    /// The middleware entry.
    #[serde(default)]
    pub deep_optimizer_states: DosEntry,
}

fn default_stage() -> u8 {
    3
}
fn default_one() -> usize {
    1
}
fn default_subgroup() -> usize {
    100_000_000
}
fn default_true() -> bool {
    true
}

impl RuntimeConfig {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] on malformed JSON.
    ///
    /// # Examples
    ///
    /// ```
    /// use dos_runtime::RuntimeConfig;
    /// let cfg = RuntimeConfig::from_json(r#"{
    ///     "model": "20B",
    ///     "deep_optimizer_states": { "enabled": true, "update_stride": "auto" }
    /// }"#)?;
    /// assert_eq!(cfg.model, "20B");
    /// # Ok::<(), dos_runtime::ConfigError>(())
    /// ```
    pub fn from_json(json: &str) -> Result<RuntimeConfig, ConfigError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes back to pretty JSON.
    pub fn to_json(&self) -> String {
        // The in-tree serializer is infallible for derived config types.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Resolves into a simulator [`TrainConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Unknown`] for unrecognized model/profile
    /// names and [`ConfigError::Invalid`] for out-of-range fields.
    pub fn resolve(&self) -> Result<TrainConfig, ConfigError> {
        let spec = ModelSpec::by_name(&self.model)
            .ok_or(ConfigError::Unknown { kind: "model", name: self.model.clone() })?;
        let profile = match &self.profile {
            None => HardwareProfile::jlse_h100(),
            Some(name) => HardwareProfile::presets()
                .into_iter()
                .find(|p| &p.name == name)
                .ok_or(ConfigError::Unknown { kind: "profile", name: name.clone() })?,
        };
        let stage = match self.zero_stage {
            1 => ZeroStage::One,
            2 => ZeroStage::Two,
            3 => ZeroStage::Three,
            other => {
                return Err(ConfigError::Invalid { detail: format!("zero_stage {other}") })
            }
        };
        if !(0.0..=1.0).contains(&self.gpu_resident_ratio) {
            return Err(ConfigError::Invalid {
                detail: format!("gpu_resident_ratio {}", self.gpu_resident_ratio),
            });
        }
        if self.micro_batch == 0 || self.subgroup_size == 0 || self.grad_accumulation == 0 {
            return Err(ConfigError::Invalid {
                detail: "micro_batch, subgroup_size, grad_accumulation must be positive".into(),
            });
        }
        let dos = &self.deep_optimizer_states;
        Ok(TrainConfig {
            spec,
            world: self.data_parallel.unwrap_or(profile.num_gpus),
            stage,
            micro_batch: self.micro_batch,
            grad_accumulation: self.grad_accumulation,
            offload: OffloadConfig {
                gpu_resident_ratio: self.gpu_resident_ratio,
                activation_checkpointing: self.activation_checkpointing,
                subgroup_params: self.subgroup_size,
                optimizer_on_nvme: self.nvme_offload,
            },
            gradient_path: if dos.enabled && dos.fp32_gradient_path {
                GradientPath::Fp32OnGpu
            } else {
                GradientPath::LegacyFp16Flush
            },
            overlap_backward: dos.enabled && dos.overlap_backward,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_core::StridePolicy;

    #[test]
    fn minimal_config_uses_paper_defaults() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "20B" }"#).unwrap();
        assert_eq!(cfg.zero_stage, 3);
        assert_eq!(cfg.micro_batch, 1);
        assert_eq!(cfg.subgroup_size, 100_000_000);
        assert!(cfg.activation_checkpointing);
        assert!(cfg.deep_optimizer_states.enabled);
        let train = cfg.resolve().unwrap();
        assert_eq!(train.world, 4);
        assert_eq!(train.gradient_path, GradientPath::Fp32OnGpu);
    }

    #[test]
    fn stride_entry_forms() {
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "7B", "deep_optimizer_states": { "update_stride": 3 } }"#,
        )
        .unwrap();
        assert_eq!(cfg.deep_optimizer_states.update_stride.to_policy(), StridePolicy::Fixed(3));
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "7B", "deep_optimizer_states": { "update_stride": "cpu_only" } }"#,
        )
        .unwrap();
        assert_eq!(cfg.deep_optimizer_states.update_stride.to_policy(), StridePolicy::CpuOnly);
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "7B", "deep_optimizer_states": { "update_stride": "adaptive" } }"#,
        )
        .unwrap();
        assert_eq!(cfg.deep_optimizer_states.update_stride.to_policy(), StridePolicy::Adaptive);
    }

    #[test]
    fn disabling_the_middleware_restores_baseline_paths() {
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "13B", "deep_optimizer_states": { "enabled": false } }"#,
        )
        .unwrap();
        let train = cfg.resolve().unwrap();
        assert_eq!(train.gradient_path, GradientPath::LegacyFp16Flush);
        assert!(!train.overlap_backward);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "99B" }"#).unwrap();
        assert!(matches!(cfg.resolve(), Err(ConfigError::Unknown { kind: "model", .. })));
        let cfg =
            RuntimeConfig::from_json(r#"{ "model": "7B", "profile": "nonexistent" }"#).unwrap();
        assert!(matches!(cfg.resolve(), Err(ConfigError::Unknown { kind: "profile", .. })));
    }

    #[test]
    fn invalid_values_are_rejected() {
        let cfg =
            RuntimeConfig::from_json(r#"{ "model": "7B", "zero_stage": 4 }"#).unwrap();
        assert!(matches!(cfg.resolve(), Err(ConfigError::Invalid { .. })));
        let cfg = RuntimeConfig::from_json(r#"{ "model": "7B", "gpu_resident_ratio": 1.5 }"#)
            .unwrap();
        assert!(matches!(cfg.resolve(), Err(ConfigError::Invalid { .. })));
        let cfg = RuntimeConfig::from_json(r#"{ "model": "7B", "micro_batch": 0 }"#).unwrap();
        assert!(matches!(cfg.resolve(), Err(ConfigError::Invalid { .. })));
    }

    #[test]
    fn unknown_fields_fail_fast() {
        assert!(RuntimeConfig::from_json(r#"{ "model": "7B", "typo_field": 1 }"#).is_err());
    }

    #[test]
    fn round_trips_through_json() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "20B", "gpu_resident_ratio": 0.2 }"#)
            .unwrap();
        let again = RuntimeConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again.model, "20B");
        assert_eq!(again.gpu_resident_ratio, 0.2);
    }

    #[test]
    fn profile_lookup_by_name() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "7B", "profile": "4xV100-32GB" }"#)
            .unwrap();
        let train = cfg.resolve().unwrap();
        assert_eq!(train.profile.name, "4xV100-32GB");
    }
}
