//! Functional checkpointing of model + optimizer state.
//!
//! One motivation the paper gives for host-offloaded optimizer state (§2)
//! is cheap checkpointing: the large FP32 tensors already live in host
//! memory, so they can be flushed to persistent storage asynchronously
//! without blocking the GPUs (the DataStates-LLM line of work). This module
//! provides that for the functional engine: capture a consistent snapshot
//! (an owned copy, taken at an update-phase boundary), then write it on a
//! background thread while training continues.

use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use dos_nn::VisitParams;
use dos_optim::MixedPrecisionState;

/// A consistent snapshot of training state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCheckpoint {
    /// The model's (device) parameters at capture time.
    pub params: Vec<f32>,
    /// The FP32 optimizer state (master params, momentum, variance, step).
    pub optimizer: MixedPrecisionState,
    /// Iterations completed when captured.
    pub iteration: usize,
}

impl TrainingCheckpoint {
    /// Captures a snapshot from a model and its optimizer state.
    ///
    /// The copy is taken eagerly (host memory is cheap relative to the GPU
    /// tier it stands in for), so training may mutate both immediately
    /// after this returns.
    pub fn capture(
        model: &mut impl VisitParams,
        optimizer: &MixedPrecisionState,
        iteration: usize,
    ) -> TrainingCheckpoint {
        TrainingCheckpoint {
            params: model.gather_params(),
            optimizer: optimizer.clone(),
            iteration,
        }
    }

    /// Restores the snapshot into a model; returns the optimizer state to
    /// resume with.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter count differs from the snapshot's.
    pub fn restore(&self, model: &mut impl VisitParams) -> MixedPrecisionState {
        model.scatter_params(&self.params);
        model.zero_grads();
        self.optimizer.clone()
    }

    /// Writes the snapshot to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let file = File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self).map_err(io::Error::other)
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns I/O or deserialization errors.
    pub fn load(path: &Path) -> io::Result<TrainingCheckpoint> {
        let file = File::open(path)?;
        serde_json::from_reader(BufReader::new(file)).map_err(io::Error::other)
    }
}

/// Writes checkpoints on a background thread so training continues
/// unblocked; at most one write is in flight (a new request waits for the
/// previous one, bounding staging memory like the paper's pinned windows).
#[derive(Debug, Default)]
pub struct AsyncCheckpointer {
    in_flight: Option<(PathBuf, JoinHandle<io::Result<()>>)>,
}

impl AsyncCheckpointer {
    /// Creates an idle checkpointer.
    pub fn new() -> AsyncCheckpointer {
        AsyncCheckpointer::default()
    }

    /// Starts writing `checkpoint` to `path` in the background, first
    /// draining any previous in-flight write.
    ///
    /// # Errors
    ///
    /// Returns the error of the *previous* write if it failed.
    pub fn save_async(
        &mut self,
        checkpoint: TrainingCheckpoint,
        path: impl Into<PathBuf>,
    ) -> io::Result<()> {
        self.drain()?;
        let path = path.into();
        let thread_path = path.clone();
        let handle = std::thread::spawn(move || checkpoint.save(&thread_path));
        self.in_flight = Some((path, handle));
        Ok(())
    }

    /// Whether a write is currently in flight (without blocking).
    pub fn is_writing(&self) -> bool {
        self.in_flight.as_ref().is_some_and(|(_, h)| !h.is_finished())
    }

    /// Blocks until any in-flight write completes.
    ///
    /// # Errors
    ///
    /// Returns the write's I/O error, if any.
    ///
    /// # Panics
    ///
    /// Panics if the writer thread panicked.
    pub fn drain(&mut self) -> io::Result<()> {
        if let Some((_, handle)) = self.in_flight.take() {
            handle.join().expect("checkpoint writer panicked")?;
        }
        Ok(())
    }
}

impl Drop for AsyncCheckpointer {
    fn drop(&mut self) {
        // Destructors must not fail: ignore errors, finish the write.
        let _ = self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_nn::{Gpt, GptConfig};
    use dos_optim::UpdateRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Gpt, MixedPrecisionState) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Gpt::new(GptConfig::tiny(), &mut rng);
        let state =
            MixedPrecisionState::new(model.gather_params(), UpdateRule::adam(), 1e-2);
        (model, state)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dos-ckpt-test-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let (mut model, mut state) = setup();
        state.full_step(&vec![0.01; state.len()]);
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 7);
        let path = tmp("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.iteration, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_matches_uninterrupted_training() {
        let (mut model_a, mut state_a) = setup();
        let (mut model_b, mut state_b) = setup();
        let tokens = [1usize, 2, 3, 4];
        let targets = [2usize, 3, 4, 5];

        let train_step = |m: &mut Gpt, s: &mut MixedPrecisionState| {
            m.loss_and_backward(&tokens, &targets, 1, 4);
            let grads = m.gather_grads();
            s.full_step(&grads);
            m.scatter_params(s.params());
            m.zero_grads();
        };

        // A: 4 uninterrupted steps.
        for _ in 0..4 {
            train_step(&mut model_a, &mut state_a);
        }
        // B: 2 steps, checkpoint to disk, restore into fresh objects, 2 more.
        for _ in 0..2 {
            train_step(&mut model_b, &mut state_b);
        }
        let path = tmp("resume");
        TrainingCheckpoint::capture(&mut model_b, &state_b, 2).save(&path).unwrap();
        let (mut model_c, _) = setup();
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        let mut state_c = loaded.restore(&mut model_c);
        for _ in 0..2 {
            train_step(&mut model_c, &mut state_c);
        }
        assert_eq!(model_a.gather_params(), model_c.gather_params());
        assert_eq!(state_a.params(), state_c.params());
        assert_eq!(state_a.step_count(), state_c.step_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_writer_overlaps_and_drains() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 0);
        let path = tmp("async");
        let mut writer = AsyncCheckpointer::new();
        writer.save_async(ckpt.clone(), &path).unwrap();
        // Training can proceed here while the write is in flight.
        writer.drain().unwrap();
        assert!(!writer.is_writing());
        assert_eq!(TrainingCheckpoint::load(&path).unwrap(), ckpt);
        // Back-to-back saves drain the previous write first.
        writer.save_async(ckpt.clone(), &path).unwrap();
        writer.save_async(ckpt.clone(), &path).unwrap();
        writer.drain().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_writer_reports_errors_on_drain() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 0);
        let mut writer = AsyncCheckpointer::new();
        writer.save_async(ckpt, "/nonexistent-dir/ckpt.json").unwrap();
        assert!(writer.drain().is_err());
    }
}
