//! `dos-cli monitor`: a real training run with the production-monitoring
//! layer live — flight recorder, metrics endpoint, health detectors.
//!
//! [`run_monitor`] takes either a [`dos_train::TrainerConfig`] document
//! (recognized by its `"params"` field) or a simulator-style
//! [`RuntimeConfig`] (e.g. `examples/quickstart.json`), in which case a
//! small representative trainer is derived from its
//! `"deep_optimizer_states"` entry so the monitoring path is exercised on
//! real pipeline math. While training runs, a
//! [`dos_telemetry::MetricsServer`] serves `/metrics` (Prometheus text),
//! `/metrics.json`, and `/health`; the run scrapes its own endpoint over
//! real TCP and validates the payload, so a passing exit code means the
//! exposition path works end to end.

use std::path::PathBuf;

use dos_telemetry::{http_get, parse_prometheus, MetricsServer};
use dos_train::TrainerConfig;

use crate::config::RuntimeConfig;

/// Options for a monitored training run.
#[derive(Debug, Clone)]
pub struct MonitorOptions {
    /// Listen address for the metrics endpoint (`"127.0.0.1:0"` binds an
    /// ephemeral port).
    pub listen: String,
    /// Optimizer steps to run.
    pub iterations: usize,
    /// Seed for the deterministic parameter/gradient streams.
    pub seed: u64,
    /// Write the final Prometheus payload here, if anywhere.
    pub prom_out: Option<PathBuf>,
    /// Write the final health snapshot JSON here, if anywhere.
    pub health_out: Option<PathBuf>,
    /// Directory for automatic flight-recorder dumps, if any.
    pub flight_dir: Option<PathBuf>,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            listen: "127.0.0.1:0".to_string(),
            iterations: 8,
            seed: 0,
            prom_out: None,
            health_out: None,
            flight_dir: None,
        }
    }
}

/// Outcome of a monitored run.
#[derive(Debug, Clone)]
pub struct MonitorOutcome {
    /// The bound endpoint address (ephemeral port resolved).
    pub addr: String,
    /// Steps completed.
    pub iterations: usize,
    /// Steps that degraded to the CPU-only path.
    pub degraded_steps: usize,
    /// Health events raised across the run.
    pub health_events: usize,
    /// The final scraped Prometheus payload.
    pub prometheus: String,
    /// The final `/health` snapshot JSON.
    pub health_json: String,
}

/// Resolves the input document into a monitored [`TrainerConfig`]: a
/// trainer document passes through (with a `monitor` entry forced on); a
/// runtime document contributes its `deep_optimizer_states` entry to a
/// small representative shard.
fn resolve_config(config_json: &str) -> Result<TrainerConfig, String> {
    let value: serde::Value =
        serde_json::from_str(config_json).map_err(|e| format!("invalid config JSON: {e}"))?;
    let is_trainer_doc = value
        .as_map()
        .is_some_and(|m| m.iter().any(|(k, _)| k == "params"));
    let mut cfg = if is_trainer_doc {
        TrainerConfig::from_json(config_json).map_err(|e| e.to_string())?
    } else {
        let rc = RuntimeConfig::from_json(config_json).map_err(|e| e.to_string())?;
        // A small representative shard: big enough for several subgroups
        // and real device/CPU interleaving, small enough to step quickly.
        TrainerConfig {
            params: 6144,
            subgroup_size: 512,
            rule: "adam".to_string(),
            weight_decay: 0.0,
            lr: 0.01,
            static_residents: 1,
            scheduler: "hybrid".to_string(),
            importance_ratio: 0.1,
            staleness_bound: 1,
            deep_optimizer_states: rc.deep_optimizer_states,
            monitor: None,
            collectives: None,
        }
    };
    // Monitoring on, whatever the document said: that is the point of the
    // subcommand. An explicit entry keeps its capacity/health settings.
    cfg.monitor = Some(cfg.monitor.take().unwrap_or_default());
    Ok(cfg)
}

/// Deterministic parameter/gradient streams (seeded, reproducible).
fn stream(n: usize, seed: u64, step: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed ^ (step as u64).wrapping_mul(0xD129_0975_7351_37C9));
            // Map the top bits onto [-0.5, 0.5).
            ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Validates a scraped Prometheus payload: it must parse and must carry
/// the arena gauge the smoke tests key on.
fn validate_payload(body: &str) -> Result<(), String> {
    let samples = parse_prometheus(body).map_err(|e| format!("payload does not parse: {e}"))?;
    if samples.is_empty() {
        return Err("payload has no samples".to_string());
    }
    if !samples
        .iter()
        .any(|s| s.metric == "dos_gauge" && s.label("name") == Some("arena.in_use_bytes"))
    {
        return Err("payload is missing the arena.in_use_bytes gauge".to_string());
    }
    Ok(())
}

/// Runs the monitored training loop. See the module docs.
///
/// # Errors
///
/// Returns a description when the config cannot be resolved, the endpoint
/// cannot be bound, a step fails, or a self-scrape returns an invalid
/// payload.
pub fn run_monitor(config_json: &str, opts: &MonitorOptions) -> Result<MonitorOutcome, String> {
    let cfg = resolve_config(config_json)?;
    let n = cfg.params;
    let mut trainer = cfg.build(stream(n, opts.seed, 0)).map_err(|e| e.to_string())?;
    let tracer = trainer.tracer().ok_or("monitored trainer has no tracer")?.clone();
    if let (Some(dir), Some(flight)) = (&opts.flight_dir, tracer.flight()) {
        flight.set_dump_dir(dir);
    }
    let board = trainer.health_board().ok_or("monitored trainer has no health board")?.clone();
    let server = MetricsServer::start(&opts.listen, tracer.metrics().clone(), Some(board))?;
    let addr = server.addr().to_string();
    eprintln!("serving metrics on http://{addr}/metrics (json: /metrics.json, health: /health)");

    let mut degraded_steps = 0;
    let mut health_events = 0;
    let mid = opts.iterations / 2;
    for it in 0..opts.iterations {
        let grads = stream(n, opts.seed, it + 1);
        let report = trainer.step(&grads).map_err(|e| format!("step {it}: {e}"))?;
        if report.degraded.is_some() {
            degraded_steps += 1;
        }
        for ev in trainer.last_health_events() {
            // Structured log lines for machine consumption downstream.
            println!("{}", ev.json_line());
            health_events += 1;
        }
        if let Some(r) = trainer.last_iteration() {
            eprintln!(
                "it {:>3}  {:.3} ms  {:.2e} pps  stall {:>5.1}%  overlap {:>5.1}%  {}",
                r.iteration,
                r.iter_secs * 1e3,
                r.pps,
                r.stall_fraction * 100.0,
                r.overlap_efficiency * 100.0,
                if r.degraded { "DEGRADED" } else { "ok" },
            );
        }
        if it == mid {
            // Self-scrape mid-run over real TCP: the endpoint must serve
            // valid Prometheus while training is in flight.
            let (status, body) = http_get(addr.as_str(), "/metrics")?;
            if status != 200 {
                return Err(format!("mid-run scrape returned HTTP {status}"));
            }
            validate_payload(&body)?;
        }
    }

    let (status, prometheus) = http_get(addr.as_str(), "/metrics")?;
    if status != 200 {
        return Err(format!("final scrape returned HTTP {status}"));
    }
    validate_payload(&prometheus)?;
    let (status, health_json) = http_get(addr.as_str(), "/health")?;
    if status != 200 {
        return Err(format!("health scrape returned HTTP {status}"));
    }
    if let Some(out) = &opts.prom_out {
        std::fs::write(out, &prometheus).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    if let Some(out) = &opts.health_out {
        std::fs::write(out, &health_json).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    Ok(MonitorOutcome {
        addr,
        iterations: opts.iterations,
        degraded_steps,
        health_events,
        prometheus,
        health_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trainer_document_runs_and_serves() {
        let json = r#"{ "params": 2048, "subgroup_size": 256,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let opts = MonitorOptions { iterations: 4, ..MonitorOptions::default() };
        let outcome = run_monitor(json, &opts).unwrap();
        assert_eq!(outcome.iterations, 4);
        assert_eq!(outcome.degraded_steps, 0);
        assert!(outcome.prometheus.contains("arena.in_use_bytes"));
        assert!(outcome.prometheus.contains("dos_counter{name=\"pipeline.device_subgroups\"}"));
        let health: dos_telemetry::HealthSnapshot =
            serde_json::from_str(&outcome.health_json).unwrap();
        assert_eq!(health.iterations, 4);
    }

    #[test]
    fn runtime_document_derives_a_representative_trainer() {
        let json = r#"{ "model": "20B",
                        "deep_optimizer_states": { "enabled": true, "update_stride": "auto" } }"#;
        let opts = MonitorOptions { iterations: 3, ..MonitorOptions::default() };
        let outcome = run_monitor(json, &opts).unwrap();
        assert_eq!(outcome.iterations, 3);
        validate_payload(&outcome.prometheus).unwrap();
    }

    #[test]
    fn file_outputs_and_determinism() {
        let dir = std::env::temp_dir()
            .join(format!("dos-monitor-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let json = r#"{ "params": 1024, "subgroup_size": 128 }"#;
        let opts = MonitorOptions {
            iterations: 3,
            prom_out: Some(dir.join("metrics.prom")),
            health_out: Some(dir.join("health.json")),
            flight_dir: Some(dir.clone()),
            ..MonitorOptions::default()
        };
        let outcome = run_monitor(json, &opts).unwrap();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert_eq!(prom, outcome.prometheus);
        validate_payload(&prom).unwrap();
        let health = std::fs::read_to_string(dir.join("health.json")).unwrap();
        assert_eq!(health, outcome.health_json);
        // Same seed, same gradient streams.
        assert_eq!(stream(64, 7, 3), stream(64, 7, 3));
        assert_ne!(stream(64, 7, 3), stream(64, 7, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_configs_are_rejected() {
        assert!(run_monitor("not json", &MonitorOptions::default()).is_err());
        assert!(run_monitor(r#"{ "params": 0, "subgroup_size": 4 }"#, &MonitorOptions::default())
            .is_err());
    }
}
