//! Simulation entry points driven by a [`RuntimeConfig`].

use dos_core::{DeepOptimizerStates, NvmeOffload, TwinFlow, Zero3Offload};
use dos_sim::{
    simulate_iteration, simulate_iteration_traced, simulate_training, IterationReport,
    TrainingReport, UpdateScheduler,
};
use dos_telemetry::Tracer;

use crate::config::{ConfigError, RuntimeConfig};

/// Builds the update scheduler a configuration selects.
///
/// With the middleware disabled, a non-zero static ratio selects TwinFlow
/// and a zero ratio selects plain ZeRO-3 CPU offload — matching how a
/// DeepSpeed user would fall back.
pub fn scheduler_for(config: &RuntimeConfig) -> Box<dyn UpdateScheduler> {
    if config.nvme_offload {
        return Box::new(NvmeOffload {
            interleave: config.deep_optimizer_states.enabled,
            stride: config.deep_optimizer_states.update_stride.to_policy(),
        });
    }
    if config.deep_optimizer_states.enabled {
        Box::new(DeepOptimizerStates {
            stride: config.deep_optimizer_states.update_stride.to_policy(),
            ..DeepOptimizerStates::default()
        })
    } else if config.gpu_resident_ratio > 0.0 {
        Box::new(TwinFlow)
    } else {
        Box::new(Zero3Offload)
    }
}

/// Simulates one iteration under the configured scheduler.
///
/// # Errors
///
/// Returns [`ConfigError`] for unresolvable configurations; engine errors
/// are wrapped as [`ConfigError::Invalid`].
pub fn run_iteration(config: &RuntimeConfig) -> Result<IterationReport, ConfigError> {
    let train = config.resolve()?;
    let sched = scheduler_for(config);
    simulate_iteration(&train, sched.as_ref())
        .map_err(|e| ConfigError::Invalid { detail: e.to_string() })
}

/// Simulates one iteration under the configured scheduler with the engine
/// schedule replayed into a fresh [`Tracer`] (one track per engine stream,
/// simulated clock). Returns the report and the tracer, ready for
/// [`dos_telemetry::chrome_trace`] export and [`dos_telemetry::analyze`].
///
/// # Errors
///
/// Returns [`ConfigError`] for unresolvable configurations; engine errors
/// are wrapped as [`ConfigError::Invalid`].
pub fn trace_iteration(config: &RuntimeConfig) -> Result<(IterationReport, Tracer), ConfigError> {
    let train = config.resolve()?;
    let sched = scheduler_for(config);
    let tracer = Tracer::new();
    let report = simulate_iteration_traced(&train, sched.as_ref(), &tracer)
        .map_err(|e| ConfigError::Invalid { detail: e.to_string() })?;
    Ok((report, tracer))
}

/// Simulates a multi-iteration run under the configured scheduler.
///
/// # Errors
///
/// Returns [`ConfigError`] for unresolvable configurations; engine errors
/// are wrapped as [`ConfigError::Invalid`].
pub fn run_training(
    config: &RuntimeConfig,
    iterations: usize,
) -> Result<TrainingReport, ConfigError> {
    let train = config.resolve()?;
    let sched = scheduler_for(config);
    simulate_training(&train, sched.as_ref(), iterations)
        .map_err(|e| ConfigError::Invalid { detail: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_to_iteration_report() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let report = run_iteration(&cfg).unwrap();
        assert_eq!(report.scheduler, "deep-optimizer-states");
        assert!(report.total_secs > 0.0);
    }

    #[test]
    fn trace_iteration_round_trips_and_validates() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "20B" }"#).unwrap();
        let (report, tracer) = trace_iteration(&cfg).unwrap();
        let plain = run_iteration(&cfg).unwrap();
        assert_eq!(report.total_secs, plain.total_secs, "tracing must not change the schedule");

        let analysis = dos_telemetry::analyze_tracer(&tracer);
        assert!(analysis.validate().is_empty(), "{:?}", analysis.validate());
        assert_eq!(
            analysis.phases.iter().map(|p| p.phase.as_str()).collect::<Vec<_>>(),
            ["forward", "backward", "update"],
        );

        let trace = dos_telemetry::chrome_trace(&tracer);
        let json = serde_json::to_string(&trace).unwrap();
        let back: dos_telemetry::ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn disabling_middleware_selects_baselines() {
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "7B", "deep_optimizer_states": { "enabled": false } }"#,
        )
        .unwrap();
        assert_eq!(scheduler_for(&cfg).name(), "zero3-offload");
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "7B", "gpu_resident_ratio": 0.2,
                 "deep_optimizer_states": { "enabled": false } }"#,
        )
        .unwrap();
        assert_eq!(scheduler_for(&cfg).name(), "twinflow");
    }

    #[test]
    fn single_json_flag_flips_the_speedup() {
        // The paper's whole pitch in one test: flipping the JSON entry makes
        // 20B iterations ~2x faster.
        let on = RuntimeConfig::from_json(r#"{ "model": "20B" }"#).unwrap();
        let off = RuntimeConfig::from_json(
            r#"{ "model": "20B", "deep_optimizer_states": { "enabled": false } }"#,
        )
        .unwrap();
        let fast = run_iteration(&on).unwrap();
        let slow = run_iteration(&off).unwrap();
        assert!(slow.total_secs / fast.total_secs > 1.8);
    }

    #[test]
    fn nvme_offload_selects_the_nvme_scheduler() {
        let cfg = RuntimeConfig::from_json(
            r#"{ "model": "33B", "nvme_offload": true }"#,
        )
        .unwrap();
        assert_eq!(scheduler_for(&cfg).name(), "dos-nvme-offload");
        let r = run_iteration(&cfg).unwrap();
        assert!(r.host_oom.is_none(), "NVMe tier must fit 33B: {:?}", r.host_oom);

        let plain = RuntimeConfig::from_json(
            r#"{ "model": "33B", "nvme_offload": true,
                 "deep_optimizer_states": { "enabled": false } }"#,
        )
        .unwrap();
        assert_eq!(scheduler_for(&plain).name(), "zero-infinity-nvme");
    }

    #[test]
    fn multi_iteration_run_reports_stability() {
        let cfg = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let report = run_training(&cfg, 6).unwrap();
        assert_eq!(report.iterations, 6);
        assert!(report.is_stable(1, 0.1), "{:?}", report.iteration_durations());
    }
}
