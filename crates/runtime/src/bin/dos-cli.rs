//! `dos-cli` — run a Deep Optimizer States training simulation from a
//! DeepSpeed-style JSON config file.
//!
//! ```text
//! dos-cli <config.json> [--iterations N] [--compare] [--explain]
//! dos-cli trace <config.json> [--out trace.json] [--analyze]
//! dos-cli conformance [--quick] [--json] [--filter SUBSTR]
//! dos-cli chaos <config.json> [--seed N] [--faults SPEC] [--trace-out FILE]
//!               [--flight-out FILE]
//! dos-cli monitor <config.json> [--listen ADDR] [--iterations N] [--seed N]
//!                 [--prom-out FILE] [--health-out FILE] [--flight-dir DIR]
//! dos-cli autotune <config.json> [--iterations N] [--seed N] [--faults SPEC]
//!                  [--trace-out FILE] [--json]
//! dos-cli calibrate [--elements N] [--rounds N] [--ug PPS] [--json]
//! dos-cli serve <jobs.json> [--jobs N] [--open-loop RATE] [--seed S]
//!               [--listen ADDR] [--ckpt-dir DIR] [--trace-out FILE]
//!               [--out FILE] [--json] [--require-preemption]
//! dos-cli check [--schedules N] [--fuzz N] [--seed S] [--scenario PREFIX] [--json]
//!               [--corpus DIR] [--replay TOKEN]
//!
//!   --iterations N   simulate N iterations (default: 1, with breakdown)
//!   --compare        also run the ZeRO-3 and TwinFlow baselines
//!   --explain        print the schedule Equation 1 derives first
//!
//! trace: simulate one iteration with tracing and export a Chrome
//! trace-event JSON (open it in ui.perfetto.dev or chrome://tracing).
//!   --out FILE       write the trace JSON here (default: trace.json)
//!   --analyze        print the overlap/stall analysis and exit nonzero
//!                    if any analyzer invariant is violated
//!
//! conformance: run the differential oracle matrix (Eq. 1 model vs
//! simulator vs functional pipeline) and exit nonzero on any divergence.
//!   --quick          reduced matrix (2 models, strides 1..3, 2 ratios)
//!   --json           emit the DivergenceReport as JSON instead of a table
//!   --filter SUBSTR  only run cells whose coordinates contain SUBSTR,
//!                    e.g. `20B/`, `zero3-offload`, `adamw/k=3`,
//!                    `zenflow-async` (stall-free updates), `nvme/`
//!                    (ZeRO-Infinity-style NVMe offload)
//!
//! chaos: run a seeded fault-injection campaign (device-worker kills,
//! torn checkpoints, PCIe degradation windows, transient transfer
//! failures) and exit nonzero if any robustness invariant breaks.
//!   --seed N         campaign seed (default: 0; same seed, same faults)
//!   --faults SPEC    comma-separated subset of degrade, transfer-fail,
//!                    worker-kill, ckpt-corrupt (default: all)
//!   --trace-out FILE also export the faulted iteration's Chrome trace,
//!                    fault instants included
//!   --flight-out FILE write the monitored worker-kill check's automatic
//!                    flight-recorder dump here (with --transport-faults,
//!                    the transport check's dump — it runs last)
//!   --transport-faults SPEC  also run DP=4 training over a
//!                    fault-injected collective transport; SPEC grammar:
//!                    drop:P, dup:P, delay:LO..HI, disconnect:rankR@iterN,
//!                    part:A-B@LO..HI (comma-separated). Transient-only
//!                    plans must stay bitwise; permanent failures must
//!                    degrade elastically at reduced world size.
//!
//! monitor: run real training while serving live metrics over HTTP —
//! `/metrics` (Prometheus text format), `/metrics.json`, and `/health`
//! (the online anomaly detectors' board). The run self-scrapes its own
//! endpoint and exits nonzero if the payload is invalid. Accepts either a
//! trainer document (with `"params"`) or a simulator config like
//! `examples/quickstart.json` (a representative trainer is derived).
//!   --listen ADDR    bind address (default: 127.0.0.1:0, ephemeral port)
//!   --iterations N   optimizer steps to run (default: 8)
//!   --seed N         seed for the deterministic data streams (default: 0)
//!   --prom-out FILE  write the final Prometheus payload here
//!   --health-out FILE write the final health snapshot JSON here
//!   --flight-dir DIR directory for automatic flight-recorder dumps
//!
//! autotune: race the adaptive control plane against the static Equation 1
//! arm under a pinned fault plan; exit nonzero if the controller fails its
//! acceptance bar (fault-free: parity with static within 5%; faulted: it
//! must not lose).
//!   --iterations N   iterations to race (default: 12)
//!   --seed N         fault-plan seed (default: 0)
//!   --faults SPEC    comma-separated degradation windows, each
//!                    resource:FROM..UNTIL@SCALE, e.g. pcie.h2d:3..8@0.15
//!   --trace-out FILE export one adaptive iteration's Chrome trace with
//!                    the control:* decision instants on their own track
//!   --json           emit the outcome as JSON instead of a table
//!
//! calibrate: measure Equation 1's CPU-side inputs on this machine with
//! the reproduction's own kernels and solve for the update stride.
//!   --elements N     parameters per kernel invocation (default: 1 << 22)
//!   --rounds N       timed rounds behind each median (default: 5)
//!   --ug PPS         GPU update rate to assume, params/s (default: 25e9,
//!                    the H100 profile's nominal)
//!   --json           emit the measurements as JSON instead of a table
//!
//! serve: run the multi-tenant control plane over a submission file —
//! admission control against the profile's budgets, weighted-deficit
//! fair-share scheduling with time-sliced leases, and checkpoint-based
//! preemption proven bitwise against an uninterrupted run. Exits nonzero
//! if any serving gate fails: lost jobs, double-granted leases, starved
//! tenants, unbounded p99 admission-to-start latency, or aggregate
//! throughput under 85% of the Equation 1 packing oracle.
//!   --jobs N         expand the file's jobs as prototypes into a seeded
//!                    open-loop schedule of N jobs (default: run the file
//!                    as-is; the CI smoke uses --jobs 200)
//!   --open-loop RATE arrival rate, jobs per virtual second (default:
//!                    derived from Equation 1 job cost, slightly above
//!                    the cluster's drain rate; implies --jobs 200)
//!   --seed S         seed for per-job data streams + arrival jitter
//!   --listen ADDR    serve /metrics, /metrics.json, and the /tenants
//!                    table while running, then self-scrape and verify
//!                    tenant-labelled series are present
//!   --ckpt-dir DIR   preempt through an on-disk checkpoint store
//!                    (default: in-memory checkpoints)
//!   --trace-out FILE export the Chrome trace, serve:* instants included
//!   --out FILE       write the ServeReport JSON here
//!   --json           emit the ServeReport as JSON instead of a table
//!   --require-preemption  also fail unless the run preempted at least
//!                    once and proved resume bitwise-identical
//!
//! check: deterministic schedule exploration of the hybrid update
//! pipeline, the collective rendezvous, the serve coordinator, and the
//! ZenFlow cross-iteration asynchronous updates (cooperative scheduler,
//! sleep-set-pruned DFS + seeded random walks, bitwise parity with the
//! sequential oracle at every terminal schedule) plus differential
//! fuzzing through the tri-oracle; exit nonzero on any divergence,
//! deadlock, or panic.
//!   --schedules N    target distinct schedules across the suite
//!                    (default: 1200)
//!   --fuzz N         sampled fuzz cases (default: 24)
//!   --seed S         seed for random walks and fuzz sampling (default: 0)
//!   --corpus DIR     regression corpus to replay (default: tests/corpus
//!                    when it exists; pass --corpus '' to skip)
//!   --scenario PREFIX explore only scenarios whose coordinate starts with
//!                    PREFIX (e.g. `zf` for the ZenFlow cross-iteration
//!                    suite, `rdv` for the collective rendezvous)
//!   --json           emit the CheckReport as JSON instead of a summary
//!   --replay TOKEN   replay one failing schedule token (dc1:…) and exit
//!                    nonzero iff it still reproduces
//! ```
//!
//! Example config:
//!
//! ```json
//! { "model": "20B", "deep_optimizer_states": { "enabled": true } }
//! ```

use std::process::ExitCode;

use dos_runtime::{
    run_autotune, run_chaos, run_iteration, run_monitor, run_training, trace_iteration,
    AutotuneOptions, ChaosOptions, FaultKind, MonitorOptions, RuntimeConfig,
};

struct Args {
    config_path: String,
    iterations: usize,
    compare: bool,
    explain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut config_path = None;
    let mut iterations = 1;
    let mut compare = false;
    let mut explain = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iterations" => {
                let v = args.next().ok_or("--iterations needs a value")?;
                iterations = v.parse().map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--compare" => compare = true,
            "--explain" => explain = true,
            "--help" | "-h" => return Err(String::new()),
            other if config_path.is_none() => config_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        config_path: config_path.ok_or("missing config path")?,
        iterations,
        compare,
        explain,
    })
}

fn usage() {
    eprintln!("usage: dos-cli <config.json> [--iterations N] [--compare] [--explain]");
    eprintln!("       dos-cli trace <config.json> [--out trace.json] [--analyze]");
    eprintln!("       dos-cli conformance [--quick] [--json] [--filter SUBSTR]");
    eprintln!(
        "       dos-cli chaos <config.json> [--seed N] [--faults SPEC] [--trace-out FILE] [--flight-out FILE] [--transport-faults SPEC]"
    );
    eprintln!(
        "       dos-cli monitor <config.json> [--listen ADDR] [--iterations N] [--seed N] [--prom-out FILE] [--health-out FILE] [--flight-dir DIR]"
    );
    eprintln!(
        "       dos-cli autotune <config.json> [--iterations N] [--seed N] [--faults SPEC] [--trace-out FILE] [--json]"
    );
    eprintln!("       dos-cli calibrate [--elements N] [--rounds N] [--ug PPS] [--json]");
    eprintln!(
        "       dos-cli serve <jobs.json> [--jobs N] [--open-loop RATE] [--seed S] [--listen ADDR] [--ckpt-dir DIR] [--trace-out FILE] [--out FILE] [--json] [--require-preemption]"
    );
    eprintln!(
        "       dos-cli check [--schedules N] [--fuzz N] [--seed S] [--scenario PREFIX] [--json] [--corpus DIR] [--replay TOKEN]"
    );
}

/// Runs the multi-tenant control plane over a submission file;
/// `Ok(true)` means every serving gate held.
fn run_serve_cmd(rest: &[String]) -> Result<bool, String> {
    let mut spec_path = None;
    let mut jobs: Option<usize> = None;
    let mut rate: Option<f64> = None;
    let mut seed: u64 = 0;
    let mut listen: Option<String> = None;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<String> = None;
    let mut out: Option<String> = None;
    let mut json = false;
    let mut require_preemption = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = Some(v.parse().map_err(|_| format!("bad job count `{v}`"))?);
            }
            "--open-loop" => {
                let v = args.next().ok_or("--open-loop needs a rate")?;
                rate = Some(v.parse().map_err(|_| format!("bad rate `{v}`"))?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--listen" => {
                listen = Some(args.next().ok_or("--listen needs an address")?.to_string());
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(args.next().ok_or("--ckpt-dir needs a path")?.into());
            }
            "--trace-out" => {
                trace_out = Some(args.next().ok_or("--trace-out needs a path")?.to_string());
            }
            "--out" => out = Some(args.next().ok_or("--out needs a path")?.to_string()),
            "--json" => json = true,
            "--require-preemption" => require_preemption = true,
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let spec_path = spec_path.ok_or("missing submission file path")?;
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = dos_serve::ServeSpec::from_json(&text)?;
    spec.validate()?;
    let profile = spec.resolve_profile()?;

    let submission = if jobs.is_some() || rate.is_some() {
        let opts = dos_serve::OpenLoopOptions {
            jobs: jobs.unwrap_or(200),
            seed,
            rate_jobs_per_sec: rate,
        };
        dos_serve::open_loop_schedule(&profile, &spec.jobs, &opts)?
    } else {
        spec.jobs.clone()
    };
    let submitted = submission.len();

    let mut coord = dos_serve::Coordinator::new(profile, dos_serve::ServeOptions {
        checkpoint_dir: ckpt_dir,
        ..dos_serve::ServeOptions::default()
    });

    // The endpoint serves the live registry and the tenant table while
    // the virtual-time run executes; it stops when dropped.
    let server = match &listen {
        Some(addr) => Some(
            dos_telemetry::MetricsServer::start_with_routes(
                addr,
                coord.tracer().metrics().clone(),
                None,
                vec![("/tenants".to_string(), coord.tenants_doc().route())],
            )
            .map_err(|e| format!("metrics server: {e}"))?,
        ),
        None => None,
    };

    let report = coord.run(submission).map_err(|e| e.to_string())?;

    if let Some(server) = &server {
        let addr = server.addr();
        let (status, prom) = dos_telemetry::http_get(addr, "/metrics")?;
        if status != 200 || !prom.contains("tenant=\"") {
            return Err(format!(
                "self-scrape of {addr}/metrics invalid (status {status}, tenant labels {})",
                if prom.contains("tenant=\"") { "present" } else { "missing" }
            ));
        }
        dos_telemetry::parse_prometheus(&prom)
            .map_err(|e| format!("self-scraped payload does not parse: {e}"))?;
        let (status, tenants) = dos_telemetry::http_get(addr, "/tenants")?;
        let table: Vec<dos_serve::TenantReport> = serde_json::from_str(&tenants)
            .map_err(|e| format!("/tenants payload does not parse: {e}"))?;
        if status != 200 || table.is_empty() {
            return Err(format!("/tenants invalid (status {status}, {} rows)", table.len()));
        }
        eprintln!("self-scrape of {addr} valid: tenant-labelled metrics + /tenants table");
    }

    if let Some(path) = &trace_out {
        let trace = dos_telemetry::chrome_trace(coord.tracer());
        let rendered = serde_json::to_string_pretty(&trace)
            .map_err(|e| format!("cannot serialize trace: {e}"))?;
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let rendered = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    if let Some(path) = &out {
        std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if json {
        println!("{rendered}");
    } else {
        println!(
            "served {submitted} job(s): {} completed, {} rejected, {} failed in {:.3e} virtual s",
            report.completed, report.rejected, report.failed, report.makespan_secs,
        );
        println!(
            "  throughput {:.3e} params/s = {:.1}% of the packing oracle ({:.3e})",
            report.aggregate_pps,
            report.oracle_ratio * 100.0,
            report.oracle_pps,
        );
        println!(
            "  waits: mean {:.3e}s, p99 {:.3e}s, max {:.3e}s (bound {:.3e}s); {} preemption(s), {} migration(s)",
            report.mean_wait_secs,
            report.p99_wait_secs,
            report.max_wait_secs,
            report.wait_bound_secs,
            report.preemptions,
            report.migrations,
        );
        for t in &report.tenants {
            println!(
                "  {:>10} | w {:>4.1} | {}/{} done | {} preempt | max wait {:.3e}s | gap {:.3e}s",
                t.tenant, t.weight, t.completed, t.jobs, t.preemptions, t.max_wait_secs,
                t.max_service_gap_secs,
            );
        }
        if let Some(proof) = &report.proof {
            println!(
                "  preemption proof: {}/{} resumed over {} preemption(s), bitwise {}",
                proof.tenant,
                proof.name,
                proof.preemptions,
                if proof.bitwise_identical { "identical" } else { "DIVERGED" },
            );
        }
    }
    if let Err(gate) = report.healthy() {
        eprintln!("serving gate failed: {gate}");
        return Ok(false);
    }
    if require_preemption && report.preemptions == 0 {
        eprintln!("serving gate failed: no preemption exercised (--require-preemption)");
        return Ok(false);
    }
    if require_preemption && !report.proof.as_ref().is_some_and(|p| p.bitwise_identical) {
        eprintln!("serving gate failed: no bitwise preemption proof (--require-preemption)");
        return Ok(false);
    }
    Ok(true)
}

/// Runs schedule exploration + differential fuzzing (or replays one
/// token); `Ok(true)` means no divergence.
fn run_check_cmd(rest: &[String]) -> Result<bool, String> {
    let mut opts = dos_check::CheckOptions::default();
    let mut json = false;
    let mut replay: Option<String> = None;
    let mut corpus: Option<String> = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedules" => {
                let v = args.next().ok_or("--schedules needs a value")?;
                opts.schedules = v.parse().map_err(|_| format!("bad schedule count `{v}`"))?;
            }
            "--fuzz" => {
                let v = args.next().ok_or("--fuzz needs a value")?;
                opts.fuzz = v.parse().map_err(|_| format!("bad fuzz count `{v}`"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--json" => json = true,
            "--scenario" => {
                let v = args.next().ok_or("--scenario needs a coordinate prefix")?;
                opts.scenario_filter = Some(v.to_string());
            }
            "--replay" => {
                replay = Some(args.next().ok_or("--replay needs a token")?.to_string());
            }
            "--corpus" => {
                corpus = Some(args.next().ok_or("--corpus needs a directory")?.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    // Fault scenarios intentionally panic the virtual device worker
    // ("injected device fault …"); the pipeline contains and recovers from
    // those, so silence their default-hook noise — anything else still
    // prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.contains("injected device fault")) {
            return;
        }
        default_hook(info);
    }));

    if let Some(token) = replay {
        return match dos_check::replay_token(&token)? {
            Some(failure) => {
                println!("token reproduces: {failure}");
                Ok(false)
            }
            None => {
                println!("schedule replayed clean (terminal state matches the oracle)");
                Ok(true)
            }
        };
    }

    opts.corpus_dir = match corpus {
        Some(dir) if dir.is_empty() => None,
        Some(dir) => Some(dir.into()),
        // Default: the committed corpus, when running from the repo root.
        None => {
            let default = std::path::PathBuf::from("tests/corpus");
            default.is_dir().then_some(default)
        }
    };
    let report = dos_check::run_check(&opts)?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(report.passed)
}

/// Races the adaptive controller against the static arm; `Ok(true)` means
/// the controller met its acceptance bar.
fn run_autotune_cmd(rest: &[String]) -> Result<bool, String> {
    let mut config_path = None;
    let mut opts = AutotuneOptions::default();
    let mut json = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iterations" => {
                let v = args.next().ok_or("--iterations needs a value")?;
                opts.iterations = v.parse().map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--faults" => {
                let v = args.next().ok_or("--faults needs a spec")?;
                opts.faults = v
                    .split(',')
                    .map(|s| dos_control::DegradationSpec::parse(s.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--trace-out" => {
                opts.trace_out = Some(args.next().ok_or("--trace-out needs a path")?.into());
            }
            "--json" => json = true,
            other if config_path.is_none() => config_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let config_path = config_path.ok_or("missing config path")?;
    let cfg_json = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = RuntimeConfig::from_json(&cfg_json).map_err(|e| e.to_string())?;
    let outcome = run_autotune(&config, &opts)?;
    if json {
        let rendered = serde_json::to_string_pretty(&outcome)
            .map_err(|e| format!("cannot serialize outcome: {e}"))?;
        println!("{rendered}");
    } else {
        print!("{}", outcome.report.render_table());
        println!(
            "{} control instants traced; verdict: {}",
            outcome.control_instants,
            if outcome.passed { "PASS" } else { "FAIL" },
        );
    }
    Ok(outcome.passed)
}

/// Measures Equation 1's CPU-side inputs on this machine; `Ok(true)`
/// unless the measurements are unusable.
fn run_calibrate(rest: &[String]) -> Result<bool, String> {
    let mut elements: usize = 1 << 22;
    let mut rounds: usize = 5;
    let mut ug: f64 = 25.0e9;
    let mut json = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--elements" => {
                let v = args.next().ok_or("--elements needs a value")?;
                elements = v.parse().map_err(|_| format!("bad element count `{v}`"))?;
            }
            "--rounds" => {
                let v = args.next().ok_or("--rounds needs a value")?;
                rounds = v.parse().map_err(|_| format!("bad round count `{v}`"))?;
            }
            "--ug" => {
                let v = args.next().ok_or("--ug needs a value")?;
                ug = v.parse().map_err(|_| format!("bad GPU rate `{v}`"))?;
            }
            "--json" => json = true,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if elements == 0 || rounds == 0 {
        return Err("--elements and --rounds must be positive".to_string());
    }
    if !(ug.is_finite() && ug > 0.0) {
        return Err("--ug must be a positive rate".to_string());
    }
    let report = dos_core::calibrate_with(elements, rounds);
    let model = report.perf_model(ug);
    let stride = model.optimal_stride();
    if json {
        #[derive(serde::Serialize)]
        struct SpreadOut {
            cpu_update: f64,
            cpu_downscale: f64,
            staging: f64,
        }
        #[derive(serde::Serialize)]
        struct CalibrateOut {
            elements: usize,
            rounds: usize,
            cpu_update_pps: f64,
            cpu_downscale_pps: f64,
            staging_pps: f64,
            gpu_update_pps: f64,
            spread: SpreadOut,
            optimal_stride: Option<usize>,
        }
        let rendered = serde_json::to_string_pretty(&CalibrateOut {
            elements: report.elements,
            rounds: report.rounds,
            cpu_update_pps: report.cpu_update_pps,
            cpu_downscale_pps: report.cpu_downscale_pps,
            staging_pps: report.staging_pps,
            gpu_update_pps: ug,
            spread: SpreadOut {
                cpu_update: report.spread.cpu_update,
                cpu_downscale: report.spread.cpu_downscale,
                staging: report.spread.staging,
            },
            optimal_stride: stride,
        })
        .map_err(|e| format!("cannot serialize report: {e}"))?;
        println!("{rendered}");
    } else {
        println!(
            "calibrated over {} elements, median of {} rounds (spread = (max-min)/median):",
            report.elements, report.rounds,
        );
        println!(
            "  U_c (CPU Adam update) {:>10.3e} params/s  spread {:>5.1}%",
            report.cpu_update_pps,
            report.spread.cpu_update * 100.0,
        );
        println!(
            "  D_c (FP32->FP16)      {:>10.3e} params/s  spread {:>5.1}%",
            report.cpu_downscale_pps,
            report.spread.cpu_downscale * 100.0,
        );
        println!(
            "  B   (staging proxy)   {:>10.3e} params/s  spread {:>5.1}%",
            report.staging_pps,
            report.spread.staging * 100.0,
        );
        println!("  U_g (assumed)         {ug:>10.3e} params/s");
        match stride {
            Some(k) => println!("Equation 1 update stride: k = {k}"),
            None => println!(
                "Equation 1 update stride: none (this CPU is fast enough that interleaving never pays)"
            ),
        }
        if report.spread.max() > 0.25 {
            println!(
                "warning: round spread above 25% — the machine was noisy; rerun with more --rounds"
            );
        }
    }
    Ok(true)
}

/// Runs the seeded chaos campaign; `Ok(true)` means every invariant held.
fn run_chaos_cmd(rest: &[String]) -> Result<bool, String> {
    let mut config_path = None;
    let mut opts = ChaosOptions::default();
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--faults" => {
                let v = args.next().ok_or("--faults needs a spec")?;
                opts.faults = FaultKind::parse_spec(v)?;
            }
            "--trace-out" => {
                opts.trace_out =
                    Some(args.next().ok_or("--trace-out needs a path")?.into());
            }
            "--flight-out" => {
                opts.flight_out =
                    Some(args.next().ok_or("--flight-out needs a path")?.into());
            }
            "--transport-faults" => {
                opts.transport_faults =
                    Some(args.next().ok_or("--transport-faults needs a spec")?.to_string());
            }
            other if config_path.is_none() => config_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let config_path = config_path.ok_or("missing config path")?;
    let json = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = RuntimeConfig::from_json(&json).map_err(|e| e.to_string())?;
    let report = run_chaos(&config, &opts).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(report.passed())
}

/// Runs real training with the metrics endpoint live; `Ok(true)` means
/// every self-scrape served a valid payload.
fn run_monitor_cmd(rest: &[String]) -> Result<bool, String> {
    let mut config_path = None;
    let mut opts = MonitorOptions::default();
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                opts.listen = args.next().ok_or("--listen needs an address")?.to_string();
            }
            "--iterations" => {
                let v = args.next().ok_or("--iterations needs a value")?;
                opts.iterations = v.parse().map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--prom-out" => {
                opts.prom_out = Some(args.next().ok_or("--prom-out needs a path")?.into());
            }
            "--health-out" => {
                opts.health_out = Some(args.next().ok_or("--health-out needs a path")?.into());
            }
            "--flight-dir" => {
                opts.flight_dir = Some(args.next().ok_or("--flight-dir needs a path")?.into());
            }
            other if config_path.is_none() => config_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let config_path = config_path.ok_or("missing config path")?;
    let json = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let outcome = run_monitor(&json, &opts)?;
    eprintln!(
        "monitored {} iteration(s) on {}: {} degraded, {} health event(s); payload valid",
        outcome.iterations, outcome.addr, outcome.degraded_steps, outcome.health_events
    );
    Ok(true)
}

/// Runs the differential conformance matrix; `Ok(true)` means conformant.
fn run_conformance(rest: &[String]) -> Result<bool, String> {
    let mut quick = false;
    let mut json = false;
    let mut filter = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--filter" => {
                filter = Some(args.next().ok_or("--filter needs a substring")?.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let oracle = if quick { dos_oracle::Oracle::quick() } else { dos_oracle::Oracle::full() };
    let outcome = oracle.run_filtered(filter.as_deref());
    if let Some(f) = &filter {
        if outcome.report.cells_checked == 0 {
            return Err(format!("--filter `{f}` matched no conformance cells"));
        }
    }
    if json {
        let rendered = serde_json::to_string_pretty(&outcome.report)
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        println!("{rendered}");
    } else {
        print!("{}", outcome.report.render_table());
    }
    Ok(outcome.report.is_conformant())
}

/// Simulates one traced iteration and exports a Chrome trace-event JSON;
/// `Ok(true)` means the export (and, with `--analyze`, every analyzer
/// invariant) held.
fn run_trace(rest: &[String]) -> Result<bool, String> {
    let mut config_path = None;
    let mut out = "trace.json".to_string();
    let mut analyze = false;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out needs a path")?.to_string(),
            "--analyze" => analyze = true,
            other if config_path.is_none() => config_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let config_path = config_path.ok_or("missing config path")?;
    let json = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let config = RuntimeConfig::from_json(&json).map_err(|e| e.to_string())?;
    let (report, tracer) = trace_iteration(&config).map_err(|e| e.to_string())?;

    let trace = dos_telemetry::chrome_trace(&tracer);
    let rendered = serde_json::to_string_pretty(&trace)
        .map_err(|e| format!("cannot serialize trace: {e}"))?;
    // The file is only useful if a consumer can read it back; verify the
    // round trip before writing.
    let back: dos_telemetry::ChromeTrace = serde_json::from_str(&rendered)
        .map_err(|e| format!("exported trace does not parse back: {e}"))?;
    if back != trace {
        return Err("exported trace does not round-trip losslessly".to_string());
    }
    std::fs::write(&out, &rendered).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{}: {} events on {} tracks, {:.3} simulated seconds -> {out}",
        report.scheduler,
        tracer.len(),
        tracer.tracks().len(),
        report.total_secs,
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing");

    if analyze {
        let analysis = dos_telemetry::analyze_tracer(&tracer);
        println!();
        print!("{}", analysis.render());
        let violations = analysis.validate();
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("analyzer invariant violated: {v}");
            }
            return Ok(false);
        }
    }
    Ok(true)
}

fn run(args: &Args) -> Result<(), String> {
    let json = std::fs::read_to_string(&args.config_path)
        .map_err(|e| format!("cannot read {}: {e}", args.config_path))?;
    let config = RuntimeConfig::from_json(&json).map_err(|e| e.to_string())?;

    if args.explain {
        let train = config.resolve().map_err(|e| e.to_string())?;
        println!("{}\n", dos_core::explain_schedule(&train));
    }

    let mut variants = vec![config.clone()];
    if args.compare {
        let mut baseline = config.clone();
        baseline.deep_optimizer_states.enabled = false;
        baseline.gpu_resident_ratio = 0.0;
        variants.push(baseline);
        let mut twin = config.clone();
        twin.deep_optimizer_states.enabled = false;
        twin.gpu_resident_ratio = config.gpu_resident_ratio.max(0.2);
        variants.push(twin);
    }

    let mut reference: Option<f64> = None;
    for cfg in &variants {
        if args.iterations <= 1 {
            let r = run_iteration(cfg).map_err(|e| e.to_string())?;
            println!(
                "{:>22} | fwd {:7.3}s | bwd {:7.3}s | upd {:7.3}s | total {:7.3}s | {:5.1} TFLOP/s/GPU{}{}",
                r.scheduler,
                r.forward_secs,
                r.backward_secs,
                r.update_secs,
                r.total_secs,
                r.tflops_per_gpu,
                r.oom.as_deref().map(|_| " | GPU OOM").unwrap_or(""),
                r.host_oom.as_deref().map(|_| " | HOST OOM").unwrap_or(""),
            );
            note_speedup(&mut reference, r.total_secs);
        } else {
            let r = run_training(cfg, args.iterations).map_err(|e| e.to_string())?;
            println!(
                "{:>22} | {} iterations | total {:9.2}s | avg {:7.3}s/iter | stable: {}",
                r.scheduler,
                r.iterations,
                r.total_secs,
                r.avg_iteration_secs,
                r.is_stable(2, 0.05),
            );
            note_speedup(&mut reference, r.total_secs);
        }
    }
    Ok(())
}

fn note_speedup(reference: &mut Option<f64>, total: f64) {
    match reference {
        None => *reference = Some(total),
        Some(first) => println!("{:>22}   ({:.2}x the first line's time)", "", total / *first),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("conformance") {
        return match run_conformance(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("chaos") {
        return match run_chaos_cmd(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("monitor") {
        return match run_monitor_cmd(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("autotune") {
        return match run_autotune_cmd(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("calibrate") {
        return match run_calibrate(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("serve") {
        return match run_serve_cmd(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("check") {
        return match run_check_cmd(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if raw.first().map(String::as_str) == Some("trace") {
        return match run_trace(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        };
    }
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            ExitCode::FAILURE
        }
    }
}
