//! Functional data-parallel training with interleaved hybrid updates.
//!
//! End-to-end *real* training, tying every substrate together: each
//! data-parallel rank runs on its own OS thread with its own `dos-nn` model
//! replica and a disjoint `dos-data` shard; gradients are reduce-scattered
//! with `dos-collectives`; each rank updates only its own ZeRO-style
//! optimizer shard through the `dos-core` interleaved hybrid pipeline
//! (CPU thread + device worker); updated FP16 parameters are all-gathered
//! back. This is the paper's training loop in miniature — with real
//! numerics instead of a timing model.

use std::sync::Arc;
use std::time::Duration;

use dos_collectives::{
    CollectiveConfig, CollectiveError, Communicator, FaultyTransport, InProcTransport,
    Transport, TransportFaultPlan,
};
#[cfg(unix)]
use dos_collectives::SocketTransport;
use dos_control::{WallClockTuner, WallClockTunerConfig};
use dos_core::{ArenaPool, PipelineConfig, PipelineError, StridePolicy};
use dos_data::{DataLoader, TokenDataset};
use dos_nn::{Gpt, GptConfig, VisitParams};
use dos_optim::{clip_grad_norm, DynamicLossScaler, LrSchedule, MixedPrecisionState, UpdateRule};
use dos_zero::{partition_into_subgroups, rank_range};

use dos_train::checkpoint::{AsyncCheckpointer, CheckpointError, CheckpointStore, TrainingCheckpoint};

/// Everything that can abort a functional training run.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainError {
    /// Checkpoint persistence or restoration failed.
    Checkpoint(CheckpointError),
    /// The hybrid update pipeline rejected its inputs.
    Pipeline(PipelineError),
    /// A collective operation failed (ranks out of lockstep).
    Collective(CollectiveError),
    /// A rank thread panicked.
    RankPanicked,
    /// The metrics endpoint could not be started.
    Monitor(
        /// Description of the bind/serve failure.
        String,
    ),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::Pipeline(e) => write!(f, "pipeline failure: {e}"),
            TrainError::Collective(e) => write!(f, "collective failure: {e}"),
            TrainError::RankPanicked => write!(f, "a rank thread panicked"),
            TrainError::Monitor(detail) => write!(f, "metrics endpoint failure: {detail}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Pipeline(e) => Some(e),
            TrainError::Collective(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<PipelineError> for TrainError {
    fn from(e: PipelineError) -> Self {
        TrainError::Pipeline(e)
    }
}

impl From<CollectiveError> for TrainError {
    fn from(e: CollectiveError) -> Self {
        TrainError::Collective(e)
    }
}

/// What the coordinator does when a rank fails mid-run (link dead, peer
/// silent past its deadline, or its thread panicked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankFailurePolicy {
    /// Abort the run, surfacing the typed [`TrainError::Collective`].
    Error,
    /// Elastic degradation: evict the dead rank, rebuild the communicator
    /// at the next step boundary from the latest crash-consistent
    /// checkpoint, and continue at the reduced world size.
    Elastic,
}

/// Which point-to-point substrate carries the collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportBackend {
    /// In-process channels between the rank threads (single process).
    InProc,
    /// Unix-domain sockets rendezvousing in this directory
    /// (`rank<r>.sock` files) — the same wire protocol real multi-process
    /// launches speak, driven here with one endpoint per rank thread.
    /// Unix only; selecting it elsewhere is a transport error at run
    /// start.
    Uds(std::path::PathBuf),
}

/// Configuration of a functional training run.
#[derive(Debug, Clone)]
pub struct FunctionalConfig {
    /// Model architecture (use small configurations; this is real math).
    pub model: GptConfig,
    /// Data-parallel world size (threads).
    pub world: usize,
    /// Micro-batch size per rank.
    pub micro_batch: usize,
    /// Optimizer rule.
    pub rule: UpdateRule,
    /// Learning rate.
    pub lr: f32,
    /// Subgroup size in parameters for the hybrid pipeline.
    pub subgroup_size: usize,
    /// Interleaving configuration (stride, static residents).
    pub pipeline: PipelineConfig,
    /// Wall-clock tuner tunables, used when `pipeline.stride` is
    /// [`StridePolicy::Adaptive`]: stride sweep gates plus the
    /// resident-sizing policy fed from the arena pool's high-water gauge.
    /// When `base_residents` is left at 0 it inherits
    /// `pipeline.static_residents`.
    pub tuner: WallClockTunerConfig,
    /// Seed for model init and data shuffling.
    pub seed: u64,
    /// Learning-rate schedule overriding the constant `lr` when set.
    pub lr_schedule: Option<LrSchedule>,
    /// Global gradient-norm clip applied after the all-reduce, when set.
    pub grad_clip: Option<f32>,
    /// Run forward/backward with activation checkpointing (recompute
    /// per-block activations during backward), as the paper's runs do.
    pub activation_checkpointing: bool,
    /// Initial dynamic loss scale (mixed-precision recipe); `None` disables
    /// loss scaling.
    pub loss_scale: Option<f32>,
    /// Checkpoint rank 0's model + optimizer shard into this retention
    /// directory (`ckpt-<iteration>.dos` files) every `checkpoint_every`
    /// iterations, written crash-consistently and asynchronously while
    /// training continues.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// How many checkpoints the retention directory keeps (oldest pruned).
    pub checkpoint_keep: usize,
    /// Checkpoint interval in iterations (ignored without a directory).
    pub checkpoint_every: usize,
    /// Resume training from this snapshot instead of a fresh init: the
    /// model takes the snapshot's device parameters, the optimizer its
    /// state, the data loader fast-forwards past the iterations already
    /// done, and new checkpoints continue its iteration numbering.
    /// Snapshots hold the *full* optimizer state (gathered across ranks at
    /// capture time), so any world size can resume from any snapshot —
    /// each rank re-shards the zero-padded full state.
    pub resume: Option<TrainingCheckpoint>,
    /// Point-to-point substrate for the collectives; see
    /// [`TransportBackend`].
    pub transport: TransportBackend,
    /// Per-collective deadline. `None` keeps the historical blocking mode
    /// (liveness via disconnect propagation); `Some` enables heartbeats,
    /// backoff retransmits, and timeout-vs-rank-failure attribution.
    pub collective_timeout: Option<Duration>,
    /// Wrap every rank's transport in seeded fault injection (chaos
    /// campaigns and the lossy-transport bitwise tests). `None` runs the
    /// transport clean.
    pub transport_faults: Option<TransportFaultPlan>,
    /// Rank-failure handling; see [`RankFailurePolicy`]. Elastic recovery
    /// strips permanent failures from the re-armed fault plan and emits
    /// `health:degraded` / `fault:collective:evict` tracer instants.
    pub on_rank_failure: RankFailurePolicy,
    /// Wall-clock tracer shared by every rank thread. Each rank records
    /// phase spans onto its own `rank{r}` track, and the hybrid pipeline
    /// records prefetch/update/flush spans onto the shared `cpu` and
    /// `device-worker` tracks. `None` disables tracing entirely (the
    /// update path is bitwise identical either way).
    pub tracer: Option<dos_telemetry::Tracer>,
    /// Serve live metrics from this address (e.g. `"127.0.0.1:0"`) for the
    /// duration of the run. Uses the configured tracer's registry, or
    /// attaches a flight-only tracer when none is set. `None` disables it.
    pub monitor_listen: Option<String>,
}

impl FunctionalConfig {
    /// A small default: tiny GPT, 2 ranks, Adam, stride-2 interleaving.
    pub fn small() -> FunctionalConfig {
        FunctionalConfig {
            model: GptConfig::tiny(),
            world: 2,
            micro_batch: 2,
            rule: UpdateRule::adam(),
            lr: 5e-3,
            subgroup_size: 4096,
            pipeline: PipelineConfig::default(),
            tuner: WallClockTunerConfig::default(),
            seed: 42,
            lr_schedule: None,
            grad_clip: None,
            activation_checkpointing: false,
            loss_scale: None,
            checkpoint_dir: None,
            checkpoint_keep: 3,
            checkpoint_every: 10,
            resume: None,
            transport: TransportBackend::InProc,
            collective_timeout: None,
            transport_faults: None,
            on_rank_failure: RankFailurePolicy::Error,
            tracer: None,
            monitor_listen: None,
        }
    }

    /// Applies the JSON `"collectives"` entry (the `dos-train` config
    /// surface, re-exported by [`crate::config`]) onto this run: transport
    /// backend, per-collective deadline, and rank-failure policy.
    ///
    /// # Errors
    ///
    /// Propagates the entry's own validation failures (unknown transport or
    /// policy names, `"uds"` without a `socket_dir`).
    pub fn apply_collectives(
        &mut self,
        entry: &dos_train::CollectivesEntry,
    ) -> Result<(), dos_train::TrainerError> {
        entry.validate()?;
        self.transport = match (entry.transport.as_str(), &entry.socket_dir) {
            ("uds", Some(dir)) => TransportBackend::Uds(dir.into()),
            _ => TransportBackend::InProc,
        };
        self.collective_timeout = entry.collective_timeout_ms.map(Duration::from_millis);
        self.on_rank_failure = match entry.on_rank_failure.as_str() {
            "elastic" => RankFailurePolicy::Elastic,
            _ => RankFailurePolicy::Error,
        };
        Ok(())
    }
}

/// Outcome of a functional run.
#[derive(Debug, Clone)]
pub struct FunctionalReport {
    /// Mean training loss per iteration (averaged across ranks).
    pub losses: Vec<f32>,
    /// Whether all ranks ended with bit-identical parameters.
    pub ranks_consistent: bool,
    /// Final parameters of rank 0 (FP16-rounded device copy).
    pub final_params: Vec<f32>,
    /// Update steps (on rank 0) that degraded to the CPU-only path because
    /// the device worker was lost. Nonzero only under fault injection or a
    /// genuine worker crash; the numerics are unaffected either way.
    pub degraded_steps: usize,
    /// The bound metrics-endpoint address, when `monitor_listen` was set
    /// (`"127.0.0.1:0"` resolves to the actual ephemeral port here).
    pub monitor_addr: Option<String>,
    /// How many times elastic recovery evicted a failed rank and restarted
    /// from a checkpoint. Zero on a healthy run. When nonzero, `losses`
    /// covers only the final (successful) segment.
    pub recoveries: usize,
    /// The world size the run finished at (smaller than the configured
    /// world after elastic degradation).
    pub final_world: usize,
}

/// Mean cross-entropy loss and perplexity of a model over an entire
/// dataset (single process, no gradients).
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate(model: &mut Gpt, dataset: &TokenDataset) -> (f32, f32) {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let mut total = 0.0f64;
    for i in 0..dataset.len() {
        let (x, y) = dataset.sample(i);
        total += model.loss_only(x, y, 1, dataset.seq_len()) as f64;
    }
    let mean = (total / dataset.len() as f64) as f32;
    (mean, mean.exp())
}

/// Pads `v` with zeros to a multiple of `world`.
fn pad_to_multiple(mut v: Vec<f32>, world: usize) -> Vec<f32> {
    let rem = v.len() % world;
    if rem != 0 {
        v.resize(v.len() + world - rem, 0.0);
    }
    v
}

/// Trains `iterations` steps of data-parallel, ZeRO-sharded, interleaved
/// hybrid training; returns per-iteration losses and a consistency check.
///
/// # Errors
///
/// Returns [`TrainError`] on checkpoint, pipeline, or collective failures,
/// when resuming with `world != 1`, or when a rank thread panics.
///
/// # Panics
///
/// Panics if `cfg.world` is zero or the dataset cannot fill a micro-batch
/// per rank.
pub fn train_functional(
    cfg: &FunctionalConfig,
    dataset: &TokenDataset,
    iterations: usize,
) -> Result<FunctionalReport, TrainError> {
    assert!(cfg.world > 0, "world must be positive");
    // With a listen address, serve live metrics for the duration of the
    // run. A flight-only tracer (bounded ring, no unbounded store) is
    // attached when the caller did not configure one, so the pipeline's
    // counters and the arena gauges have a registry to land in.
    let mut owned;
    let cfg = match &cfg.monitor_listen {
        Some(_) => {
            owned = cfg.clone();
            if owned.tracer.is_none() {
                owned.tracer = Some(dos_telemetry::Tracer::flight_only(4096));
            }
            &owned
        }
        None => cfg,
    };
    let server = match (&cfg.monitor_listen, &cfg.tracer) {
        (Some(listen), Some(t)) => Some(
            dos_telemetry::MetricsServer::start(listen, t.metrics().clone(), None)
                .map_err(TrainError::Monitor)?,
        ),
        _ => None,
    };
    let monitor_addr = server.as_ref().map(|s| s.addr().to_string());

    // The coordinator: run a world of rank threads; under the elastic
    // policy, a rank failure evicts the dead rank and restarts the
    // survivors from the latest crash-consistent checkpoint at the reduced
    // world size (ISSUE: rebuild the communicator at a step boundary).
    let target = cfg.resume.as_ref().map_or(0, |c| c.iteration) + iterations;
    let mut world = cfg.world;
    let mut resume = cfg.resume.clone();
    let mut remaining = iterations;
    let mut plan = cfg.transport_faults.clone();
    let mut recoveries = 0usize;
    let (results, final_world) = loop {
        let comms = build_comms(cfg, world, plan.as_ref())?;
        let run: Result<Vec<RankRun>, TrainError> =
            std::thread::scope(|scope| {
                let resume_ref = resume.as_ref();
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| {
                        scope.spawn(move || run_rank(cfg, dataset, remaining, comm, resume_ref))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|_| TrainError::RankPanicked).and_then(|r| r))
                    .collect()
            });
        match run {
            Ok(results) => break (results, world),
            Err(e) => {
                let evictable = matches!(
                    &e,
                    TrainError::RankPanicked
                        | TrainError::Collective(CollectiveError::RankFailed { .. })
                        | TrainError::Collective(CollectiveError::Timeout { .. })
                );
                if cfg.on_rank_failure != RankFailurePolicy::Elastic || world <= 1 || !evictable
                {
                    return Err(e);
                }
                world -= 1;
                recoveries += 1;
                // Survivors are re-armed without the permanent failures
                // that already fired (the evicted rank's disconnect must
                // not kill the new world's same-numbered rank).
                plan = plan.as_ref().map(TransportFaultPlan::without_permanent_failures);
                if let Some(t) = &cfg.tracer {
                    t.instant_at("faults", "fault:collective:evict", "fault", t.now());
                    t.instant_at("health", "health:degraded", "health", t.now());
                }
                // Rewind to the newest checkpoint that validates; with no
                // store (or none written yet), restart the attempt from
                // the run's original starting point.
                resume = cfg
                    .checkpoint_dir
                    .as_ref()
                    .and_then(|dir| CheckpointStore::open(dir, cfg.checkpoint_keep).ok())
                    .and_then(|store| store.latest_valid().ok())
                    .map(|(ckpt, _)| ckpt)
                    .or_else(|| cfg.resume.clone());
                remaining = target - resume.as_ref().map_or(0, |c| c.iteration);
            }
        }
    };

    let losses = results[0].0.clone();
    let final_params = results[0].1.clone();
    let degraded_steps = results[0].2;
    let ranks_consistent = results.iter().all(|(_, p, _)| *p == final_params);
    drop(server); // release the port before returning
    Ok(FunctionalReport {
        losses,
        ranks_consistent,
        final_params,
        degraded_steps,
        monitor_addr,
        recoveries,
        final_world,
    })
}

/// Builds the world's communicators per the configured transport options:
/// in-process channels or a UDS mesh, each rank's endpoint optionally
/// wrapped in seeded fault injection, in blocking or deadline mode.
fn build_comms(
    cfg: &FunctionalConfig,
    world: usize,
    plan: Option<&TransportFaultPlan>,
) -> Result<Vec<Communicator>, TrainError> {
    let ccfg = CollectiveConfig { timeout: cfg.collective_timeout, ..CollectiveConfig::default() };
    let endpoints: Vec<Box<dyn Transport>> = match &cfg.transport {
        TransportBackend::InProc => InProcTransport::world(world)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
        TransportBackend::Uds(dir) => uds_world(world, dir)?,
    };
    Ok(endpoints
        .into_iter()
        .map(|t| {
            let t: Box<dyn Transport> = match plan {
                None => t,
                Some(plan) => {
                    let mut faulty = FaultyTransport::new(t, plan.clone());
                    if let Some(tracer) = &cfg.tracer {
                        faulty = faulty.with_tracer(Arc::new(tracer.clone()));
                    }
                    Box::new(faulty)
                }
            };
            Communicator::new(t, ccfg.clone())
        })
        .collect())
}

/// Rendezvouses a full UDS mesh under `dir`. The per-rank handshake dials
/// every lower rank while accepting from every higher one, so the
/// endpoints must connect concurrently — one rendezvous thread per rank;
/// building them sequentially would deadlock.
#[cfg(unix)]
fn uds_world(world: usize, dir: &std::path::Path) -> Result<Vec<Box<dyn Transport>>, TrainError> {
    const HANDSHAKE: Duration = Duration::from_secs(10);
    std::fs::create_dir_all(dir).map_err(|e| {
        TrainError::Collective(CollectiveError::Transport {
            op: "connect",
            detail: format!("create {}: {e}", dir.display()),
        })
    })?;
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let dir = dir.to_path_buf();
            std::thread::spawn(move || SocketTransport::connect_uds(rank, world, &dir, HANDSHAKE))
        })
        .collect();
    let mut endpoints: Vec<Box<dyn Transport>> = Vec::with_capacity(world);
    for h in handles {
        let t = h.join().map_err(|_| TrainError::RankPanicked)?.map_err(|e| {
            TrainError::Collective(CollectiveError::Transport {
                op: "connect",
                detail: e.to_string(),
            })
        })?;
        endpoints.push(Box::new(t));
    }
    Ok(endpoints)
}

#[cfg(not(unix))]
fn uds_world(_world: usize, dir: &std::path::Path) -> Result<Vec<Box<dyn Transport>>, TrainError> {
    Err(TrainError::Collective(CollectiveError::Transport {
        op: "connect",
        detail: format!("UDS transport ({}) requires unix", dir.display()),
    }))
}

/// One rank's run result: (per-iteration losses, final parameters,
/// degraded-step count).
type RankRun = (Vec<f32>, Vec<f32>, usize);

/// One rank's training loop.
fn run_rank(
    cfg: &FunctionalConfig,
    dataset: &TokenDataset,
    iterations: usize,
    comm: Communicator,
    resume: Option<&TrainingCheckpoint>,
) -> Result<RankRun, TrainError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let rank = comm.rank();
    let world = comm.world_size();
    if let Some(t) = &cfg.tracer {
        t.set_thread_track(&format!("rank{rank}"));
    }
    // Identical init on every rank (same seed).
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = Gpt::new(cfg.model.clone(), &mut rng);
    let mut loader = DataLoader::new(rank, world, cfg.micro_batch, cfg.seed ^ 0x5EED);

    // ZeRO-style shard: this rank owns the optimizer state of its range of
    // the (padded) flat parameter space.
    let init = pad_to_multiple(model.gather_params(), world);
    let padded_n = init.len();
    let shard = rank_range(padded_n, rank, world);
    let resume_at = resume.map_or(0, |c| c.iteration);
    let mut state = match resume {
        // Snapshots hold the full optimizer state, so any world size can
        // resume: zero-pad the full space to this world's padded size and
        // slice out this rank's shard. The pad region's state is exactly
        // what a fresh run carries there (zero grads keep zero m/v, so the
        // pad never moves), making re-sharded resume bitwise-correct.
        Some(ckpt) => {
            let restored = ckpt.restore(&mut model)?;
            if restored.len() != model.num_params() {
                return Err(CheckpointError::ShapeMismatch {
                    expected: model.num_params(),
                    got: restored.len(),
                }
                .into());
            }
            let p = pad_to_multiple(restored.params().to_vec(), world);
            let m = pad_to_multiple(restored.momentum().to_vec(), world);
            let v = pad_to_multiple(restored.variance().to_vec(), world);
            // Fast-forward the data stream past the iterations already done
            // so the resumed run sees the batches an uninterrupted one would.
            for _ in 0..ckpt.iteration {
                let _ = loader.next_batch(dataset);
            }
            MixedPrecisionState::from_parts(
                p[shard.clone()].to_vec(),
                m[shard.clone()].to_vec(),
                v[shard.clone()].to_vec(),
                restored.rule(),
                restored.lr(),
                restored.step_count(),
            )
        }
        None => MixedPrecisionState::new(init[shard.clone()].to_vec(), cfg.rule, cfg.lr),
    };
    let subgroups = partition_into_subgroups(shard.len(), cfg.subgroup_size);

    // Adaptive stride: each rank runs a wall-clock tuner that re-solves
    // Equation 1 from the pipeline's own spans every iteration. Stride
    // changes never affect the numerics (§4.1), so ranks may retune
    // independently without breaking cross-rank consistency. The tuner
    // reads spans from the shared tracer when one is configured,
    // otherwise from a private per-rank tracer.
    let mut tuner = (cfg.pipeline.stride == StridePolicy::Adaptive).then(|| {
        let t = cfg.tracer.clone().unwrap_or_default();
        let mut tcfg = cfg.tuner;
        if tcfg.base_residents == 0 {
            tcfg.base_residents = cfg.pipeline.static_residents;
        }
        (WallClockTuner::new(tcfg, shard.len(), cfg.subgroup_size), t)
    });

    // Per-rank staging arena: the hybrid pipeline leases its subgroup
    // buffers here instead of allocating per subgroup, and the pool's
    // high-water gauge is the memory signal the headroom policy observes.
    // With a tracer attached, the gauges flow into its metrics registry.
    let pool = match &cfg.tracer {
        Some(t) => ArenaPool::with_metrics(t.metrics().clone()),
        None => ArenaPool::new(),
    };

    let store = match &cfg.checkpoint_dir {
        Some(dir) if rank == 0 => Some(CheckpointStore::open(dir, cfg.checkpoint_keep)?),
        _ => None,
    };
    let mut scaler = cfg.loss_scale.map(DynamicLossScaler::new);
    let mut checkpointer = AsyncCheckpointer::new();
    let mut degraded_steps = 0usize;
    let mut losses = Vec::with_capacity(iterations);
    for rel_it in 0..iterations {
        let it = rel_it + resume_at;
        // Scheduled transport faults (disconnects, partition windows) key
        // off the training iteration.
        comm.set_epoch(it as u64);
        let batch = loader.next_batch(dataset);
        let fwd_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("fwd-bwd:it{it}"), "forward-backward"));
        let loss = match (&scaler, cfg.activation_checkpointing) {
            (Some(s), _) => model.loss_and_backward_scaled(
                &batch.inputs,
                &batch.targets,
                batch.batch,
                batch.seq_len,
                s.scale(),
            ),
            (None, true) => model.loss_and_backward_checkpointed(
                &batch.inputs,
                &batch.targets,
                batch.batch,
                batch.seq_len,
            ),
            (None, false) => {
                model.loss_and_backward(&batch.inputs, &batch.targets, batch.batch, batch.seq_len)
            }
        };

        drop(fwd_span);

        // Average gradients across ranks; keep only this rank's shard
        // (ZeRO's reduce-scatter).
        let comm_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("grad-exchange:it{it}"), "communicate"));
        let mut grads = pad_to_multiple(model.gather_grads(), world);
        // Unscale (and overflow-check) before any reduction; all ranks see
        // the same values, so the skip decision is globally consistent.
        if let Some(s) = scaler.as_mut() {
            if !s.unscale_check(&mut grads) {
                // Overflow: skip this step (gradients were zeroed, so the
                // collectives below still participate and stay in lockstep).
            }
        }
        let inv = 1.0 / world as f32;
        // Global-norm clipping must see the *averaged full* gradient so all
        // ranks compute the same scale; do it before the scatter.
        if let Some(max_norm) = cfg.grad_clip {
            comm.all_reduce_sum(&mut grads)?;
            for g in grads.iter_mut() {
                *g *= inv;
            }
            clip_grad_norm(&mut grads, max_norm);
            // Already averaged: scatter without re-reducing.
        }
        let mut shard_grads = if cfg.grad_clip.is_some() {
            let shard = rank_range(grads.len(), rank, world);
            grads[shard].to_vec()
        } else {
            comm.reduce_scatter_sum(&grads)?
        };
        if cfg.grad_clip.is_none() {
            for g in shard_grads.iter_mut() {
                *g *= inv;
            }
        }
        drop(comm_span);
        if let Some(schedule) = cfg.lr_schedule {
            state.set_lr(schedule.lr_at(it as u64 + 1));
        }

        // Interleaved hybrid update of this rank's shard (real threads,
        // Algorithm 1's structure).
        let report = match &mut tuner {
            Some((tun, tt)) => {
                let mut pipeline = cfg.pipeline;
                pipeline.stride = tun.stride_policy();
                pipeline.static_residents = tun.static_residents();
                let mark = tt.now();
                let report = {
                    let _sp = tt.span(&format!("hybrid-update:it{it}"), "update");
                    dos_core::hybrid_update_pooled(
                        &mut state,
                        &shard_grads,
                        &subgroups,
                        pipeline,
                        Some(tt),
                        &pool,
                    )
                }?;
                // Feed only this iteration's spans back; under a shared
                // tracer, concurrent ranks' spans in the same window are
                // equally valid samples of the contended machine.
                let fresh: Vec<_> =
                    tt.events().into_iter().filter(|ev| ev.start >= mark).collect();
                let before = tun.decisions().len();
                tun.observe(&fresh);
                // The arena's per-iteration staging peak drives the
                // resident-sizing policy (a no-op under Fixed).
                tun.observe_arena(pool.take_high_water_bytes());
                if rank == 0 && cfg.tracer.is_some() {
                    for d in &tun.decisions()[before..] {
                        tt.control_decision(&d.detail, tt.now());
                    }
                }
                report
            }
            None => {
                let _sp = cfg
                    .tracer
                    .as_ref()
                    .map(|t| t.span(&format!("hybrid-update:it{it}"), "update"));
                dos_core::hybrid_update_pooled(
                    &mut state,
                    &shard_grads,
                    &subgroups,
                    cfg.pipeline,
                    cfg.tracer.as_ref(),
                    &pool,
                )?
            }
        };
        if report.degraded.is_some() {
            degraded_steps += 1;
        }

        // All-gather the updated FP16 parameters (the device copies every
        // rank trains the next iteration with).
        let gather_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("all-gather:it{it}"), "communicate"));
        let shard_fp16: Vec<f32> = report.fp16_params.iter().map(|h| h.to_f32()).collect();
        let mut full = comm.all_gather(&shard_fp16)?;
        full.truncate(model.num_params());
        model.scatter_params(&full);
        model.zero_grads();
        drop(gather_span);

        // Snapshot at update boundaries and write in the background (the
        // DataStates-style asynchronous flush the host-resident state
        // enables, §2). Checkpoints are world-size independent: every rank
        // contributes its optimizer shard to a full-state gather (elastic
        // recovery may reload at a smaller world), then rank 0 assembles
        // and persists. The capture is an owned copy, so training
        // continues immediately.
        if cfg.checkpoint_dir.is_some() && (it + 1).is_multiple_of(cfg.checkpoint_every.max(1)) {
            let mut p = comm.all_gather_var(state.params())?;
            let mut m = comm.all_gather_var(state.momentum())?;
            let mut v = comm.all_gather_var(state.variance())?;
            if let Some(store) = &store {
                let n = model.num_params();
                p.truncate(n);
                m.truncate(n);
                v.truncate(n);
                let full = MixedPrecisionState::from_parts(
                    p,
                    m,
                    v,
                    state.rule(),
                    state.lr(),
                    state.step_count(),
                );
                let snapshot = TrainingCheckpoint {
                    params: model.gather_params(),
                    optimizer: full,
                    iteration: it + 1,
                };
                checkpointer.save_async_in(snapshot, store)?;
            }
        }

        // Average the loss across ranks for reporting.
        let mut l = vec![loss];
        comm.all_reduce_sum(&mut l)?;
        losses.push(l[0] * inv);
    }
    checkpointer.drain()?;
    let finals = model.gather_params();
    // In deadline mode a fast rank must linger to serve retransmissions of
    // its final contributions before its endpoint vanishes (no-op in
    // blocking mode).
    comm.shutdown(cfg.collective_timeout.unwrap_or(Duration::ZERO));
    Ok((losses, finals, degraded_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_core::StridePolicy;
    use dos_tensor::F16;

    fn toy_dataset(seq: usize) -> TokenDataset {
        // A predictable cyclic token stream the tiny model can learn.
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn loss_decreases_and_ranks_stay_consistent() {
        let cfg = FunctionalConfig::small();
        let ds = toy_dataset(8);
        let report = train_functional(&cfg, &ds, 12).unwrap();
        assert_eq!(report.losses.len(), 12);
        assert!(report.ranks_consistent, "ranks diverged");
        let first: f32 = report.losses[..3].iter().sum::<f32>() / 3.0;
        let last: f32 = report.losses[9..].iter().sum::<f32>() / 3.0;
        assert!(last < first * 0.9, "loss did not improve: {first} -> {last}");
    }

    #[test]
    fn monitor_listen_serves_without_perturbing_numerics() {
        let ds = toy_dataset(8);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 4).unwrap();
        assert!(plain.monitor_addr.is_none());

        let mut cfg = FunctionalConfig::small();
        cfg.monitor_listen = Some("127.0.0.1:0".to_string());
        let monitored = train_functional(&cfg, &ds, 4).unwrap();
        let addr = monitored.monitor_addr.expect("endpoint was bound");
        assert!(addr.parse::<std::net::SocketAddr>().is_ok(), "bad addr {addr}");
        assert_eq!(plain.losses, monitored.losses, "monitoring must be observational");
        assert_eq!(plain.final_params, monitored.final_params);
        // The server shuts down with the run: the port no longer accepts.
        assert!(dos_telemetry::http_get(addr.as_str(), "/metrics").is_err());
    }

    #[test]
    fn interleaving_matches_cpu_only_training_exactly() {
        let ds = toy_dataset(8);
        let mut cpu_cfg = FunctionalConfig::small();
        cpu_cfg.pipeline.stride = StridePolicy::CpuOnly;
        let mut hybrid_cfg = FunctionalConfig::small();
        hybrid_cfg.pipeline.stride = StridePolicy::Fixed(2);
        let cpu = train_functional(&cpu_cfg, &ds, 6).unwrap();
        let hybrid = train_functional(&hybrid_cfg, &ds, 6).unwrap();
        // The paper's consistency claim end-to-end: interleaved offloading
        // does not change training at all.
        assert_eq!(cpu.losses, hybrid.losses);
        assert_eq!(cpu.final_params, hybrid.final_params);
    }

    #[test]
    fn world_sizes_agree_on_the_math() {
        // Different DP degrees shard differently but compute the same
        // global batch only when batch partitioning matches; here we just
        // check determinism per world size and consistency within it.
        let ds = toy_dataset(8);
        for world in [1, 3] {
            let mut cfg = FunctionalConfig::small();
            cfg.world = world;
            let a = train_functional(&cfg, &ds, 4).unwrap();
            let b = train_functional(&cfg, &ds, 4).unwrap();
            assert_eq!(a.losses, b.losses, "world {world} not deterministic");
            assert!(a.ranks_consistent);
        }
    }

    #[test]
    fn traced_training_is_observational_only() {
        let ds = toy_dataset(8);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 4).unwrap();

        let tracer = dos_telemetry::Tracer::new();
        let mut cfg = FunctionalConfig::small();
        cfg.pipeline.stride = StridePolicy::Fixed(2);
        cfg.tracer = Some(tracer.clone());
        let mut plain_cfg = FunctionalConfig::small();
        plain_cfg.pipeline.stride = StridePolicy::Fixed(2);
        let reference = train_functional(&plain_cfg, &ds, 4).unwrap();
        let traced = train_functional(&cfg, &ds, 4).unwrap();

        // Tracing never perturbs the math (and interleaving matches plain
        // training, so the untraced default agrees too).
        assert_eq!(traced.losses, reference.losses);
        assert_eq!(traced.final_params, reference.final_params);
        assert_eq!(traced.losses, plain.losses);

        // Every rank thread has its own track, and the hybrid pipeline
        // recorded wall-clock prefetch/update/flush spans on the shared
        // cpu / device-worker tracks.
        let tracks = tracer.tracks();
        assert!(tracks.iter().any(|t| t == "rank0"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "rank1"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "cpu"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "device-worker"), "{tracks:?}");
        let events = tracer.events();
        let count = |track: &str, prefix: &str| {
            events.iter().filter(|e| e.track == track && e.name.starts_with(prefix)).count()
        };
        // 2 ranks x 4 iterations of phase spans on the rank tracks.
        for rank in ["rank0", "rank1"] {
            assert_eq!(count(rank, "fwd-bwd:it"), 4);
            assert_eq!(count(rank, "grad-exchange:it"), 4);
            assert_eq!(count(rank, "hybrid-update:it"), 4);
            assert_eq!(count(rank, "all-gather:it"), 4);
        }
        assert!(count("cpu", "prefetch:sg") > 0);
        assert!(count("device-worker", "update:sg") > 0);
        assert!(count("device-worker", "flush:sg") > 0);
        // Wall-clock spans: durations are non-negative and the trace ends
        // after it starts.
        assert!(events.iter().all(|e| e.dur >= 0.0));
        let tl = tracer.to_timeline();
        assert!(tl.end_time() > 0.0);
    }

    #[test]
    fn adaptive_stride_trains_identically_to_fixed() {
        let ds = toy_dataset(8);
        let mut fixed_cfg = FunctionalConfig::small();
        fixed_cfg.pipeline.stride = StridePolicy::Fixed(2);
        let mut adaptive_cfg = FunctionalConfig::small();
        adaptive_cfg.pipeline.stride = StridePolicy::Adaptive;
        let fixed = train_functional(&fixed_cfg, &ds, 6).unwrap();
        let adaptive = train_functional(&adaptive_cfg, &ds, 6).unwrap();
        // The tuner may move the stride mid-run; §4.1 says the numerics
        // never notice, so adaptive training is bitwise identical to any
        // fixed stride (the tuner seeds at k = 2 and changes only the
        // schedule, never the math).
        assert_eq!(fixed.losses, adaptive.losses);
        assert_eq!(fixed.final_params, adaptive.final_params);
        assert!(adaptive.ranks_consistent);
    }

    #[test]
    fn adaptive_stride_with_shared_tracer_records_pipeline_spans() {
        let ds = toy_dataset(8);
        let tracer = dos_telemetry::Tracer::new();
        let mut cfg = FunctionalConfig::small();
        cfg.world = 1;
        cfg.pipeline.stride = StridePolicy::Adaptive;
        cfg.tracer = Some(tracer.clone());
        let report = train_functional(&cfg, &ds, 4).unwrap();
        assert_eq!(report.losses.len(), 4);
        // The tuner reads the same spans any traced run records; they must
        // still be present (observation does not consume them).
        let events = tracer.events();
        assert!(events.iter().any(|e| e.name.starts_with("update:sg")));
        assert!(events.iter().any(|e| e.name.starts_with("hybrid-update:it")));
    }

    #[test]
    fn headroom_tuner_shrinks_residents_without_changing_numerics() {
        use dos_control::ResidentPolicy;
        let ds = toy_dataset(8);
        let mut base = FunctionalConfig::small();
        base.world = 1;
        base.subgroup_size = 512;
        base.pipeline.stride = StridePolicy::Fixed(2);
        base.pipeline.static_residents = 4;
        let reference = train_functional(&base, &ds, 5).unwrap();

        // Hopeless staging budget: every iteration's arena high-water
        // overshoots it, so the headroom policy must shrink the resident
        // tail — visibly, via control instants — while the training math
        // stays bitwise identical (§4.1: scheduling never moves numerics).
        let tracer = dos_telemetry::Tracer::new();
        let mut constrained = base.clone();
        constrained.pipeline.stride = StridePolicy::Adaptive;
        constrained.tuner = WallClockTunerConfig {
            residents: ResidentPolicy::Headroom { fraction: 1.0, cap: 0.5 },
            host_budget_bytes: 1,
            ..WallClockTunerConfig::default()
        };
        constrained.tracer = Some(tracer.clone());
        let run = train_functional(&constrained, &ds, 5).unwrap();
        assert_eq!(run.losses, reference.losses);
        assert_eq!(run.final_params, reference.final_params);
        let names: Vec<String> =
            tracer.control_instants().iter().map(|ev| ev.name.clone()).collect();
        assert!(
            names.iter().any(|n| n.contains("residents 4->")),
            "expected a resident-shrink decision, saw {names:?}"
        );
    }

    #[test]
    fn traced_training_exports_arena_gauges() {
        let ds = toy_dataset(8);
        let tracer = dos_telemetry::Tracer::new();
        let mut cfg = FunctionalConfig::small();
        cfg.tracer = Some(tracer.clone());
        train_functional(&cfg, &ds, 3).unwrap();
        let m = tracer.metrics();
        assert_eq!(m.gauge("arena.in_use_bytes"), Some(0.0), "all leases returned");
        assert!(m.gauge("arena.high_water_bytes").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn final_params_are_fp16_representable() {
        let cfg = FunctionalConfig::small();
        let ds = toy_dataset(8);
        let report = train_functional(&cfg, &ds, 3).unwrap();
        for &p in report.final_params.iter().take(500) {
            assert_eq!(p, F16::from_f32(p).to_f32(), "param {p} not a device fp16 value");
        }
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use dos_optim::LrSchedule;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn warmup_schedule_trains() {
        let mut cfg = FunctionalConfig::small();
        cfg.lr_schedule = Some(LrSchedule::WarmupCosine {
            peak: 8e-3,
            warmup_steps: 3,
            total_steps: 12,
            min_factor: 0.1,
        });
        let ds = toy_dataset(8);
        let r = train_functional(&cfg, &ds, 12).unwrap();
        assert!(r.ranks_consistent);
        assert!(r.losses[11] < r.losses[0], "{:?}", r.losses);
    }

    #[test]
    fn clipping_changes_but_does_not_break_training() {
        let ds = toy_dataset(8);
        let mut clipped = FunctionalConfig::small();
        clipped.grad_clip = Some(0.5);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 8).unwrap();
        let capped = train_functional(&clipped, &ds, 8).unwrap();
        assert!(capped.ranks_consistent);
        assert_ne!(plain.losses, capped.losses, "a 0.5 clip should bind early");
        assert!(capped.losses[7] < capped.losses[0]);
    }

    #[test]
    fn checkpointed_training_is_bitwise_identical() {
        let ds = toy_dataset(8);
        let mut ckpt = FunctionalConfig::small();
        ckpt.activation_checkpointing = true;
        let plain = train_functional(&FunctionalConfig::small(), &ds, 5).unwrap();
        let recomputed = train_functional(&ckpt, &ds, 5).unwrap();
        assert_eq!(plain.losses, recomputed.losses);
        assert_eq!(plain.final_params, recomputed.final_params);
    }
}

#[cfg(test)]
mod loss_scaling_tests {
    use super::*;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn loss_scaled_training_matches_unscaled() {
        // Power-of-two scales are exact in f32, so the trajectories agree
        // bitwise when nothing overflows.
        let ds = toy_dataset(8);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 8).unwrap();
        let mut cfg = FunctionalConfig::small();
        cfg.loss_scale = Some(1024.0);
        let scaled = train_functional(&cfg, &ds, 8).unwrap();
        assert_eq!(plain.losses, scaled.losses);
        assert_eq!(plain.final_params, scaled.final_params);
        assert!(scaled.ranks_consistent);
    }
}

#[cfg(test)]
mod checkpoint_in_training_tests {
    use super::*;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("dos-train-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn training_writes_restorable_checkpoints() {
        let dir = tmp_dir("write");
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 1; // rank 0 owns the full state, so the snapshot is total
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 4;
        let run = train_functional(&cfg, &ds, 8).unwrap();

        // The last snapshot (iteration 8) restores to the final state.
        let store = CheckpointStore::open(&dir, cfg.checkpoint_keep).unwrap();
        let (loaded, path) = store.latest_valid().unwrap();
        assert_eq!(loaded.iteration, 8);
        assert_eq!(path, store.path_for(8));
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = dos_nn::Gpt::new(cfg.model.clone(), &mut rng);
        let state = loaded.restore(&mut model).unwrap();
        // The restored optimizer master params, downscaled to the device
        // copy, match the run's final parameters.
        let device: Vec<f32> =
            state.downscale_range(0..state.len()).iter().map(|h| h.to_f32()).collect();
        assert_eq!(&device[..run.final_params.len()], &run.final_params[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The kill-and-resume invariant: interrupt training after a
    /// checkpoint, resume from the newest valid snapshot, and the final
    /// state is bitwise identical to the uninterrupted run's.
    #[test]
    fn resume_from_checkpoint_is_bitwise_identical() {
        let dir = tmp_dir("resume");
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 1;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 2;

        let uninterrupted = {
            let mut c = cfg.clone();
            c.checkpoint_dir = None;
            train_functional(&c, &ds, 8).unwrap()
        };

        // "Crash" after 5 iterations (latest checkpoint is at iteration 4).
        train_functional(&cfg, &ds, 5).unwrap();
        let store = CheckpointStore::open(&dir, cfg.checkpoint_keep).unwrap();
        let (ckpt, _) = store.latest_valid().unwrap();
        assert_eq!(ckpt.iteration, 4);

        // Resume and run the remaining 4 iterations (4 done + 4 = 8).
        let mut resumed_cfg = cfg.clone();
        resumed_cfg.resume = Some(ckpt);
        let resumed = train_functional(&resumed_cfg, &ds, 4).unwrap();

        assert_eq!(resumed.final_params, uninterrupted.final_params);
        assert_eq!(
            resumed.losses[..],
            uninterrupted.losses[4..],
            "resumed losses must continue the uninterrupted trajectory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoints hold the full gathered optimizer state, so a multi-rank
    /// world resumes from a multi-rank run's snapshot bitwise-exactly.
    #[test]
    fn resume_with_multiple_ranks_matches_uninterrupted() {
        let dir = tmp_dir("multiworld-resume");
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 2;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 2;

        let uninterrupted = {
            let mut c = cfg.clone();
            c.checkpoint_dir = None;
            train_functional(&c, &ds, 8).unwrap()
        };

        // "Crash" after 5 iterations (latest checkpoint is at iteration 4).
        train_functional(&cfg, &ds, 5).unwrap();
        let store = CheckpointStore::open(&dir, cfg.checkpoint_keep).unwrap();
        let (ckpt, _) = store.latest_valid().unwrap();
        assert_eq!(ckpt.iteration, 4);

        let mut resumed_cfg = cfg.clone();
        resumed_cfg.resume = Some(ckpt);
        let resumed = train_functional(&resumed_cfg, &ds, 4).unwrap();

        assert!(resumed.ranks_consistent);
        assert_eq!(resumed.final_params, uninterrupted.final_params);
        assert_eq!(
            resumed.losses[..],
            uninterrupted.losses[4..],
            "resumed losses must continue the uninterrupted trajectory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod degraded_training_tests {
    use super::*;
    use dos_core::DeviceFault;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    /// A device worker dying every single step still trains byte-for-byte
    /// like a healthy run — the end-to-end §4.1 claim under faults.
    #[test]
    fn worker_faults_do_not_change_training() {
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 1;
        cfg.subgroup_size = 512; // enough subgroups for the device path
        let healthy = train_functional(&cfg, &ds, 5).unwrap();
        assert_eq!(healthy.degraded_steps, 0);

        for fault in [DeviceFault::PanicAfter(1), DeviceFault::DisconnectAfter(0)] {
            let mut faulty = cfg.clone();
            faulty.pipeline.fault_injection = Some(fault);
            let run = train_functional(&faulty, &ds, 5).unwrap();
            assert_eq!(run.losses, healthy.losses, "{fault:?} changed the losses");
            assert_eq!(run.final_params, healthy.final_params, "{fault:?} changed the params");
            assert_eq!(run.degraded_steps, 5, "{fault:?} should degrade every step");
        }
    }
}

#[cfg(test)]
mod elastic_tests {
    use super::*;
    use dos_collectives::{DisconnectPoint, DisconnectRule};
    use std::time::Instant;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("dos-train-elastic-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Satellite 3, detection half: a rank dies *inside* a collective at a
    /// seeded point; under the Error policy the survivors surface a typed
    /// failure within the deadline — they never hang.
    #[test]
    fn killing_a_rank_mid_collective_is_a_typed_error_within_the_deadline() {
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 3;
        cfg.collective_timeout = Some(Duration::from_millis(500));
        cfg.transport_faults = Some(TransportFaultPlan {
            disconnects: vec![DisconnectRule { rank: 1, at: DisconnectPoint::Epoch(2) }],
            ..TransportFaultPlan::none(7)
        });
        let started = Instant::now();
        match train_functional(&cfg, &ds, 4) {
            Err(TrainError::Collective(
                CollectiveError::RankFailed { .. } | CollectiveError::Timeout { .. },
            )) => {}
            other => panic!("expected a rank-failure error, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "failure detection must be deadline-bounded, took {:?}",
            started.elapsed()
        );
    }

    /// Satellite 3, recovery half: under the Elastic policy a permanent
    /// rank disconnect shrinks the world and training continues from the
    /// latest checkpoint — bitwise identical to a fresh start from that
    /// same checkpoint at the reduced world size.
    #[test]
    fn elastic_restart_is_bitwise_identical_to_fresh_start_from_checkpoint() {
        let ds = toy_dataset(8);
        let elastic_dir = tmp_dir("evict");
        let baseline_dir = tmp_dir("baseline");

        let tracer = dos_telemetry::Tracer::new();
        let mut cfg = FunctionalConfig::small();
        cfg.world = 2;
        cfg.checkpoint_dir = Some(elastic_dir.clone());
        cfg.checkpoint_every = 2;
        cfg.collective_timeout = Some(Duration::from_secs(2));
        cfg.on_rank_failure = RankFailurePolicy::Elastic;
        cfg.transport_faults = Some(TransportFaultPlan {
            disconnects: vec![DisconnectRule { rank: 1, at: DisconnectPoint::Epoch(3) }],
            ..TransportFaultPlan::none(11)
        });
        cfg.tracer = Some(tracer.clone());
        let elastic = train_functional(&cfg, &ds, 6).unwrap();
        assert_eq!(elastic.recoveries, 1, "exactly one eviction");
        assert_eq!(elastic.final_world, 1, "world shrank by the dead rank");
        let names: Vec<String> = tracer.events().into_iter().map(|e| e.name).collect();
        assert!(names.iter().any(|n| n == "fault:collective:evict"), "{names:?}");
        assert!(names.iter().any(|n| n == "health:degraded"), "{names:?}");

        // Baseline: the same trajectory up to the checkpoint the elastic
        // run rewound to (iteration 2, before the epoch-3 disconnect), then
        // a fresh resume at the reduced world with a clean transport.
        let mut pre = FunctionalConfig::small();
        pre.world = 2;
        pre.checkpoint_dir = Some(baseline_dir.clone());
        pre.checkpoint_every = 2;
        train_functional(&pre, &ds, 2).unwrap();
        let (ckpt, _) = CheckpointStore::open(&baseline_dir, pre.checkpoint_keep)
            .unwrap()
            .latest_valid()
            .unwrap();
        assert_eq!(ckpt.iteration, 2);
        let mut fresh = FunctionalConfig::small();
        fresh.world = 1;
        fresh.resume = Some(ckpt);
        let baseline = train_functional(&fresh, &ds, 4).unwrap();

        assert_eq!(
            elastic.final_params, baseline.final_params,
            "elastic continuation must match a fresh reduced-world resume bitwise"
        );
        assert_eq!(elastic.losses, baseline.losses);
        let _ = std::fs::remove_dir_all(&elastic_dir);
        let _ = std::fs::remove_dir_all(&baseline_dir);
    }

    /// The UDS backend speaks the real wire protocol (length-prefixed
    /// checksummed frames over sockets) yet must be numerically invisible:
    /// the same run over `inproc` and `uds` is bitwise identical.
    #[cfg(unix)]
    #[test]
    fn uds_transport_matches_inproc_bitwise() {
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 2;
        let reference = train_functional(&cfg, &ds, 3).unwrap();

        let dir = tmp_dir("uds");
        let mut uds = cfg.clone();
        uds.transport = TransportBackend::Uds(dir.clone());
        uds.collective_timeout = Some(Duration::from_secs(10));
        let run = train_functional(&uds, &ds, 3).unwrap();
        assert!(run.ranks_consistent);
        assert_eq!(run.losses, reference.losses, "losses diverged over UDS");
        assert_eq!(run.final_params, reference.final_params, "params diverged over UDS");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The JSON `"collectives"` entry maps onto the run config — and its
    /// validation failures surface instead of silently defaulting.
    #[test]
    fn collectives_entry_applies_to_the_run_config() {
        let entry: dos_train::CollectivesEntry = serde_json::from_str(
            r#"{ "collective_timeout_ms": 1500, "on_rank_failure": "elastic" }"#,
        )
        .unwrap();
        let mut cfg = FunctionalConfig::small();
        cfg.apply_collectives(&entry).unwrap();
        assert_eq!(cfg.transport, TransportBackend::InProc);
        assert_eq!(cfg.collective_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(cfg.on_rank_failure, RankFailurePolicy::Elastic);

        let entry: dos_train::CollectivesEntry = serde_json::from_str(
            r#"{ "transport": "uds", "socket_dir": "/tmp/dos-uds-mesh" }"#,
        )
        .unwrap();
        let mut cfg = FunctionalConfig::small();
        cfg.apply_collectives(&entry).unwrap();
        assert_eq!(cfg.transport, TransportBackend::Uds("/tmp/dos-uds-mesh".into()));
        assert_eq!(cfg.on_rank_failure, RankFailurePolicy::Error);

        let entry: dos_train::CollectivesEntry =
            serde_json::from_str(r#"{ "transport": "uds" }"#).unwrap();
        assert!(FunctionalConfig::small().apply_collectives(&entry).is_err());
    }

    /// Acceptance: DP=4 training under a pinned seeded plan of drops and
    /// delays is bitwise identical to the fault-free run — retransmission
    /// is sequence-numbered and idempotent all the way up the stack.
    #[test]
    fn dp4_training_under_lossy_transport_is_bitwise_identical() {
        let ds = toy_dataset(8);
        let mut clean = FunctionalConfig::small();
        clean.world = 4;
        let reference = train_functional(&clean, &ds, 4).unwrap();

        let tracer = dos_telemetry::Tracer::new();
        let mut lossy = clean.clone();
        lossy.collective_timeout = Some(Duration::from_secs(30));
        lossy.transport_faults = Some(TransportFaultPlan {
            drop_p: 0.05,
            delay_ticks: Some((1, 3)),
            ..TransportFaultPlan::none(7)
        });
        lossy.tracer = Some(tracer.clone());
        let run = train_functional(&lossy, &ds, 4).unwrap();
        assert_eq!(run.recoveries, 0);
        assert!(run.ranks_consistent);
        assert_eq!(run.losses, reference.losses, "losses diverged under loss");
        assert_eq!(run.final_params, reference.final_params, "params diverged under loss");
        // The plan actually fired: injected faults are visible as
        // fault:collective:* instants (flight-recorder bait).
        assert!(
            tracer.events().iter().any(|e| e.name.starts_with("fault:collective:")),
            "expected injected-fault instants in the trace"
        );
    }
}

#[cfg(test)]
mod evaluate_tests {
    use super::*;

    #[test]
    fn training_improves_heldout_perplexity() {
        let stream: Vec<usize> = (0..3000).map(|i| (i * 7 + 3) % 61).collect();
        let full = TokenDataset::from_stream(&stream, 8);
        let (train, valid) = full.split(0.2);
        let cfg = FunctionalConfig::small();
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = dos_nn::Gpt::new(cfg.model.clone(), &mut rng);
        let (_, ppl_before) = evaluate(&mut model, &valid);

        let report = train_functional(&cfg, &train, 15).unwrap();
        model.scatter_params(&report.final_params);
        let (loss_after, ppl_after) = evaluate(&mut model, &valid);
        assert!(
            ppl_after < ppl_before,
            "held-out perplexity should improve: {ppl_before} -> {ppl_after}"
        );
        assert!((loss_after.exp() - ppl_after).abs() < 1e-3);
    }
}
