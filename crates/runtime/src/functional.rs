//! Functional data-parallel training with interleaved hybrid updates.
//!
//! End-to-end *real* training, tying every substrate together: each
//! data-parallel rank runs on its own OS thread with its own `dos-nn` model
//! replica and a disjoint `dos-data` shard; gradients are reduce-scattered
//! with `dos-collectives`; each rank updates only its own ZeRO-style
//! optimizer shard through the `dos-core` interleaved hybrid pipeline
//! (CPU thread + device worker); updated FP16 parameters are all-gathered
//! back. This is the paper's training loop in miniature — with real
//! numerics instead of a timing model.

use dos_collectives::Communicator;
use dos_core::PipelineConfig;
use dos_data::{DataLoader, TokenDataset};
use dos_nn::{Gpt, GptConfig, VisitParams};
use dos_optim::{clip_grad_norm, DynamicLossScaler, LrSchedule, MixedPrecisionState, UpdateRule};
use dos_zero::{partition_into_subgroups, rank_range};

/// Configuration of a functional training run.
#[derive(Debug, Clone)]
pub struct FunctionalConfig {
    /// Model architecture (use small configurations; this is real math).
    pub model: GptConfig,
    /// Data-parallel world size (threads).
    pub world: usize,
    /// Micro-batch size per rank.
    pub micro_batch: usize,
    /// Optimizer rule.
    pub rule: UpdateRule,
    /// Learning rate.
    pub lr: f32,
    /// Subgroup size in parameters for the hybrid pipeline.
    pub subgroup_size: usize,
    /// Interleaving configuration (stride, static residents).
    pub pipeline: PipelineConfig,
    /// Seed for model init and data shuffling.
    pub seed: u64,
    /// Learning-rate schedule overriding the constant `lr` when set.
    pub lr_schedule: Option<LrSchedule>,
    /// Global gradient-norm clip applied after the all-reduce, when set.
    pub grad_clip: Option<f32>,
    /// Run forward/backward with activation checkpointing (recompute
    /// per-block activations during backward), as the paper's runs do.
    pub activation_checkpointing: bool,
    /// Initial dynamic loss scale (mixed-precision recipe); `None` disables
    /// loss scaling.
    pub loss_scale: Option<f32>,
    /// Checkpoint rank 0's model + optimizer shard to this path every
    /// `checkpoint_every` iterations, written asynchronously while training
    /// continues.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Checkpoint interval in iterations (ignored without a path).
    pub checkpoint_every: usize,
    /// Wall-clock tracer shared by every rank thread. Each rank records
    /// phase spans onto its own `rank{r}` track, and the hybrid pipeline
    /// records prefetch/update/flush spans onto the shared `cpu` and
    /// `device-worker` tracks. `None` disables tracing entirely (the
    /// update path is bitwise identical either way).
    pub tracer: Option<dos_telemetry::Tracer>,
}

impl FunctionalConfig {
    /// A small default: tiny GPT, 2 ranks, Adam, stride-2 interleaving.
    pub fn small() -> FunctionalConfig {
        FunctionalConfig {
            model: GptConfig::tiny(),
            world: 2,
            micro_batch: 2,
            rule: UpdateRule::adam(),
            lr: 5e-3,
            subgroup_size: 4096,
            pipeline: PipelineConfig::default(),
            seed: 42,
            lr_schedule: None,
            grad_clip: None,
            activation_checkpointing: false,
            loss_scale: None,
            checkpoint_path: None,
            checkpoint_every: 10,
            tracer: None,
        }
    }
}

/// Outcome of a functional run.
#[derive(Debug, Clone)]
pub struct FunctionalReport {
    /// Mean training loss per iteration (averaged across ranks).
    pub losses: Vec<f32>,
    /// Whether all ranks ended with bit-identical parameters.
    pub ranks_consistent: bool,
    /// Final parameters of rank 0 (FP16-rounded device copy).
    pub final_params: Vec<f32>,
}

/// Mean cross-entropy loss and perplexity of a model over an entire
/// dataset (single process, no gradients).
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate(model: &mut Gpt, dataset: &TokenDataset) -> (f32, f32) {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let mut total = 0.0f64;
    for i in 0..dataset.len() {
        let (x, y) = dataset.sample(i);
        total += model.loss_only(x, y, 1, dataset.seq_len()) as f64;
    }
    let mean = (total / dataset.len() as f64) as f32;
    (mean, mean.exp())
}

/// Pads `v` with zeros to a multiple of `world`.
fn pad_to_multiple(mut v: Vec<f32>, world: usize) -> Vec<f32> {
    let rem = v.len() % world;
    if rem != 0 {
        v.resize(v.len() + world - rem, 0.0);
    }
    v
}

/// Trains `iterations` steps of data-parallel, ZeRO-sharded, interleaved
/// hybrid training; returns per-iteration losses and a consistency check.
///
/// # Panics
///
/// Panics if `cfg.world` is zero, the dataset cannot fill a micro-batch per
/// rank, or a rank thread panics.
pub fn train_functional(
    cfg: &FunctionalConfig,
    dataset: &TokenDataset,
    iterations: usize,
) -> FunctionalReport {
    assert!(cfg.world > 0, "world must be positive");
    let comms = Communicator::world(cfg.world);

    let results: Vec<(Vec<f32>, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    run_rank(cfg, dataset, iterations, comm)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });

    let losses = results[0].0.clone();
    let final_params = results[0].1.clone();
    let ranks_consistent = results.iter().all(|(_, p)| *p == final_params);
    FunctionalReport { losses, ranks_consistent, final_params }
}

/// One rank's training loop.
fn run_rank(
    cfg: &FunctionalConfig,
    dataset: &TokenDataset,
    iterations: usize,
    comm: Communicator,
) -> (Vec<f32>, Vec<f32>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let rank = comm.rank();
    let world = comm.world_size();
    if let Some(t) = &cfg.tracer {
        t.set_thread_track(&format!("rank{rank}"));
    }
    // Identical init on every rank (same seed).
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = Gpt::new(cfg.model.clone(), &mut rng);
    let mut loader = DataLoader::new(rank, world, cfg.micro_batch, cfg.seed ^ 0x5EED);

    // ZeRO-style shard: this rank owns the optimizer state of its range of
    // the (padded) flat parameter space.
    let init = pad_to_multiple(model.gather_params(), world);
    let padded_n = init.len();
    let shard = rank_range(padded_n, rank, world);
    let mut state =
        MixedPrecisionState::new(init[shard.clone()].to_vec(), cfg.rule, cfg.lr);
    let subgroups = partition_into_subgroups(shard.len(), cfg.subgroup_size);

    let mut scaler = cfg.loss_scale.map(DynamicLossScaler::new);
    let mut checkpointer = crate::checkpoint::AsyncCheckpointer::new();
    let mut losses = Vec::with_capacity(iterations);
    for it in 0..iterations {
        let batch = loader.next_batch(dataset);
        let fwd_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("fwd-bwd:it{it}"), "forward-backward"));
        let loss = match (&scaler, cfg.activation_checkpointing) {
            (Some(s), _) => model.loss_and_backward_scaled(
                &batch.inputs,
                &batch.targets,
                batch.batch,
                batch.seq_len,
                s.scale(),
            ),
            (None, true) => model.loss_and_backward_checkpointed(
                &batch.inputs,
                &batch.targets,
                batch.batch,
                batch.seq_len,
            ),
            (None, false) => {
                model.loss_and_backward(&batch.inputs, &batch.targets, batch.batch, batch.seq_len)
            }
        };

        drop(fwd_span);

        // Average gradients across ranks; keep only this rank's shard
        // (ZeRO's reduce-scatter).
        let comm_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("grad-exchange:it{it}"), "communicate"));
        let mut grads = pad_to_multiple(model.gather_grads(), world);
        // Unscale (and overflow-check) before any reduction; all ranks see
        // the same values, so the skip decision is globally consistent.
        if let Some(s) = scaler.as_mut() {
            if !s.unscale_check(&mut grads) {
                // Overflow: skip this step (gradients were zeroed, so the
                // collectives below still participate and stay in lockstep).
            }
        }
        let inv = 1.0 / world as f32;
        // Global-norm clipping must see the *averaged full* gradient so all
        // ranks compute the same scale; do it before the scatter.
        if let Some(max_norm) = cfg.grad_clip {
            comm.all_reduce_sum(&mut grads).expect("uniform gradient lengths");
            for g in grads.iter_mut() {
                *g *= inv;
            }
            clip_grad_norm(&mut grads, max_norm);
            // Already averaged: scatter without re-reducing.
        }
        let mut shard_grads = if cfg.grad_clip.is_some() {
            let shard = rank_range(grads.len(), rank, world);
            grads[shard].to_vec()
        } else {
            comm.reduce_scatter_sum(&grads).expect("uniform gradient lengths")
        };
        if cfg.grad_clip.is_none() {
            for g in shard_grads.iter_mut() {
                *g *= inv;
            }
        }
        drop(comm_span);
        if let Some(schedule) = cfg.lr_schedule {
            state.set_lr(schedule.lr_at(it as u64 + 1));
        }

        // Interleaved hybrid update of this rank's shard (real threads,
        // Algorithm 1's structure).
        let report = match &cfg.tracer {
            Some(t) => {
                let _sp = t.span(&format!("hybrid-update:it{it}"), "update");
                dos_core::hybrid_update_traced(&mut state, &shard_grads, &subgroups, cfg.pipeline, t)
            }
            None => dos_core::hybrid_update(&mut state, &shard_grads, &subgroups, cfg.pipeline),
        };

        // All-gather the updated FP16 parameters (the device copies every
        // rank trains the next iteration with).
        let gather_span =
            cfg.tracer.as_ref().map(|t| t.span(&format!("all-gather:it{it}"), "communicate"));
        let shard_fp16: Vec<f32> = report.fp16_params.iter().map(|h| h.to_f32()).collect();
        let mut full = comm.all_gather(&shard_fp16).expect("uniform shard lengths");
        full.truncate(model.num_params());
        model.scatter_params(&full);
        model.zero_grads();
        drop(gather_span);

        // Rank 0 snapshots its state at update boundaries and writes it in
        // the background (the DataStates-style asynchronous flush the
        // host-resident state enables, §2). The capture is an owned copy,
        // so training continues immediately.
        if let Some(path) = &cfg.checkpoint_path {
            if rank == 0 && (it + 1) % cfg.checkpoint_every.max(1) == 0 {
                let snapshot =
                    crate::checkpoint::TrainingCheckpoint::capture(&mut model, &state, it + 1);
                checkpointer
                    .save_async(snapshot, path.clone())
                    .expect("previous checkpoint write failed");
            }
        }

        // Average the loss across ranks for reporting.
        let mut l = vec![loss];
        comm.all_reduce_sum(&mut l).expect("scalar");
        losses.push(l[0] * inv);
    }
    checkpointer.drain().expect("final checkpoint write failed");
    let finals = model.gather_params();
    (losses, finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_core::StridePolicy;
    use dos_tensor::F16;

    fn toy_dataset(seq: usize) -> TokenDataset {
        // A predictable cyclic token stream the tiny model can learn.
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn loss_decreases_and_ranks_stay_consistent() {
        let cfg = FunctionalConfig::small();
        let ds = toy_dataset(8);
        let report = train_functional(&cfg, &ds, 12);
        assert_eq!(report.losses.len(), 12);
        assert!(report.ranks_consistent, "ranks diverged");
        let first: f32 = report.losses[..3].iter().sum::<f32>() / 3.0;
        let last: f32 = report.losses[9..].iter().sum::<f32>() / 3.0;
        assert!(last < first * 0.9, "loss did not improve: {first} -> {last}");
    }

    #[test]
    fn interleaving_matches_cpu_only_training_exactly() {
        let ds = toy_dataset(8);
        let mut cpu_cfg = FunctionalConfig::small();
        cpu_cfg.pipeline.stride = StridePolicy::CpuOnly;
        let mut hybrid_cfg = FunctionalConfig::small();
        hybrid_cfg.pipeline.stride = StridePolicy::Fixed(2);
        let cpu = train_functional(&cpu_cfg, &ds, 6);
        let hybrid = train_functional(&hybrid_cfg, &ds, 6);
        // The paper's consistency claim end-to-end: interleaved offloading
        // does not change training at all.
        assert_eq!(cpu.losses, hybrid.losses);
        assert_eq!(cpu.final_params, hybrid.final_params);
    }

    #[test]
    fn world_sizes_agree_on_the_math() {
        // Different DP degrees shard differently but compute the same
        // global batch only when batch partitioning matches; here we just
        // check determinism per world size and consistency within it.
        let ds = toy_dataset(8);
        for world in [1, 3] {
            let mut cfg = FunctionalConfig::small();
            cfg.world = world;
            let a = train_functional(&cfg, &ds, 4);
            let b = train_functional(&cfg, &ds, 4);
            assert_eq!(a.losses, b.losses, "world {world} not deterministic");
            assert!(a.ranks_consistent);
        }
    }

    #[test]
    fn traced_training_is_observational_only() {
        let ds = toy_dataset(8);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 4);

        let tracer = dos_telemetry::Tracer::new();
        let mut cfg = FunctionalConfig::small();
        cfg.pipeline.stride = StridePolicy::Fixed(2);
        cfg.tracer = Some(tracer.clone());
        let mut plain_cfg = FunctionalConfig::small();
        plain_cfg.pipeline.stride = StridePolicy::Fixed(2);
        let reference = train_functional(&plain_cfg, &ds, 4);
        let traced = train_functional(&cfg, &ds, 4);

        // Tracing never perturbs the math (and interleaving matches plain
        // training, so the untraced default agrees too).
        assert_eq!(traced.losses, reference.losses);
        assert_eq!(traced.final_params, reference.final_params);
        assert_eq!(traced.losses, plain.losses);

        // Every rank thread has its own track, and the hybrid pipeline
        // recorded wall-clock prefetch/update/flush spans on the shared
        // cpu / device-worker tracks.
        let tracks = tracer.tracks();
        assert!(tracks.iter().any(|t| t == "rank0"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "rank1"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "cpu"), "{tracks:?}");
        assert!(tracks.iter().any(|t| t == "device-worker"), "{tracks:?}");
        let events = tracer.events();
        let count = |track: &str, prefix: &str| {
            events.iter().filter(|e| e.track == track && e.name.starts_with(prefix)).count()
        };
        // 2 ranks x 4 iterations of phase spans on the rank tracks.
        for rank in ["rank0", "rank1"] {
            assert_eq!(count(rank, "fwd-bwd:it"), 4);
            assert_eq!(count(rank, "grad-exchange:it"), 4);
            assert_eq!(count(rank, "hybrid-update:it"), 4);
            assert_eq!(count(rank, "all-gather:it"), 4);
        }
        assert!(count("cpu", "prefetch:sg") > 0);
        assert!(count("device-worker", "update:sg") > 0);
        assert!(count("device-worker", "flush:sg") > 0);
        // Wall-clock spans: durations are non-negative and the trace ends
        // after it starts.
        assert!(events.iter().all(|e| e.dur >= 0.0));
        let tl = tracer.to_timeline();
        assert!(tl.end_time() > 0.0);
    }

    #[test]
    fn final_params_are_fp16_representable() {
        let cfg = FunctionalConfig::small();
        let ds = toy_dataset(8);
        let report = train_functional(&cfg, &ds, 3);
        for &p in report.final_params.iter().take(500) {
            assert_eq!(p, F16::from_f32(p).to_f32(), "param {p} not a device fp16 value");
        }
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use dos_optim::LrSchedule;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn warmup_schedule_trains() {
        let mut cfg = FunctionalConfig::small();
        cfg.lr_schedule = Some(LrSchedule::WarmupCosine {
            peak: 8e-3,
            warmup_steps: 3,
            total_steps: 12,
            min_factor: 0.1,
        });
        let ds = toy_dataset(8);
        let r = train_functional(&cfg, &ds, 12);
        assert!(r.ranks_consistent);
        assert!(r.losses[11] < r.losses[0], "{:?}", r.losses);
    }

    #[test]
    fn clipping_changes_but_does_not_break_training() {
        let ds = toy_dataset(8);
        let mut clipped = FunctionalConfig::small();
        clipped.grad_clip = Some(0.5);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 8);
        let capped = train_functional(&clipped, &ds, 8);
        assert!(capped.ranks_consistent);
        assert_ne!(plain.losses, capped.losses, "a 0.5 clip should bind early");
        assert!(capped.losses[7] < capped.losses[0]);
    }

    #[test]
    fn checkpointed_training_is_bitwise_identical() {
        let ds = toy_dataset(8);
        let mut ckpt = FunctionalConfig::small();
        ckpt.activation_checkpointing = true;
        let plain = train_functional(&FunctionalConfig::small(), &ds, 5);
        let recomputed = train_functional(&ckpt, &ds, 5);
        assert_eq!(plain.losses, recomputed.losses);
        assert_eq!(plain.final_params, recomputed.final_params);
    }
}

#[cfg(test)]
mod loss_scaling_tests {
    use super::*;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn loss_scaled_training_matches_unscaled() {
        // Power-of-two scales are exact in f32, so the trajectories agree
        // bitwise when nothing overflows.
        let ds = toy_dataset(8);
        let plain = train_functional(&FunctionalConfig::small(), &ds, 8);
        let mut cfg = FunctionalConfig::small();
        cfg.loss_scale = Some(1024.0);
        let scaled = train_functional(&cfg, &ds, 8);
        assert_eq!(plain.losses, scaled.losses);
        assert_eq!(plain.final_params, scaled.final_params);
        assert!(scaled.ranks_consistent);
    }
}

#[cfg(test)]
mod checkpoint_in_training_tests {
    use super::*;
    use crate::checkpoint::TrainingCheckpoint;

    fn toy_dataset(seq: usize) -> TokenDataset {
        let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
        TokenDataset::from_stream(&stream, seq)
    }

    #[test]
    fn training_writes_restorable_checkpoints() {
        let path = std::env::temp_dir()
            .join(format!("dos-train-ckpt-{}.json", std::process::id()));
        let ds = toy_dataset(8);
        let mut cfg = FunctionalConfig::small();
        cfg.world = 1; // rank 0 owns the full state, so the snapshot is total
        cfg.checkpoint_path = Some(path.clone());
        cfg.checkpoint_every = 4;
        let run = train_functional(&cfg, &ds, 8);

        // The last snapshot (iteration 8) restores to the final state.
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.iteration, 8);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = dos_nn::Gpt::new(cfg.model.clone(), &mut rng);
        let state = loaded.restore(&mut model);
        // The restored optimizer master params, downscaled to the device
        // copy, match the run's final parameters.
        let device: Vec<f32> =
            state.downscale_range(0..state.len()).iter().map(|h| h.to_f32()).collect();
        assert_eq!(&device[..run.final_params.len()], &run.final_params[..]);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod evaluate_tests {
    use super::*;

    #[test]
    fn training_improves_heldout_perplexity() {
        let stream: Vec<usize> = (0..3000).map(|i| (i * 7 + 3) % 61).collect();
        let full = TokenDataset::from_stream(&stream, 8);
        let (train, valid) = full.split(0.2);
        let cfg = FunctionalConfig::small();
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = dos_nn::Gpt::new(cfg.model.clone(), &mut rng);
        let (_, ppl_before) = evaluate(&mut model, &valid);

        let report = train_functional(&cfg, &train, 15);
        model.scatter_params(&report.final_params);
        let (loss_after, ppl_after) = evaluate(&mut model, &valid);
        assert!(
            ppl_after < ppl_before,
            "held-out perplexity should improve: {ppl_before} -> {ppl_after}"
        );
        assert!((loss_after.exp() - ppl_after).abs() < 1e-3);
    }
}
