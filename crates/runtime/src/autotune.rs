//! `dos-cli autotune`: race the adaptive control plane against the static
//! Equation 1 arm on a JSON-configured simulation.
//!
//! A thin façade over [`dos_control::race_adaptive_vs_static`]: it resolves
//! the [`RuntimeConfig`] onto the calibrated simulator, runs both arms
//! under the same pinned fault plan, grades the outcome (fault-free the
//! controller must match the static arm within tolerance; under faults it
//! must not lose), and optionally exports a Chrome trace of one adaptive
//! iteration with the `control:*` decision instants on their own track.

use std::path::PathBuf;

use dos_control::{race_adaptive_vs_static, ControllerConfig, DegradationSpec, RaceReport};
use dos_telemetry::Tracer;
use serde::{Deserialize, Serialize};

use crate::config::RuntimeConfig;

/// Fault-free runs pass when the adaptive and static totals agree within
/// this relative tolerance (the convergence half of the headline
/// invariant); faulted runs pass when adaptive does not lose outright.
pub const AUTOTUNE_PARITY_TOLERANCE: f64 = 0.05;

/// Options of one `autotune` run.
#[derive(Debug, Clone)]
pub struct AutotuneOptions {
    /// Iterations to race (both arms).
    pub iterations: usize,
    /// Seed pinning the fault plan.
    pub seed: u64,
    /// Degradation windows applied identically to both arms.
    pub faults: Vec<DegradationSpec>,
    /// Export a Chrome trace of one adaptive iteration here (the first
    /// faulted iteration when faults are given, iteration 0 otherwise),
    /// control instants included.
    pub trace_out: Option<PathBuf>,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        AutotuneOptions { iterations: 12, seed: 0, faults: Vec::new(), trace_out: None }
    }
}

/// Outcome of one `autotune` run: the race report plus the graded verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneOutcome {
    /// The side-by-side race results.
    pub report: RaceReport,
    /// Whether the run met its acceptance bar (see
    /// [`AUTOTUNE_PARITY_TOLERANCE`]).
    pub passed: bool,
    /// `control:*` decision instants recorded on the control track.
    pub control_instants: usize,
}

/// Runs the adaptive-vs-static race described by `config` and `opts`.
///
/// # Errors
///
/// Returns a rendered error string when the config does not resolve, the
/// simulation fails, or the trace cannot be exported.
pub fn run_autotune(
    config: &RuntimeConfig,
    opts: &AutotuneOptions,
) -> Result<AutotuneOutcome, String> {
    if opts.iterations == 0 {
        return Err("autotune needs at least one iteration".to_string());
    }
    let train = config.resolve().map_err(|e| e.to_string())?;
    let tracer = Tracer::new();
    // Replay the most interesting iteration into the trace: the first one
    // a fault covers, or the seeding iteration on a clean run.
    let replay = opts
        .faults
        .iter()
        .map(|s| s.from_iter)
        .min()
        .unwrap_or(0)
        .min(opts.iterations - 1);
    let report = race_adaptive_vs_static(
        &train,
        ControllerConfig::default(),
        &opts.faults,
        opts.iterations,
        opts.seed,
        Some((&tracer, replay)),
    )
    .map_err(|e| e.to_string())?;

    let passed = if opts.faults.is_empty() {
        let rel = (report.adaptive_total - report.static_total).abs() / report.static_total;
        rel <= AUTOTUNE_PARITY_TOLERANCE
    } else {
        report.adaptive_total <= report.static_total
    };
    let control_instants = tracer.control_instants().len();

    if let Some(path) = &opts.trace_out {
        let trace = dos_telemetry::chrome_trace(&tracer);
        let rendered = serde_json::to_string_pretty(&trace)
            .map_err(|e| format!("cannot serialize trace: {e}"))?;
        std::fs::write(path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    Ok(AutotuneOutcome { report, passed, control_instants })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h100_config() -> RuntimeConfig {
        RuntimeConfig::from_json(
            r#"{ "model": "20B", "deep_optimizer_states": { "enabled": true } }"#,
        )
        .expect("valid config")
    }

    #[test]
    fn fault_free_autotune_passes_and_converges() {
        let opts = AutotuneOptions { iterations: 6, ..AutotuneOptions::default() };
        let out = run_autotune(&h100_config(), &opts).expect("runs");
        assert!(out.passed, "fault-free parity: {:#?}", out.report);
        assert_eq!(out.report.final_stride, "fixed(2)");
        assert!(out.control_instants >= 1, "at least the seed decision is traced");
    }

    #[test]
    fn faulted_autotune_wins_and_exports_control_instants() {
        let dir = std::env::temp_dir().join("dos-autotune-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace_path = dir.join("autotune-trace.json");
        let opts = AutotuneOptions {
            iterations: 12,
            seed: 7,
            faults: vec![DegradationSpec::parse("pcie.h2d:3..8@0.15").expect("valid")],
            trace_out: Some(trace_path.clone()),
        };
        let out = run_autotune(&h100_config(), &opts).expect("runs");
        assert!(out.passed, "adaptive must not lose under degradation: {:#?}", out.report);
        assert!(out.report.speedup() > 1.0);
        assert!(out.control_instants >= 1);
        let exported = std::fs::read_to_string(&trace_path).expect("trace written");
        assert!(exported.contains("control:"), "exported trace carries control instants");
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn zero_iterations_rejected() {
        let opts = AutotuneOptions { iterations: 0, ..AutotuneOptions::default() };
        assert!(run_autotune(&h100_config(), &opts).is_err());
    }
}
