//! Seeded chaos campaigns over the fault-tolerance machinery.
//!
//! `dos-cli chaos` drives this module: a deterministic battery of injected
//! failures — device-worker kills mid-update, torn checkpoint writes, PCIe
//! degradation windows, and transient transfer faults — each paired with
//! the invariant the middleware must uphold:
//!
//! * a degraded hybrid update stays **byte-exact** with the sequential CPU
//!   reference and loses no subgroup update;
//! * a crash recovers from the **newest valid checkpoint** and replays to a
//!   **bitwise identical** final state;
//! * simulated faults surface as **trace instants** and delay — never
//!   drop — scheduled operations;
//! * with `--transport-faults SPEC`, DP training over a fault-injected
//!   transport absorbs transient faults **bitwise** (sequence-numbered
//!   retransmits) and survives permanent rank failures by **elastic
//!   degradation** at reduced world size.
//!
//! Every check is reproducible from its seed; any broken invariant makes
//! the CLI exit nonzero.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use dos_collectives::TransportFaultPlan;
use dos_core::{hybrid_update, DeviceFault, PipelineConfig};
use dos_hal::{FaultPlan, SimTime};
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_sim::simulate_iteration_faulted;
use dos_telemetry::Tracer;
use dos_zero::partition_into_subgroups;

use dos_train::checkpoint::CheckpointStore;
use crate::config::{ConfigError, RuntimeConfig};
use crate::functional::{train_functional, FunctionalConfig, RankFailurePolicy};

/// One class of injected fault a campaign can include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A simulated PCIe degradation window (bandwidth collapses for part
    /// of the iteration).
    Degrade,
    /// Transient simulated transfer failures that must be retried.
    TransferFail,
    /// A real device-worker thread killed mid-update (panic and silent
    /// disconnect).
    WorkerKill,
    /// A torn/corrupted newest checkpoint at recovery time.
    CkptCorrupt,
}

impl FaultKind {
    /// Parses a comma-separated fault spec, e.g.
    /// `degrade,worker-kill`. An empty spec selects every kind.
    ///
    /// # Errors
    ///
    /// Returns the offending token for unknown fault names.
    pub fn parse_spec(spec: &str) -> Result<Vec<FaultKind>, String> {
        if spec.trim().is_empty() {
            return Ok(FaultKind::all().to_vec());
        }
        spec.split(',')
            .map(|tok| match tok.trim() {
                "degrade" => Ok(FaultKind::Degrade),
                "transfer-fail" => Ok(FaultKind::TransferFail),
                "worker-kill" => Ok(FaultKind::WorkerKill),
                "ckpt-corrupt" => Ok(FaultKind::CkptCorrupt),
                other => Err(format!(
                    "unknown fault kind `{other}` (expected degrade, transfer-fail, \
                     worker-kill, ckpt-corrupt)"
                )),
            })
            .collect()
    }

    /// Every fault kind, in campaign order.
    pub fn all() -> [FaultKind; 4] {
        [FaultKind::Degrade, FaultKind::TransferFail, FaultKind::WorkerKill, FaultKind::CkptCorrupt]
    }
}

/// Options for a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Seed every injected fault derives from (same seed → same campaign).
    pub seed: u64,
    /// Which fault kinds to include.
    pub faults: Vec<FaultKind>,
    /// Where to write the Chrome trace of the faulted simulated iteration
    /// (fault instants included), if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Where to write the flight-recorder dump produced by the monitored
    /// worker-kill check — and, when a transport-faults spec is set, by
    /// the transport check (which runs last and overwrites it with a dump
    /// containing the `fault:collective:*` instants), if anywhere.
    pub flight_out: Option<PathBuf>,
    /// Transport fault spec (the [`TransportFaultPlan::parse`] grammar,
    /// e.g. `drop:0.05,delay:1..3,disconnect:rank1@iter3`). When present,
    /// the campaign additionally runs DP=4 functional training over a
    /// fault-injected transport and verifies the retransmit/elastic
    /// invariants.
    pub transport_faults: Option<String>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0,
            faults: FaultKind::all().to_vec(),
            trace_out: None,
            flight_out: None,
            transport_faults: None,
        }
    }
}

/// One verified invariant of the campaign.
#[derive(Debug, Clone)]
pub struct ChaosCheck {
    /// Stable check name (one per invariant).
    pub name: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// What was injected and what was observed.
    pub detail: String,
}

/// Outcome of a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// Every invariant checked, in execution order.
    pub checks: Vec<ChaosCheck>,
}

impl ChaosReport {
    /// Whether every checked invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the campaign as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!("chaos campaign (seed {})\n", self.seed);
        for c in &self.checks {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            out.push_str(&format!("  [{mark}] {:<32} {}\n", c.name, c.detail));
        }
        out
    }
}

/// Deterministic pseudo-random stream for deriving campaign parameters
/// (splitmix64 — matches the HAL fault plan's generator family).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the seeded campaign: every selected fault kind is injected and its
/// invariant verified. The report's `passed()` drives the CLI exit code.
///
/// # Errors
///
/// Returns [`ConfigError`] only when `config` itself cannot be resolved;
/// broken invariants are reported as failed checks, not errors.
pub fn run_chaos(
    config: &RuntimeConfig,
    opts: &ChaosOptions,
) -> Result<ChaosReport, ConfigError> {
    with_quiet_injected_panics(|| {
        let mut checks = Vec::new();
        let kill = opts.faults.contains(&FaultKind::WorkerKill);
        let degrade = opts.faults.contains(&FaultKind::Degrade);
        let transfer = opts.faults.contains(&FaultKind::TransferFail);
        let corrupt = opts.faults.contains(&FaultKind::CkptCorrupt);

        if kill {
            checks.push(check_degraded_pipeline(opts.seed));
            checks.push(check_degraded_training(opts.seed));
            checks.push(check_monitored_incident(opts.seed, opts.flight_out.as_deref()));
        }
        if corrupt {
            checks.push(check_checkpoint_recovery(opts.seed));
        }
        if degrade || transfer {
            checks.push(check_sim_faults(config, opts, degrade, transfer)?);
        }
        if let Some(spec) = &opts.transport_faults {
            checks.push(check_transport_faults(opts.seed, spec, opts.flight_out.as_deref()));
        }

        Ok(ChaosReport { seed: opts.seed, checks })
    })
}

/// The worker-kill checks deliberately panic device-worker threads; keep
/// those expected backtraces off the campaign's stderr while leaving every
/// other panic loud.
fn with_quiet_injected_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::panic;
    use std::sync::Arc;

    type Hook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;
    let prev: Arc<Hook> = Arc::new(panic::take_hook());
    let chained = Arc::clone(&prev);
    panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if !msg.contains("injected device fault") {
            chained(info);
        }
    }));
    let out = f();
    drop(panic::take_hook());
    if let Ok(original) = Arc::try_unwrap(prev) {
        panic::set_hook(original);
    }
    out
}

/// Worker kills at seeded points: the degraded hybrid update must stay
/// byte-exact with `full_step` and account for every subgroup.
fn check_degraded_pipeline(seed: u64) -> ChaosCheck {
    let name = "pipeline-degradation-byte-exact".to_string();
    let mut rng = seed;
    let n = 1500 + (splitmix64(&mut rng) % 500) as usize;
    let sg = 64 + (splitmix64(&mut rng) % 64) as usize;
    let subgroups = partition_into_subgroups(n, sg);
    let shipped = subgroups.len() / 2; // stride 2 ships every other subgroup

    let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0 - 0.4).collect();
    let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
    let mut reference = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
    reference.full_step(&grads);

    let kill_points: Vec<usize> =
        (0..4).map(|_| (splitmix64(&mut rng) as usize) % shipped.max(1)).collect();
    let mut cases = 0;
    let mut lost_total = 0;
    for &at in &kill_points {
        for fault in [DeviceFault::PanicAfter(at), DeviceFault::DisconnectAfter(at)] {
            let mut state = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
            let cfg = PipelineConfig { fault_injection: Some(fault), ..Default::default() };
            let report = match hybrid_update(&mut state, &grads, &subgroups, cfg) {
                Ok(r) => r,
                Err(e) => {
                    return ChaosCheck {
                        name,
                        passed: false,
                        detail: format!("{fault:?}: pipeline error {e}"),
                    }
                }
            };
            if state.params() != reference.params()
                || state.momentum() != reference.momentum()
                || state.variance() != reference.variance()
            {
                return ChaosCheck {
                    name,
                    passed: false,
                    detail: format!("{fault:?}: degraded update diverged from full_step"),
                };
            }
            if report.device_subgroups + report.cpu_subgroups != subgroups.len() {
                return ChaosCheck {
                    name,
                    passed: false,
                    detail: format!(
                        "{fault:?}: {} + {} subgroups accounted, expected {}",
                        report.device_subgroups,
                        report.cpu_subgroups,
                        subgroups.len()
                    ),
                };
            }
            match report.degraded {
                Some(d) => lost_total += d.lost_jobs_retried_on_cpu,
                None => {
                    return ChaosCheck {
                        name,
                        passed: false,
                        detail: format!("{fault:?}: worker loss went unreported"),
                    }
                }
            }
            cases += 1;
        }
    }
    ChaosCheck {
        name,
        passed: true,
        detail: format!(
            "{cases} worker kills over {} subgroups, all byte-exact; {lost_total} lost jobs \
             retried on CPU",
            subgroups.len()
        ),
    }
}

/// End-to-end: training with a worker that dies every step must match a
/// healthy run bitwise.
fn check_degraded_training(seed: u64) -> ChaosCheck {
    let name = "degraded-training-matches-healthy".to_string();
    let mut rng = seed;
    let stream: Vec<usize> = (0..1500).map(|i| (i * 7 + 3) % 61).collect();
    let ds = dos_data::TokenDataset::from_stream(&stream, 8);
    let mut cfg = FunctionalConfig::small();
    cfg.world = 1;
    cfg.subgroup_size = 512;
    cfg.seed = seed ^ 0xC0DE;
    let iters = 4;

    let healthy = match train_functional(&cfg, &ds, iters) {
        Ok(r) => r,
        Err(e) => return ChaosCheck { name, passed: false, detail: format!("healthy run: {e}") },
    };
    let kill_at = (splitmix64(&mut rng) % 3) as usize;
    for fault in [DeviceFault::PanicAfter(kill_at), DeviceFault::DisconnectAfter(kill_at)] {
        let mut faulty = cfg.clone();
        faulty.pipeline.fault_injection = Some(fault);
        let run = match train_functional(&faulty, &ds, iters) {
            Ok(r) => r,
            Err(e) => {
                return ChaosCheck { name, passed: false, detail: format!("{fault:?}: {e}") }
            }
        };
        if run.losses != healthy.losses || run.final_params != healthy.final_params {
            return ChaosCheck {
                name,
                passed: false,
                detail: format!("{fault:?}: degraded training diverged from healthy run"),
            };
        }
        if run.degraded_steps == 0 {
            return ChaosCheck {
                name,
                passed: false,
                detail: format!("{fault:?}: no step reported degradation"),
            };
        }
    }
    ChaosCheck {
        name,
        passed: true,
        detail: format!(
            "worker killed after {kill_at} jobs every step (panic + disconnect), \
             {iters}-iteration runs bitwise identical to healthy"
        ),
    }
}

/// A monitored trainer under an injected worker kill: the incident must
/// surface end-to-end through the production-monitoring layer — a
/// degraded iteration report, a `health:degraded` instant, and an
/// automatic flight-recorder dump whose ring context still contains the
/// pipeline's `fault:device-worker` instant.
fn check_monitored_incident(seed: u64, flight_out: Option<&std::path::Path>) -> ChaosCheck {
    let name = "monitored-incident-flight-dump".to_string();
    let mut rng = seed;
    let n = 1000 + (splitmix64(&mut rng) % 200) as usize;
    let json = format!(
        r#"{{ "params": {n}, "subgroup_size": 128,
              "deep_optimizer_states": {{ "update_stride": 2 }},
              "monitor": {{ "flight_capacity": 512 }} }}"#
    );
    let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0 - 0.4).collect();
    let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
    let mut trainer = match dos_train::Trainer::from_json(&json, init) {
        Ok(t) => t,
        Err(e) => return ChaosCheck { name, passed: false, detail: format!("build: {e}") },
    };
    // Healthy steps first, so the dump has pre-incident ring context.
    for _ in 0..2 {
        if let Err(e) = trainer.step(&grads) {
            return ChaosCheck { name, passed: false, detail: format!("healthy step: {e}") };
        }
    }
    let kill_at = (splitmix64(&mut rng) % 2) as usize;
    trainer.inject_fault(Some(DeviceFault::PanicAfter(kill_at)));
    let report = match trainer.step(&grads) {
        Ok(r) => r,
        Err(e) => return ChaosCheck { name, passed: false, detail: format!("faulted step: {e}") },
    };
    if report.degraded.is_none() {
        return ChaosCheck {
            name,
            passed: false,
            detail: "injected worker kill did not degrade the step".to_string(),
        };
    }
    if !trainer.last_iteration().is_some_and(|r| r.degraded) {
        return ChaosCheck {
            name,
            passed: false,
            detail: "iteration report did not carry the degradation".to_string(),
        };
    }
    let Some(dump) = trainer.tracer().and_then(|t| t.flight()).and_then(|f| f.last_dump())
    else {
        return ChaosCheck {
            name,
            passed: false,
            detail: "no automatic flight dump was produced".to_string(),
        };
    };
    let has_fault = dump.events.iter().any(|e| e.name == "fault:device-worker");
    let has_health = dump.reason.starts_with("health:degraded")
        || dump.events.iter().any(|e| e.name == "health:degraded");
    if !has_fault || !has_health {
        return ChaosCheck {
            name,
            passed: false,
            detail: format!(
                "flight dump (reason {:?}, {} events) missing fault/health context",
                dump.reason,
                dump.events.len()
            ),
        };
    }
    if let Some(out) = flight_out {
        if let Err(e) = std::fs::write(out, dump.to_json()) {
            return ChaosCheck {
                name,
                passed: false,
                detail: format!("write {}: {e}", out.display()),
            };
        }
    }
    ChaosCheck {
        name,
        passed: true,
        detail: format!(
            "worker killed after {kill_at} jobs under monitoring; flight dump ({:?}, {} events) \
             contains fault:device-worker and health:degraded",
            dump.reason,
            dump.events.len()
        ),
    }
}

/// Kill-and-resume with a torn newest checkpoint: recovery must fall back
/// to the newest valid snapshot and replay to a bitwise identical state.
fn check_checkpoint_recovery(seed: u64) -> ChaosCheck {
    let name = "checkpoint-recovery-bitwise".to_string();
    let dir = std::env::temp_dir()
        .join(format!("dos-chaos-ckpt-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = checkpoint_recovery_inner(seed, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(detail) => ChaosCheck { name, passed: true, detail },
        Err(detail) => ChaosCheck { name, passed: false, detail },
    }
}

fn checkpoint_recovery_inner(seed: u64, dir: &std::path::Path) -> Result<String, String> {
    let stream: Vec<usize> = (0..1500).map(|i| (i * 7 + 3) % 61).collect();
    let ds = dos_data::TokenDataset::from_stream(&stream, 8);
    let mut cfg = FunctionalConfig::small();
    cfg.world = 1;
    cfg.seed = seed ^ 0x5EED;
    cfg.checkpoint_dir = Some(dir.to_path_buf());
    cfg.checkpoint_every = 2;
    let total = 8;

    let uninterrupted = {
        let mut c = cfg.clone();
        c.checkpoint_dir = None;
        train_functional(&c, &ds, total).map_err(|e| format!("uninterrupted run: {e}"))?
    };

    // "Crash" after 5 iterations: checkpoints exist at iterations 2 and 4.
    train_functional(&cfg, &ds, 5).map_err(|e| format!("interrupted run: {e}"))?;
    let store = CheckpointStore::open(dir, cfg.checkpoint_keep)
        .map_err(|e| format!("open store: {e}"))?;

    // Tear the newest checkpoint mid-file, as a crash during a non-atomic
    // copy would.
    let newest = store.path_for(4);
    let bytes = std::fs::read(&newest).map_err(|e| format!("read {}: {e}", newest.display()))?;
    std::fs::write(&newest, &bytes[..bytes.len() / 2])
        .map_err(|e| format!("truncate {}: {e}", newest.display()))?;

    let (ckpt, path) = store.latest_valid().map_err(|e| format!("recovery: {e}"))?;
    if ckpt.iteration != 2 {
        return Err(format!(
            "fallback picked iteration {} from {}, expected 2",
            ckpt.iteration,
            path.display()
        ));
    }
    let resumed_from = ckpt.iteration;
    let mut resume_cfg = cfg.clone();
    resume_cfg.checkpoint_dir = None;
    resume_cfg.resume = Some(ckpt);
    let resumed = train_functional(&resume_cfg, &ds, total - resumed_from)
        .map_err(|e| format!("resumed run: {e}"))?;

    if resumed.final_params != uninterrupted.final_params {
        return Err("resumed final params differ from uninterrupted run".to_string());
    }
    if resumed.losses[..] != uninterrupted.losses[resumed_from..] {
        return Err("resumed loss trajectory differs from uninterrupted run".to_string());
    }
    Ok(format!(
        "newest checkpoint torn, recovered from iteration {resumed_from}, replayed to \
         iteration {total} bitwise identical"
    ))
}

/// DP=4 functional training over a fault-injected transport. Transient
/// faults (drops, duplications, delays) must be absorbed by the
/// sequence-numbered retransmit path with the run staying **bitwise
/// identical** to a fault-free one; permanent failures (disconnects,
/// partitions) must trigger elastic degradation — evict the dead rank,
/// rebuild at reduced world size from the latest crash-consistent
/// checkpoint, finish the run. Either way the injections surface as
/// `fault:collective:*` instants, and the flight dump written to
/// `flight_out` carries them for post-mortem.
fn check_transport_faults(
    seed: u64,
    spec: &str,
    flight_out: Option<&std::path::Path>,
) -> ChaosCheck {
    let name = "transport-faults-dp-training".to_string();
    let plan = match TransportFaultPlan::parse(spec, seed) {
        Ok(p) => p,
        Err(e) => {
            return ChaosCheck { name, passed: false, detail: format!("bad fault spec: {e}") }
        }
    };
    let dir = std::env::temp_dir()
        .join(format!("dos-chaos-transport-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = transport_faults_inner(seed, &plan, &dir, flight_out);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(detail) => ChaosCheck { name, passed: true, detail },
        Err(detail) => ChaosCheck { name, passed: false, detail },
    }
}

fn transport_faults_inner(
    seed: u64,
    plan: &TransportFaultPlan,
    dir: &std::path::Path,
    flight_out: Option<&std::path::Path>,
) -> Result<String, String> {
    let stream: Vec<usize> = (0..2000).map(|i| (i * 7 + 3) % 61).collect();
    let ds = dos_data::TokenDataset::from_stream(&stream, 8);
    let world = 4;
    let iters = 4;
    let mut cfg = FunctionalConfig::small();
    cfg.world = world;
    cfg.subgroup_size = 512;
    cfg.seed = seed ^ 0x7A57;
    cfg.collective_timeout = Some(Duration::from_secs(30));

    let permanent = *plan != plan.without_permanent_failures();
    let tracer = Tracer::with_flight(65_536);
    let mut faulted = cfg.clone();
    faulted.transport_faults = Some(plan.clone());
    faulted.tracer = Some(tracer.clone());
    if permanent {
        faulted.on_rank_failure = RankFailurePolicy::Elastic;
        faulted.checkpoint_dir = Some(dir.to_path_buf());
        faulted.checkpoint_every = 1;
    }
    let run = train_functional(&faulted, &ds, iters).map_err(|e| format!("faulted run: {e}"))?;

    let fault_instants = tracer
        .events()
        .iter()
        .filter(|e| e.name.starts_with("fault:collective:"))
        .count();
    if !plan.is_noop() && fault_instants == 0 {
        return Err("injected transport faults left no fault:collective:* instants".to_string());
    }
    if !run.ranks_consistent {
        return Err("surviving ranks ended with inconsistent parameters".to_string());
    }
    let detail = if permanent {
        if run.recoveries == 0 {
            return Err("permanent rank failure triggered no elastic recovery".to_string());
        }
        if run.final_world >= world {
            return Err(format!(
                "world did not shrink under a permanent failure (final world {})",
                run.final_world
            ));
        }
        format!(
            "{fault_instants} fault instants; {} elastic eviction(s), finished at world \
             {} of {world}",
            run.recoveries, run.final_world
        )
    } else {
        // No permanent failure: retransmission must make the faults
        // invisible — bitwise identical to the fault-free run.
        let healthy =
            train_functional(&cfg, &ds, iters).map_err(|e| format!("fault-free run: {e}"))?;
        if run.recoveries != 0 || run.final_world != world {
            return Err(format!(
                "transient-only plan caused {} recoveries (final world {})",
                run.recoveries, run.final_world
            ));
        }
        if run.losses != healthy.losses || run.final_params != healthy.final_params {
            return Err("transient transport faults changed the numerics".to_string());
        }
        format!(
            "{fault_instants} fault instants absorbed by retransmission; DP={world} run \
             bitwise identical to fault-free"
        )
    };
    if let Some(out) = flight_out {
        let dump = tracer
            .flight()
            .ok_or_else(|| "tracer lost its flight recorder".to_string())?
            .dump("chaos:transport-faults");
        std::fs::write(out, dump.to_json()).map_err(|e| format!("write {}: {e}", out.display()))?;
    }
    Ok(detail)
}

/// Simulated PCIe degradation + transient transfer failures: fault events
/// must appear as trace instants, and every scheduled op must still run.
fn check_sim_faults(
    config: &RuntimeConfig,
    opts: &ChaosOptions,
    degrade: bool,
    transfer: bool,
) -> Result<ChaosCheck, ConfigError> {
    let name = "sim-faults-traced-not-dropped".to_string();
    let train = config.resolve()?;
    let sched = crate::sim_trainer::scheduler_for(config);

    let clean_tracer = Tracer::new();
    let clean = simulate_iteration_faulted(&train, sched.as_ref(), None, &clean_tracer)
        .map_err(|e| ConfigError::Invalid { detail: e.to_string() })?;

    let mut plan = FaultPlan::seeded(opts.seed);
    if degrade {
        // A bandwidth collapse spanning the middle of the iteration.
        let mid = clean.total_secs * 0.3;
        let end = clean.total_secs * 0.9;
        plan = plan.degrade("pcie.h2d", SimTime::from_secs(mid), SimTime::from_secs(end), 0.25);
    }
    if transfer {
        // Two transient failures on the first H2D op: retried, recovered.
        plan = plan.fail_nth("pcie.h2d", 0, 2);
    }

    let tracer = Tracer::new();
    let faulted = simulate_iteration_faulted(&train, sched.as_ref(), Some(&plan), &tracer)
        .map_err(|e| ConfigError::Invalid { detail: e.to_string() })?;

    let events = tracer.events();
    let instants: Vec<_> = events
        .iter()
        .filter(|e| e.track == "faults" && e.name.starts_with("fault:"))
        .collect();
    if transfer && instants.is_empty() {
        return Ok(ChaosCheck {
            name,
            passed: false,
            detail: "no fault instants recorded on the faults track".to_string(),
        });
    }

    // Faults delay ops but never drop them: the set of scheduled span
    // names must be unchanged (fault spans and instants excluded).
    let op_names = |tr: &Tracer| -> BTreeSet<String> {
        tr.events()
            .iter()
            .filter(|e| e.track != "faults" && !e.name.starts_with("fault:"))
            .map(|e| format!("{}/{}", e.track, e.name))
            .collect()
    };
    let clean_ops = op_names(&clean_tracer);
    let faulted_ops = op_names(&tracer);
    if clean_ops != faulted_ops {
        let missing: Vec<_> = clean_ops.difference(&faulted_ops).take(3).cloned().collect();
        return Ok(ChaosCheck {
            name,
            passed: false,
            detail: format!("faults dropped scheduled ops (e.g. {missing:?})"),
        });
    }
    if degrade && faulted.total_secs < clean.total_secs {
        return Ok(ChaosCheck {
            name,
            passed: false,
            detail: format!(
                "degraded iteration finished faster than clean one ({:.3}s < {:.3}s)",
                faulted.total_secs, clean.total_secs
            ),
        });
    }

    if let Some(out) = &opts.trace_out {
        let trace = dos_telemetry::chrome_trace(&tracer);
        let rendered = serde_json::to_string_pretty(&trace)
            .map_err(|e| ConfigError::Invalid { detail: format!("serialize trace: {e}") })?;
        std::fs::write(out, rendered)
            .map_err(|e| ConfigError::Invalid { detail: format!("write {}: {e}", out.display()) })?;
    }

    Ok(ChaosCheck {
        name,
        passed: true,
        detail: format!(
            "{} fault instants recorded, {} ops all preserved, iteration {:.3}s -> {:.3}s",
            instants.len(),
            clean_ops.len(),
            clean.total_secs,
            faulted.total_secs
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_campaign_passes_on_a_healthy_build() {
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let report = run_chaos(&config, &ChaosOptions::default()).unwrap();
        assert_eq!(report.checks.len(), 5, "{}", report.render());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn campaigns_are_reproducible_per_seed() {
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let opts = ChaosOptions {
            seed: 7,
            faults: vec![FaultKind::WorkerKill],
            trace_out: None,
            flight_out: None,
            transport_faults: None,
        };
        let a = run_chaos(&config, &opts).unwrap();
        let b = run_chaos(&config, &opts).unwrap();
        let details = |r: &ChaosReport| {
            r.checks.iter().map(|c| (c.name.clone(), c.passed, c.detail.clone())).collect::<Vec<_>>()
        };
        assert_eq!(details(&a), details(&b));
    }

    #[test]
    fn flight_out_writes_the_incident_dump() {
        let out = std::env::temp_dir()
            .join(format!("dos-chaos-flight-{}.json", std::process::id()));
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let opts = ChaosOptions {
            seed: 11,
            faults: vec![FaultKind::WorkerKill],
            trace_out: None,
            flight_out: Some(out.clone()),
            transport_faults: None,
        };
        let report = run_chaos(&config, &opts).unwrap();
        assert!(report.passed(), "{}", report.render());
        let text = std::fs::read_to_string(&out).unwrap();
        let dump = dos_telemetry::FlightDump::from_json(&text).unwrap();
        assert!(dump.events.iter().any(|e| e.name == "fault:device-worker"));
        assert!(dump.reason.starts_with("health:degraded"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn transport_faults_check_absorbs_transient_faults_bitwise() {
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let opts = ChaosOptions {
            seed: 7,
            faults: vec![],
            trace_out: None,
            flight_out: None,
            transport_faults: Some("drop:0.05,delay:1..2".to_string()),
        };
        let report = run_chaos(&config, &opts).unwrap();
        assert_eq!(report.checks.len(), 1, "{}", report.render());
        assert!(report.passed(), "{}", report.render());
        assert!(report.checks[0].detail.contains("bitwise identical"), "{}", report.render());
    }

    #[test]
    fn transport_faults_check_degrades_elastically_and_dumps_flight() {
        let out = std::env::temp_dir()
            .join(format!("dos-chaos-transport-flight-{}.json", std::process::id()));
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let opts = ChaosOptions {
            seed: 7,
            faults: vec![],
            trace_out: None,
            flight_out: Some(out.clone()),
            transport_faults: Some("drop:0.05,delay:1..3,disconnect:rank1@iter3".to_string()),
        };
        let report = run_chaos(&config, &opts).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert!(report.checks[0].detail.contains("eviction"), "{}", report.render());
        let text = std::fs::read_to_string(&out).unwrap();
        let dump = dos_telemetry::FlightDump::from_json(&text).unwrap();
        assert!(
            dump.events.iter().any(|e| e.name.starts_with("fault:collective:")),
            "flight dump missing fault:collective instants"
        );
        std::fs::remove_file(&out).ok();

        // A garbage spec is a failed check, not a crash.
        let opts = ChaosOptions {
            transport_faults: Some("drop:lots".to_string()),
            flight_out: None,
            ..opts
        };
        let report = run_chaos(&config, &opts).unwrap();
        assert!(!report.passed());
        assert!(report.checks[0].detail.contains("bad fault spec"), "{}", report.render());
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(FaultKind::parse_spec("").unwrap(), FaultKind::all().to_vec());
        assert_eq!(
            FaultKind::parse_spec("degrade, worker-kill").unwrap(),
            vec![FaultKind::Degrade, FaultKind::WorkerKill]
        );
        assert!(FaultKind::parse_spec("bogus").is_err());
    }

    #[test]
    fn trace_out_writes_fault_instants() {
        let out = std::env::temp_dir()
            .join(format!("dos-chaos-trace-{}.json", std::process::id()));
        let config = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
        let opts = ChaosOptions {
            seed: 3,
            faults: vec![FaultKind::Degrade, FaultKind::TransferFail],
            trace_out: Some(out.clone()),
            flight_out: None,
            transport_faults: None,
        };
        let report = run_chaos(&config, &opts).unwrap();
        assert!(report.passed(), "{}", report.render());
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("fault:pcie.h2d"), "fault instants missing from exported trace");
        std::fs::remove_file(&out).ok();
    }
}
