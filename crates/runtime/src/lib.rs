//! # dos-runtime — trainer facade and JSON configuration
//!
//! The user-facing surface of the *Deep Optimizer States* reproduction,
//! mirroring §4.4's packaging ("enabled and configured through a single
//! JSON entry in the configuration file given to the training runtime"):
//!
//! * [`RuntimeConfig`] — a DeepSpeed-style JSON document with a
//!   `"deep_optimizer_states"` entry; [`run_iteration`]/[`run_training`]
//!   resolve it onto the calibrated simulator with the right scheduler;
//! * [`train_functional`] — *real* data-parallel training: per-rank threads
//!   with `dos-nn` models, `dos-collectives` reduce-scatter/all-gather,
//!   ZeRO-sharded optimizer state, and the `dos-core` interleaved hybrid
//!   pipeline doing the updates.
//!
//! ```
//! use dos_runtime::{run_iteration, RuntimeConfig};
//! let cfg = RuntimeConfig::from_json(r#"{ "model": "7B" }"#)?;
//! let report = run_iteration(&cfg).unwrap();
//! assert!(report.total_secs > 0.0);
//! # Ok::<(), dos_runtime::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code on the fault-tolerant update path must surface failures as
// typed errors, never die on a stray unwrap; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod autotune;
mod chaos;
mod config;
mod functional;
mod monitor;
mod sim_trainer;

pub use autotune::{
    run_autotune, AutotuneOptions, AutotuneOutcome, AUTOTUNE_PARITY_TOLERANCE,
};
// Checkpointing moved down the stack into `dos-train` (so the serving
// control plane can preempt/resume without depending on this crate);
// re-exported here so existing `dos_runtime::CheckpointStore` paths hold.
pub use dos_train::checkpoint::{
    AsyncCheckpointer, CheckpointError, CheckpointStore, TrainingCheckpoint,
};
pub use chaos::{run_chaos, ChaosCheck, ChaosOptions, ChaosReport, FaultKind};
pub use config::{CollectivesEntry, ConfigError, DosEntry, NamedStride, RuntimeConfig, StrideEntry};
pub use functional::{
    evaluate, train_functional, FunctionalConfig, FunctionalReport, RankFailurePolicy, TrainError,
    TransportBackend,
};
pub use monitor::{run_monitor, MonitorOptions, MonitorOutcome};
pub use sim_trainer::{run_iteration, run_training, scheduler_for, trace_iteration};
