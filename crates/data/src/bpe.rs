//! Byte-pair encoding tokenizer, trained from scratch.
//!
//! Substitutes for the LLaMA-2 tokenizer the paper preprocesses with: a
//! classic byte-level BPE. Training greedily merges the most frequent
//! adjacent token pair until the target vocabulary size is reached; encoding
//! applies merges in training order.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A trained byte-pair encoder.
///
/// # Examples
///
/// ```
/// use dos_data::BpeTokenizer;
/// let tok = BpeTokenizer::train("the cat sat on the mat. the cat sat.", 300);
/// let ids = tok.encode("the cat");
/// assert_eq!(tok.decode(&ids), "the cat");
/// assert!(tok.vocab_size() >= 256);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    /// Merge rules in training order: (left, right) -> new token id.
    merges: Vec<(u32, u32)>,
    /// Token id -> byte sequence.
    vocab: Vec<Vec<u8>>,
}

impl BpeTokenizer {
    /// Trains a tokenizer on `text` up to `vocab_size` entries (at least the
    /// 256 byte tokens; merges stop early if no pair repeats).
    pub fn train(text: &str, vocab_size: usize) -> BpeTokenizer {
        let mut vocab: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        let mut merges = Vec::new();
        let mut ids: Vec<u32> = text.bytes().map(u32::from).collect();

        while vocab.len() < vocab_size.max(256) {
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for w in ids.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            // Deterministic tie-break: highest count, then smallest pair.
            let best = counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some((pair, _)) = best else { break };
            let new_id = vocab.len() as u32;
            let mut bytes = vocab[pair.0 as usize].clone();
            bytes.extend_from_slice(&vocab[pair.1 as usize]);
            vocab.push(bytes);
            merges.push(pair);
            ids = Self::apply_merge(&ids, pair, new_id);
        }
        BpeTokenizer { merges, vocab }
    }

    fn apply_merge(ids: &[u32], pair: (u32, u32), new_id: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            if i + 1 < ids.len() && ids[i] == pair.0 && ids[i + 1] == pair.1 {
                out.push(new_id);
                i += 2;
            } else {
                out.push(ids[i]);
                i += 1;
            }
        }
        out
    }

    /// Number of tokens in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes text into token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = text.bytes().map(u32::from).collect();
        for (rank, &pair) in self.merges.iter().enumerate() {
            let new_id = (256 + rank) as u32;
            // Only scan if both halves can appear.
            ids = Self::apply_merge(&ids, pair, new_id);
        }
        ids
    }

    /// Decodes token ids back into text (lossy for invalid UTF-8).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            bytes.extend_from_slice(&self.vocab[id as usize]);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// The byte expansion of one token.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of vocabulary.
    pub fn token_bytes(&self, id: u32) -> &[u8] {
        &self.vocab[id as usize]
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Average bytes per token over `text` — the compression the tokenizer
    /// achieves (a trained tokenizer should beat 1.0 on in-domain text).
    pub fn bytes_per_token(&self, text: &str) -> f64 {
        let ids = self.encode(text);
        if ids.is_empty() {
            return 0.0;
        }
        text.len() as f64 / ids.len() as f64
    }

    /// Writes the tokenizer to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(std::io::Error::other)
    }

    /// Reads a tokenizer from `path`.
    ///
    /// # Errors
    ///
    /// Returns I/O or deserialization errors.
    pub fn load(path: &std::path::Path) -> std::io::Result<BpeTokenizer> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_lossless() {
        let text = "hello hello world, the quick brown fox! \u{1F600}";
        let tok = BpeTokenizer::train(text, 300);
        assert_eq!(tok.decode(&tok.encode(text)), text);
        // Also round-trips text it was not trained on.
        let other = "completely different zebra text";
        assert_eq!(tok.decode(&tok.encode(other)), other);
    }

    #[test]
    fn merges_compress_repeated_text() {
        let text = "ababababababababab abab abab";
        let tok = BpeTokenizer::train(text, 300);
        let ids = tok.encode("abababab");
        assert!(ids.len() < 8, "expected compression, got {} tokens", ids.len());
    }

    #[test]
    fn vocab_grows_to_target_when_data_allows() {
        let text = "the cat sat on the mat and the dog sat on the log ".repeat(20);
        let tok = BpeTokenizer::train(&text, 280);
        assert_eq!(tok.vocab_size(), 280);
    }

    #[test]
    fn training_is_deterministic() {
        let text = "deterministic deterministic determinism";
        let a = BpeTokenizer::train(text, 280);
        let b = BpeTokenizer::train(text, 280);
        assert_eq!(a.encode(text), b.encode(text));
    }

    #[test]
    fn stops_when_no_pair_repeats() {
        let tok = BpeTokenizer::train("abcdefg", 1000);
        assert!(tok.vocab_size() < 300);
    }

    #[test]
    fn token_bytes_expansion() {
        let tok = BpeTokenizer::train("aaaa aaaa", 260);
        assert_eq!(tok.token_bytes(b'a' as u32), b"a");
        assert!(tok.merge_count() >= 1);
    }

    #[test]
    fn trained_tokenizer_compresses_in_domain_text() {
        let text = "the quick brown fox jumps over the lazy dog ".repeat(30);
        let tok = BpeTokenizer::train(&text, 400);
        assert!(
            tok.bytes_per_token(&text) > 1.8,
            "compression {} too weak",
            tok.bytes_per_token(&text)
        );
        // Byte-level fallback on out-of-domain text: still >= 1 byte/token.
        assert!(tok.bytes_per_token("zzz qqq xxx") >= 1.0);
    }

    #[test]
    fn save_load_round_trip() {
        let tok = BpeTokenizer::train("persistence persistence persist", 300);
        let path = std::env::temp_dir()
            .join(format!("dos-bpe-test-{}.json", std::process::id()));
        tok.save(&path).unwrap();
        let loaded = BpeTokenizer::load(&path).unwrap();
        let sample = "persist this text";
        assert_eq!(tok.encode(sample), loaded.encode(sample));
        assert_eq!(tok.vocab_size(), loaded.vocab_size());
        std::fs::remove_file(&path).ok();
    }
}
