//! # dos-data — synthetic corpus, tokenizer, and data loading
//!
//! The data substrate of the *Deep Optimizer States* reproduction. The paper
//! fine-tunes on a 79 K-record OSCAR-en subset preprocessed with the LLaMA-2
//! tokenizer at sequence length 2048 (§5.3); since neither artifact is
//! redistributable, this crate substitutes:
//!
//! * [`Corpus::synthetic`] — a deterministic English-like document generator,
//! * [`BpeTokenizer`] — a from-scratch byte-pair encoder trained on it,
//! * [`TokenDataset`]/[`DataLoader`] — fixed-length sequence packing with
//!   per-epoch shuffling and disjoint data-parallel sharding.
//!
//! ```
//! use dos_data::{Corpus, BpeTokenizer, TokenDataset, DataLoader};
//!
//! let corpus = Corpus::synthetic(42, 50);
//! let tokenizer = BpeTokenizer::train(&corpus.joined_text(), 512);
//! let dataset = TokenDataset::pack(&corpus, &tokenizer, 32);
//! let mut loader = DataLoader::new(0, 2, 1, 7);
//! let batch = loader.next_batch(&dataset);
//! assert_eq!(batch.inputs.len(), 32);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bpe;
mod corpus;
mod dataset;

pub use bpe::BpeTokenizer;
pub use corpus::{Corpus, Record};
pub use dataset::{DataLoader, MicroBatch, TokenDataset};
