//! Token datasets and data-parallel loading.
//!
//! Mirrors the paper's data pipeline (§5.3): records are tokenized, packed
//! into fixed-length sequences (default 2048), shuffled per epoch, and
//! *partitioned among data-parallel ranks* so every rank sees a disjoint
//! shard (§2, "Data Parallelism").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::bpe::BpeTokenizer;
use crate::corpus::Corpus;

/// A packed dataset of fixed-length token sequences.
#[derive(Debug, Clone)]
pub struct TokenDataset {
    seq_len: usize,
    /// All sequences, each of length `seq_len + 1` (input + shifted target).
    sequences: Vec<Vec<usize>>,
}

impl TokenDataset {
    /// Tokenizes a corpus and packs it into sequences of `seq_len + 1`
    /// tokens (so input/target pairs can be sliced without re-tokenizing).
    /// Trailing tokens that do not fill a sequence are dropped, as in GPT
    /// training.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is zero.
    pub fn pack(corpus: &Corpus, tokenizer: &BpeTokenizer, seq_len: usize) -> TokenDataset {
        assert!(seq_len > 0, "seq_len must be positive");
        let mut stream: Vec<usize> = Vec::new();
        for r in corpus.records() {
            stream.extend(tokenizer.encode(&r.text).into_iter().map(|t| t as usize));
        }
        let stride = seq_len + 1;
        let sequences = stream.chunks_exact(stride).map(|c| c.to_vec()).collect();
        TokenDataset { seq_len, sequences }
    }

    /// Builds directly from a flat token stream (tests, synthetic tasks).
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is zero.
    pub fn from_stream(stream: &[usize], seq_len: usize) -> TokenDataset {
        assert!(seq_len > 0, "seq_len must be positive");
        let stride = seq_len + 1;
        TokenDataset {
            seq_len,
            sequences: stream.chunks_exact(stride).map(|c| c.to_vec()).collect(),
        }
    }

    /// Sequence length of each sample.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of packed sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The `(input, target)` pair of sequence `i`, each `seq_len` long with
    /// targets shifted by one token.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&[usize], &[usize]) {
        let s = &self.sequences[i];
        (&s[..self.seq_len], &s[1..])
    }

    /// Splits off the last `fraction` of the sequences as a held-out set,
    /// returning `(train, validation)`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)` or either split would be
    /// empty.
    pub fn split(&self, fraction: f64) -> (TokenDataset, TokenDataset) {
        assert!((0.0..1.0).contains(&fraction) && fraction > 0.0, "fraction must be in (0, 1)");
        let n_valid = ((self.sequences.len() as f64) * fraction).round() as usize;
        assert!(
            n_valid > 0 && n_valid < self.sequences.len(),
            "split of {} sequences at {fraction} leaves an empty side",
            self.sequences.len()
        );
        let cut = self.sequences.len() - n_valid;
        (
            TokenDataset { seq_len: self.seq_len, sequences: self.sequences[..cut].to_vec() },
            TokenDataset { seq_len: self.seq_len, sequences: self.sequences[cut..].to_vec() },
        )
    }
}

/// A per-rank loader over a [`TokenDataset`]: shuffles indices each epoch
/// with a shared seed and serves this rank's shard in micro-batches.
#[derive(Debug, Clone)]
pub struct DataLoader {
    rank: usize,
    world: usize,
    micro_batch: usize,
    seed: u64,
    epoch: usize,
    cursor: usize,
    order: Vec<usize>,
}

/// One micro-batch of token ids: `batch * seq_len` inputs and targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroBatch {
    /// Flattened input token ids, row-major `[batch, seq_len]`.
    pub inputs: Vec<usize>,
    /// Flattened target token ids, same shape.
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl DataLoader {
    /// Creates a loader for `rank` of `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`, `rank >= world`, or `micro_batch == 0`.
    pub fn new(rank: usize, world: usize, micro_batch: usize, seed: u64) -> DataLoader {
        assert!(world > 0, "world must be positive");
        assert!(rank < world, "rank {rank} out of range for world {world}");
        assert!(micro_batch > 0, "micro_batch must be positive");
        DataLoader { rank, world, micro_batch, seed, epoch: 0, cursor: 0, order: Vec::new() }
    }

    fn reshuffle(&mut self, dataset_len: usize) {
        // All ranks derive the same permutation (shared seed + epoch), then
        // take a strided disjoint shard — the standard DDP sampler.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.epoch as u64).wrapping_mul(0x9E37));
        let mut all: Vec<usize> = (0..dataset_len).collect();
        all.shuffle(&mut rng);
        self.order = all.into_iter().skip(self.rank).step_by(self.world).collect();
        self.cursor = 0;
    }

    /// Returns the next micro-batch, advancing epochs as needed.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer samples in this rank's shard than one
    /// micro-batch.
    pub fn next_batch(&mut self, dataset: &TokenDataset) -> MicroBatch {
        if self.order.is_empty() {
            self.reshuffle(dataset.len());
        }
        assert!(
            self.order.len() >= self.micro_batch,
            "shard of {} samples cannot fill micro-batch {}",
            self.order.len(),
            self.micro_batch
        );
        if self.cursor + self.micro_batch > self.order.len() {
            self.epoch += 1;
            self.reshuffle(dataset.len());
        }
        let seq = dataset.seq_len();
        let mut inputs = Vec::with_capacity(self.micro_batch * seq);
        let mut targets = Vec::with_capacity(self.micro_batch * seq);
        for k in 0..self.micro_batch {
            let idx = self.order[self.cursor + k];
            let (x, y) = dataset.sample(idx);
            inputs.extend_from_slice(x);
            targets.extend_from_slice(y);
        }
        self.cursor += self.micro_batch;
        MicroBatch { inputs, targets, batch: self.micro_batch, seq_len: seq }
    }

    /// The epoch currently being served.
    pub fn epoch(&self) -> usize {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> TokenDataset {
        let stream: Vec<usize> = (0..105).map(|i| i % 13).collect();
        TokenDataset::from_stream(&stream, 4) // 105 / 5 = 21 sequences
    }

    #[test]
    fn packing_counts_and_shapes() {
        let ds = toy_dataset();
        assert_eq!(ds.len(), 21);
        assert_eq!(ds.seq_len(), 4);
        let (x, y) = ds.sample(0);
        assert_eq!(x.len(), 4);
        assert_eq!(y.len(), 4);
        // Target is input shifted by one.
        assert_eq!(&x[1..], &y[..3]);
    }

    #[test]
    fn pack_from_corpus_round_trip() {
        let corpus = Corpus::synthetic(3, 30);
        let tok = BpeTokenizer::train(&corpus.joined_text(), 300);
        let ds = TokenDataset::pack(&corpus, &tok, 16);
        assert!(!ds.is_empty());
        let (x, _) = ds.sample(0);
        assert!(x.iter().all(|&t| t < tok.vocab_size()));
    }

    #[test]
    fn ranks_get_disjoint_shards() {
        let ds = toy_dataset();
        let mut seen = Vec::new();
        for rank in 0..3 {
            let mut loader = DataLoader::new(rank, 3, 7, 99);
            let b = loader.next_batch(&ds);
            seen.push(b.inputs);
        }
        // Same epoch permutation, strided disjointly: no shared sequences.
        // (Compare first tokens of each sequence as a proxy for identity.)
        let firsts: Vec<Vec<usize>> =
            seen.iter().map(|v| v.chunks(4).map(|c| c[0]).collect()).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                // Sequences all start with distinct residues mod 13 pattern;
                // disjointness checked via multiset intersection size.
                let inter = firsts[i].iter().filter(|x| firsts[j].contains(x)).count();
                assert!(inter < firsts[i].len(), "ranks {i} and {j} fully overlap");
            }
        }
    }

    #[test]
    fn epochs_advance_and_reshuffle() {
        let ds = toy_dataset();
        let mut loader = DataLoader::new(0, 1, 10, 1);
        let b1 = loader.next_batch(&ds);
        let _b2 = loader.next_batch(&ds);
        assert_eq!(loader.epoch(), 0);
        let b3 = loader.next_batch(&ds); // 21 samples, third batch of 10 wraps
        assert_eq!(loader.epoch(), 1);
        assert_eq!(b3.batch, 10);
        assert_ne!(b1.inputs, b3.inputs);
    }

    #[test]
    fn loader_is_deterministic() {
        let ds = toy_dataset();
        let mut a = DataLoader::new(1, 2, 3, 5);
        let mut b = DataLoader::new(1, 2, 3, 5);
        assert_eq!(a.next_batch(&ds), b.next_batch(&ds));
    }

    #[test]
    fn split_partitions_disjointly() {
        let ds = toy_dataset(); // 21 sequences
        let (train, valid) = ds.split(0.2);
        assert_eq!(train.len() + valid.len(), ds.len());
        assert_eq!(valid.len(), 4);
        // The validation set is the tail.
        assert_eq!(valid.sample(0).0, ds.sample(train.len()).0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn split_fraction_validated() {
        toy_dataset().split(1.0);
    }

    #[test]
    #[should_panic(expected = "micro-batch")]
    fn oversized_micro_batch_panics() {
        let ds = toy_dataset();
        let mut loader = DataLoader::new(0, 1, 100, 1);
        let _ = loader.next_batch(&ds);
    }
}
