//! Synthetic text corpus generation.
//!
//! The paper fine-tunes on a 79 K-record subset of OSCAR-en. That corpus is
//! not redistributable here, so we substitute a deterministic synthetic
//! English-like corpus: a seeded Markov-style word sampler over a fixed
//! vocabulary with Zipfian frequencies. What matters to the reproduction is
//! the *shape* of the data pipeline — variable-length records that are
//! tokenized and packed into fixed 2048-token sequences — not the prose.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base word list the sampler composes from (frequent English words plus a
/// few domain words so merges are interesting for the BPE trainer).
const WORDS: &[&str] = &[
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it", "as", "was", "with", "be",
    "by", "on", "not", "he", "this", "are", "or", "his", "from", "at", "which", "but", "have",
    "an", "had", "they", "you", "were", "their", "one", "all", "we", "can", "her", "has",
    "there", "been", "if", "more", "when", "will", "would", "who", "so", "no", "she", "other",
    "its", "may", "these", "what", "them", "than", "some", "him", "time", "into", "only",
    "could", "new", "two", "first", "then", "do", "any", "my", "now", "such", "like", "our",
    "over", "man", "me", "even", "most", "made", "after", "also", "did", "many", "before",
    "must", "through", "years", "where", "much", "way", "well", "down", "should", "because",
    "each", "just", "those", "people", "how", "too", "little", "state", "good", "very",
    "make", "world", "still", "own", "see", "men", "work", "long", "get", "here", "between",
    "both", "life", "being", "under", "never", "day", "same", "another", "know", "while",
    "last", "might", "us", "great", "old", "year", "off", "come", "since", "against", "go",
    "came", "right", "used", "take", "three", "model", "training", "optimizer", "gradient",
    "memory", "transformer", "language", "system", "data", "parallel", "update", "state",
];

/// One synthetic document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Document id.
    pub id: usize,
    /// The text body.
    pub text: String,
}

/// Deterministic synthetic corpus generator.
///
/// # Examples
///
/// ```
/// use dos_data::Corpus;
/// let corpus = Corpus::synthetic(42, 10);
/// assert_eq!(corpus.records().len(), 10);
/// assert!(!corpus.records()[0].text.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    records: Vec<Record>,
}

impl Corpus {
    /// Generates `num_records` documents from `seed`. The same arguments
    /// always produce the same corpus.
    pub fn synthetic(seed: u64, num_records: usize) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let records = (0..num_records)
            .map(|id| {
                let sentences = rng.gen_range(2..8);
                let mut text = String::new();
                for _ in 0..sentences {
                    let words = rng.gen_range(5..20);
                    for w in 0..words {
                        // Zipf-flavoured: squared uniform biases toward the
                        // head of the word list.
                        let u: f64 = rng.gen();
                        let idx = ((u * u) * WORDS.len() as f64) as usize;
                        let word = WORDS[idx.min(WORDS.len() - 1)];
                        if w == 0 {
                            let mut cs = word.chars();
                            if let Some(c) = cs.next() {
                                text.extend(c.to_uppercase());
                                text.push_str(cs.as_str());
                            }
                        } else {
                            text.push(' ');
                            text.push_str(word);
                        }
                    }
                    text.push_str(". ");
                }
                Record { id, text: text.trim_end().to_string() }
            })
            .collect();
        Corpus { records }
    }

    /// The generated records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Total characters across all records.
    pub fn total_chars(&self) -> usize {
        self.records.iter().map(|r| r.text.len()).sum()
    }

    /// Concatenates all texts (used for tokenizer training).
    pub fn joined_text(&self) -> String {
        let mut out = String::with_capacity(self.total_chars() + self.records.len());
        for r in &self.records {
            out.push_str(&r.text);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Corpus::synthetic(7, 5);
        let b = Corpus::synthetic(7, 5);
        assert_eq!(a.records(), b.records());
        let c = Corpus::synthetic(8, 5);
        assert_ne!(a.records()[0].text, c.records()[0].text);
    }

    #[test]
    fn records_look_like_text() {
        let corpus = Corpus::synthetic(1, 20);
        assert_eq!(corpus.records().len(), 20);
        for r in corpus.records() {
            assert!(r.text.contains(' '), "no spaces in {:?}", r.text);
            assert!(r.text.ends_with('.'), "no sentence end in {:?}", r.text);
            assert!(r.text.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn joined_text_contains_all_records() {
        let corpus = Corpus::synthetic(3, 4);
        let joined = corpus.joined_text();
        for r in corpus.records() {
            assert!(joined.contains(&r.text));
        }
        assert!(corpus.total_chars() > 0);
    }
}
