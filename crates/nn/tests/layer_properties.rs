//! Property tests of structural layer invariants (complementing the
//! finite-difference gradchecks in the unit tests).

use dos_nn::{CausalSelfAttention, Gpt, GptConfig, LayerNorm, Linear, RmsNorm, VisitParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A linear layer's backward is linear in the upstream gradient:
    /// dx(a·dy) == a·dx(dy), bitwise for power-of-two scales.
    #[test]
    fn linear_backward_is_linear(x in vec_strategy(6), dy in vec_strategy(8)) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 3, 4, 0.5, &mut rng);
        l.forward(&x, 2);
        l.zero_grads();
        let dx1 = l.backward(&dy);
        let dy2: Vec<f32> = dy.iter().map(|d| d * 4.0).collect();
        l.forward(&x, 2);
        l.zero_grads();
        let dx2 = l.backward(&dy2);
        for (a, b) in dx1.iter().zip(dx2.iter()) {
            prop_assert_eq!(a * 4.0, *b);
        }
    }

    /// LayerNorm output is invariant to a constant shift of its input.
    #[test]
    fn layernorm_is_shift_invariant(x in vec_strategy(8), shift in -5.0f32..5.0) {
        let mut ln = LayerNorm::new("ln", 8);
        let y1 = ln.forward(&x, 1);
        let shifted: Vec<f32> = x.iter().map(|v| v + shift).collect();
        let y2 = ln.forward(&shifted, 1);
        for (a, b) in y1.iter().zip(y2.iter()) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b} after shift {shift}");
        }
    }

    /// RMSNorm output is invariant to positive rescaling of its input.
    #[test]
    fn rmsnorm_is_scale_invariant(x in vec_strategy(8), scale in 0.5f32..4.0) {
        prop_assume!(x.iter().any(|v| v.abs() > 0.1));
        let mut rms = RmsNorm::new("rms", 8);
        let y1 = rms.forward(&x, 1);
        let scaled: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = rms.forward(&scaled, 1);
        for (a, b) in y1.iter().zip(y2.iter()) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b} after scale {scale}");
        }
    }

    /// Causality holds for arbitrary inputs: perturbing token t leaves
    /// outputs at positions < t bitwise unchanged.
    #[test]
    fn attention_is_causal(x in vec_strategy(4 * 4), t in 1usize..4, delta in 0.1f32..2.0) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = CausalSelfAttention::new("a", 4, 2, 0.4, &mut rng);
        let y1 = attn.forward(&x, 1, 4);
        let mut x2 = x.clone();
        for v in x2[t * 4..(t + 1) * 4].iter_mut() {
            *v += delta;
        }
        let y2 = attn.forward(&x2, 1, 4);
        prop_assert_eq!(&y1[..t * 4], &y2[..t * 4], "position {} leaked backward", t);
    }

    /// Gradient accumulation across separate backward calls equals one
    /// backward over the summed upstream gradient (for the whole model).
    #[test]
    fn model_grads_accumulate_additively(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Gpt::new(GptConfig::tiny(), &mut rng);
        let tokens = [1usize, 2, 3, 4];
        let targets = [2usize, 3, 4, 5];
        // Two backward passes accumulate.
        m.loss_and_backward(&tokens, &targets, 1, 4);
        m.loss_and_backward(&tokens, &targets, 1, 4);
        let twice = m.gather_grads();
        m.zero_grads();
        m.loss_and_backward(&tokens, &targets, 1, 4);
        let once = m.gather_grads();
        for (a, b) in twice.iter().zip(once.iter()) {
            // Identical forward passes accumulate identical gradients, so
            // `twice == 2*once` up to f32 noise near the denormal floor.
            prop_assert!((a - 2.0 * b).abs() <= a.abs() * 1e-3 + 1e-9,
                "accumulation mismatch: {a} vs 2*{b}");
        }
    }
}
