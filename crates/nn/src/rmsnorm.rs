//! RMS normalization (LLaMA-family models).

use crate::param::{Param, VisitParams};

/// Root-mean-square layer normalization: `y = x / rms(x) · γ` with
/// `rms(x) = sqrt(mean(x²) + ε)` — LayerNorm without the mean subtraction
/// or bias, as used by the LLaMA models the evaluation zoo derives from.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    /// Scale parameter γ, initialized to ones.
    pub gamma: Param,
    dim: usize,
    eps: f32,
    cached_x: Vec<f32>,
    cached_rrms: Vec<f32>,
    cached_rows: usize,
}

impl RmsNorm {
    /// Creates a layer normalizing over the last `dim` features.
    pub fn new(name: &str, dim: usize) -> RmsNorm {
        RmsNorm {
            gamma: Param::new(format!("{name}.gamma"), vec![1.0; dim]),
            dim,
            eps: 1e-5,
            cached_x: Vec::new(),
            cached_rrms: Vec::new(),
            cached_rows: 0,
        }
    }

    /// Forward pass over `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * dim`.
    pub fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(x.len(), rows * self.dim, "bad input size");
        let d = self.dim;
        let mut y = vec![0.0; x.len()];
        self.cached_rrms = vec![0.0; rows];
        for r in 0..rows {
            let row = &x[r * d..(r + 1) * d];
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let rrms = 1.0 / (ms + self.eps).sqrt();
            self.cached_rrms[r] = rrms;
            for i in 0..d {
                y[r * d + i] = row[i] * rrms * self.gamma.w[i];
            }
        }
        self.cached_x = x.to_vec();
        self.cached_rows = rows;
        y
    }

    /// Backward pass: accumulates `dγ` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dy` has the wrong size.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let rows = self.cached_rows;
        let d = self.dim;
        assert!(rows > 0, "backward before forward");
        assert_eq!(dy.len(), rows * d, "bad grad size");
        let mut dx = vec![0.0; dy.len()];
        for r in 0..rows {
            let x = &self.cached_x[r * d..(r + 1) * d];
            let dyr = &dy[r * d..(r + 1) * d];
            let rrms = self.cached_rrms[r];
            // dγ += dy ⊙ (x·rrms); and the x-gradient couples through rms.
            let mut dot = 0.0f32; // Σ dyᵢ γᵢ xᵢ
            for i in 0..d {
                self.gamma.g[i] += dyr[i] * x[i] * rrms;
                dot += dyr[i] * self.gamma.w[i] * x[i];
            }
            let coef = dot * rrms * rrms * rrms / d as f32;
            for i in 0..d {
                dx[r * d + i] = dyr[i] * self.gamma.w[i] * rrms - x[i] * coef;
            }
        }
        dx
    }
}

impl VisitParams for RmsNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;

    #[test]
    fn output_has_unit_rms() {
        let mut ln = RmsNorm::new("rms", 4);
        let y = ln.forward(&[1.0, 2.0, 3.0, 4.0], 1);
        let ms: f32 = y.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((ms - 1.0).abs() < 1e-3, "rms {}", ms.sqrt());
    }

    #[test]
    fn no_mean_subtraction() {
        // Unlike LayerNorm, a constant positive row stays positive.
        let mut ln = RmsNorm::new("rms", 3);
        let y = ln.forward(&[5.0, 5.0, 5.0], 1);
        assert!(y.iter().all(|&v| v > 0.9));
    }

    #[test]
    fn gradcheck_rmsnorm() {
        let mut ln = RmsNorm::new("rms", 5);
        ln.gamma.w = vec![1.2, 0.8, 1.1, 0.9, 1.0];
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).sin() * 2.0 + 0.5).collect();
        gradcheck(
            &mut ln,
            &x,
            2,
            |m, x, rows| m.forward(x, rows),
            |m, dy| m.backward(dy),
            3e-2,
        );
    }

    #[test]
    fn has_half_the_params_of_layernorm() {
        let mut rms = RmsNorm::new("a", 16);
        let mut ln = crate::LayerNorm::new("b", 16);
        assert_eq!(rms.num_params() * 2, ln.num_params());
    }
}
