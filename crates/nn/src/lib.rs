//! # dos-nn — from-scratch transformer with manual backprop
//!
//! The functional model substrate of the *Deep Optimizer States*
//! reproduction. The paper trains GPT-family decoder models with
//! Megatron-LM/DeepSpeed; this crate provides an equivalent (tiny-scale)
//! transformer implemented from scratch in Rust — embeddings, pre-LN blocks
//! with causal multi-head attention and GELU MLPs, cross-entropy loss — with
//! hand-written backward passes verified by finite-difference gradient
//! checks.
//!
//! Two things matter for the reproduction:
//!
//! * every parameter is reachable through [`VisitParams`] in a stable order,
//!   defining the **flat parameter space** that `dos-zero` shards into the
//!   optimizer *subgroups* the paper schedules across CPU and GPU;
//! * [`ModelSpec`] captures the paper's 7B–20B evaluation zoo (Table 2) with
//!   the parameter/activation/FLOP formulas the simulator uses — the real
//!   numerics run on [`GptConfig::tiny`]-sized models.
//!
//! ```
//! use dos_nn::{Gpt, GptConfig, ModelSpec, VisitParams};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Functional path: a real trainable model.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Gpt::new(GptConfig::tiny(), &mut rng);
//! let loss = model.loss_and_backward(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
//! assert!(loss.is_finite());
//!
//! // Accounting path: the paper's 20B model.
//! let spec = ModelSpec::by_name("20B").unwrap();
//! assert!(spec.param_count() > 20_000_000_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
mod attention;
mod block;
mod dropout;
mod embedding;
mod layernorm;
mod linear;
mod loss;
pub mod math;
mod mlp;
mod model;
mod param;
mod rmsnorm;
mod rope;
mod swiglu;
#[doc(hidden)]
pub mod testutil;

pub use arch::ModelSpec;
pub use attention::CausalSelfAttention;
pub use block::Block;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use loss::cross_entropy;
pub use mlp::Mlp;
pub use model::{Gpt, GptConfig, SamplingConfig};
pub use param::{Param, VisitParams};
pub use rmsnorm::RmsNorm;
pub use rope::Rope;
pub use swiglu::SwiGlu;
