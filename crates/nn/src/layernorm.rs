//! Layer normalization with manual backprop.

use crate::param::{Param, VisitParams};

/// Per-row layer normalization: `y = (x - μ) / σ · γ + β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale parameter γ, initialized to ones.
    pub gamma: Param,
    /// Shift parameter β, initialized to zeros.
    pub beta: Param,
    dim: usize,
    eps: f32,
    cached_xhat: Vec<f32>,
    cached_rstd: Vec<f32>,
    cached_rows: usize,
}

impl LayerNorm {
    /// Creates a layer normalizing over the last `dim` features.
    pub fn new(name: &str, dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), vec![1.0; dim]),
            beta: Param::zeros(format!("{name}.beta"), dim),
            dim,
            eps: 1e-5,
            cached_xhat: Vec::new(),
            cached_rstd: Vec::new(),
            cached_rows: 0,
        }
    }

    /// Forward pass over `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * dim`.
    pub fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(x.len(), rows * self.dim, "bad input size");
        let d = self.dim;
        let mut y = vec![0.0; x.len()];
        self.cached_xhat = vec![0.0; x.len()];
        self.cached_rstd = vec![0.0; rows];
        for r in 0..rows {
            let row = &x[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let rstd = 1.0 / (var + self.eps).sqrt();
            self.cached_rstd[r] = rstd;
            for i in 0..d {
                let xh = (row[i] - mean) * rstd;
                self.cached_xhat[r * d + i] = xh;
                y[r * d + i] = xh * self.gamma.w[i] + self.beta.w[i];
            }
        }
        self.cached_rows = rows;
        y
    }

    /// Backward pass: accumulates `dγ`, `dβ` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dy` has the wrong size.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let rows = self.cached_rows;
        let d = self.dim;
        assert!(rows > 0, "backward before forward");
        assert_eq!(dy.len(), rows * d, "bad grad size");
        let mut dx = vec![0.0; dy.len()];
        for r in 0..rows {
            let xhat = &self.cached_xhat[r * d..(r + 1) * d];
            let dyr = &dy[r * d..(r + 1) * d];
            let rstd = self.cached_rstd[r];
            // dγ += dy ⊙ x̂, dβ += dy
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xhat = 0.0f32;
            for i in 0..d {
                self.gamma.g[i] += dyr[i] * xhat[i];
                self.beta.g[i] += dyr[i];
                let dyg = dyr[i] * self.gamma.w[i];
                sum_dyg += dyg;
                sum_dyg_xhat += dyg * xhat[i];
            }
            let inv_d = 1.0 / d as f32;
            for i in 0..d {
                let dyg = dyr[i] * self.gamma.w[i];
                dx[r * d + i] =
                    rstd * (dyg - inv_d * sum_dyg - xhat[i] * inv_d * sum_dyg_xhat);
            }
        }
        dx
    }
}

impl VisitParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;

    #[test]
    fn output_is_normalized() {
        let mut ln = LayerNorm::new("ln", 4);
        let y = ln.forward(&[1.0, 2.0, 3.0, 4.0], 1);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.gamma.w = vec![2.0, 2.0];
        ln.beta.w = vec![1.0, 1.0];
        let y = ln.forward(&[-1.0, 1.0], 1);
        assert!((y[0] - (-1.0)).abs() < 1e-3); // -1*2+1
        assert!((y[1] - 3.0).abs() < 1e-3); // 1*2+1
    }

    #[test]
    fn gradcheck_layernorm() {
        let mut ln = LayerNorm::new("ln", 5);
        ln.gamma.w = vec![1.1, 0.9, 1.3, 0.7, 1.0];
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.9).cos() * 2.0).collect();
        gradcheck(
            &mut ln,
            &x,
            2,
            |m, x, rows| m.forward(x, rows),
            |m, dy| m.backward(dy),
            3e-2,
        );
    }

    #[test]
    fn constant_rows_are_handled() {
        let mut ln = LayerNorm::new("ln", 3);
        let y = ln.forward(&[5.0, 5.0, 5.0], 1);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y.iter().all(|v| v.abs() < 1e-2));
    }
}
