//! SwiGLU feed-forward network (LLaMA-family models).

use rand::Rng;

use crate::linear::Linear;
use crate::param::{Param, VisitParams};

/// SiLU (swish): `x · σ(x)`.
fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Derivative of SiLU.
fn silu_grad(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

/// Gated feed-forward block: `down( silu(gate(x)) ⊙ up(x) )`, the MLP used
/// by the LLaMA models the paper's 7B/13B configurations derive from.
#[derive(Debug, Clone)]
pub struct SwiGlu {
    /// Gate projection `[dim, hidden]`.
    pub gate: Linear,
    /// Up projection `[dim, hidden]`.
    pub up: Linear,
    /// Down projection `[hidden, dim]`.
    pub down: Linear,
    cached_gate_pre: Vec<f32>,
    cached_up_out: Vec<f32>,
}

impl SwiGlu {
    /// Creates a SwiGLU block with the given hidden width.
    pub fn new<R: Rng>(
        name: &str,
        dim: usize,
        hidden: usize,
        std: f32,
        rng: &mut R,
    ) -> SwiGlu {
        SwiGlu {
            gate: Linear::new(&format!("{name}.gate"), dim, hidden, std, rng),
            up: Linear::new(&format!("{name}.up"), dim, hidden, std, rng),
            down: Linear::new(&format!("{name}.down"), hidden, dim, std, rng),
            cached_gate_pre: Vec::new(),
            cached_up_out: Vec::new(),
        }
    }

    /// Forward pass over `rows` rows.
    pub fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        let gate_pre = self.gate.forward(x, rows);
        let up_out = self.up.forward(x, rows);
        let hidden: Vec<f32> = gate_pre
            .iter()
            .zip(up_out.iter())
            .map(|(&g, &u)| silu(g) * u)
            .collect();
        self.cached_gate_pre = gate_pre;
        self.cached_up_out = up_out;
        self.down.forward(&hidden, rows)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        assert!(!self.cached_gate_pre.is_empty(), "backward before forward");
        let dhidden = self.down.backward(dy);
        let mut dgate_pre = vec![0.0; dhidden.len()];
        let mut dup_out = vec![0.0; dhidden.len()];
        for i in 0..dhidden.len() {
            let g = self.cached_gate_pre[i];
            let u = self.cached_up_out[i];
            dgate_pre[i] = dhidden[i] * u * silu_grad(g);
            dup_out[i] = dhidden[i] * silu(g);
        }
        let dx_gate = self.gate.backward(&dgate_pre);
        let dx_up = self.up.backward(&dup_out);
        dx_gate.iter().zip(dx_up.iter()).map(|(a, b)| a + b).collect()
    }
}

impl VisitParams for SwiGlu {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gate.visit_params(f);
        self.up.visit_params(f);
        self.down.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(10.0) - 10.0).abs() < 1e-3, "silu(x) -> x for large x");
        assert!(silu(-10.0).abs() < 1e-3);
        for &x in &[-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let h = 1e-3;
            let fd = (silu(x + h) - silu(x - h)) / (2.0 * h);
            assert!((silu_grad(x) - fd).abs() < 1e-3, "silu' at {x}");
        }
    }

    #[test]
    fn shape_and_gating() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ff = SwiGlu::new("ff", 4, 8, 0.3, &mut rng);
        let y = ff.forward(&[0.5, -0.5, 1.0, 0.1], 1);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn gradcheck_swiglu() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ff = SwiGlu::new("ff", 3, 5, 0.5, &mut rng);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.77).cos()).collect();
        gradcheck(
            &mut ff,
            &x,
            2,
            |m, x, rows| m.forward(x, rows),
            |m, dy| m.backward(dy),
            3e-2,
        );
    }

    #[test]
    fn param_count_is_three_matrices() {
        let mut rng = StdRng::seed_from_u64(0);
        let (d, h) = (6usize, 16usize);
        let mut ff = SwiGlu::new("ff", d, h, 0.1, &mut rng);
        // gate: d*h + h; up: d*h + h; down: h*d + d.
        assert_eq!(ff.num_params(), 3 * d * h + 2 * h + d);
    }
}
