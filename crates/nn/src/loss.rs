//! Cross-entropy loss with fused softmax backward.

/// Mean cross-entropy over `rows` of logits `[rows, vocab]` against integer
/// targets; returns `(loss, dlogits)` where `dlogits = (softmax - onehot)/rows`.
///
/// # Panics
///
/// Panics if sizes disagree or any target is out of range.
pub fn cross_entropy(logits: &[f32], targets: &[usize], vocab: usize) -> (f32, Vec<f32>) {
    let rows = targets.len();
    assert_eq!(logits.len(), rows * vocab, "bad logits size");
    let mut dlogits = vec![0.0; logits.len()];
    let mut loss = 0.0f64;
    let inv_rows = 1.0 / rows as f32;
    for r in 0..rows {
        let row = &logits[r * vocab..(r + 1) * vocab];
        let target = targets[r];
        assert!(target < vocab, "target {target} out of vocab {vocab}");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let log_sum = sum.ln() + max;
        loss += (log_sum - row[target]) as f64;
        let drow = &mut dlogits[r * vocab..(r + 1) * vocab];
        for (i, &v) in row.iter().enumerate() {
            let p = (v - log_sum).exp();
            drow[i] = (p - if i == target { 1.0 } else { 0.0 }) * inv_rows;
        }
    }
    ((loss / rows as f64) as f32, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let (loss, _) = cross_entropy(&[0.0; 8], &[0, 3], 4);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = vec![10.0, 0.0, 0.0];
        let (loss, d) = cross_entropy(&logits, &[0], 3);
        assert!(loss < 1e-3);
        // Gradient pushes the correct logit up (negative grad) only slightly.
        assert!(d[0] < 0.0 && d[0].abs() < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.2];
        let targets = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &targets, 3);
        let h = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += h;
            let mut lm = logits.clone();
            lm[i] -= h;
            let fd = (cross_entropy(&lp, &targets, 3).0 - cross_entropy(&lm, &targets, 3).0)
                / (2.0 * h);
            assert!((d[i] - fd).abs() < 1e-3, "grad[{i}]: {} vs {fd}", d[i]);
        }
    }

    #[test]
    fn gradients_sum_to_zero_per_row() {
        let logits = vec![0.5, 1.5, -0.5, 2.0, 0.0, 1.0];
        let (_, d) = cross_entropy(&logits, &[1, 2], 3);
        for r in 0..2 {
            let s: f32 = d[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_bad_target() {
        cross_entropy(&[0.0; 3], &[5], 3);
    }

    #[test]
    fn is_stable_for_large_logits() {
        let (loss, d) = cross_entropy(&[1000.0, 999.0], &[0], 2);
        assert!(loss.is_finite());
        assert!(d.iter().all(|v| v.is_finite()));
    }
}
