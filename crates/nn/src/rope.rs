//! Rotary positional embeddings (RoPE, LLaMA-family models).

/// Rotary positional embedding over per-head query/key vectors.
///
/// Rotates consecutive pairs `(x[2i], x[2i+1])` of each head vector by a
/// position- and frequency-dependent angle `pos · θ⁻²ⁱ/ᵈ`. Because the
/// rotation is orthogonal, the backward pass is the rotation by the
/// negated angle.
#[derive(Debug, Clone)]
pub struct Rope {
    head_dim: usize,
    /// Precomputed `cos`/`sin` tables indexed `[pos][pair]`.
    cos: Vec<Vec<f32>>,
    sin: Vec<Vec<f32>>,
}

impl Rope {
    /// Builds tables for head dimension `head_dim` (must be even) up to
    /// `max_seq` positions, with the conventional base θ = 10 000.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd or zero.
    pub fn new(head_dim: usize, max_seq: usize) -> Rope {
        assert!(head_dim > 0 && head_dim.is_multiple_of(2), "head_dim must be even and positive");
        let pairs = head_dim / 2;
        let mut cos = Vec::with_capacity(max_seq);
        let mut sin = Vec::with_capacity(max_seq);
        for pos in 0..max_seq {
            let mut c = Vec::with_capacity(pairs);
            let mut s = Vec::with_capacity(pairs);
            for i in 0..pairs {
                let freq = 1.0 / 10_000f32.powf(2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                c.push(angle.cos());
                s.push(angle.sin());
            }
            cos.push(c);
            sin.push(s);
        }
        Rope { head_dim, cos, sin }
    }

    /// Rotates one head vector in place for position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != head_dim` or `pos` exceeds the table.
    pub fn apply(&self, x: &mut [f32], pos: usize) {
        assert_eq!(x.len(), self.head_dim, "bad head vector size");
        let (c, s) = (&self.cos[pos], &self.sin[pos]);
        for i in 0..self.head_dim / 2 {
            let (a, b) = (x[2 * i], x[2 * i + 1]);
            x[2 * i] = a * c[i] - b * s[i];
            x[2 * i + 1] = a * s[i] + b * c[i];
        }
    }

    /// The inverse rotation (gradient propagation): rotate by `-angle`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != head_dim` or `pos` exceeds the table.
    pub fn apply_inverse(&self, x: &mut [f32], pos: usize) {
        assert_eq!(x.len(), self.head_dim, "bad head vector size");
        let (c, s) = (&self.cos[pos], &self.sin[pos]);
        for i in 0..self.head_dim / 2 {
            let (a, b) = (x[2 * i], x[2 * i + 1]);
            x[2 * i] = a * c[i] + b * s[i];
            x[2 * i + 1] = -a * s[i] + b * c[i];
        }
    }

    /// Head dimension the tables were built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(8, 4);
        let mut x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let orig = x.clone();
        rope.apply(&mut x, 0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(8, 16);
        let mut x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        let norm0: f32 = x.iter().map(|v| v * v).sum();
        rope.apply(&mut x, 11);
        let norm1: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm0 - norm1).abs() < 1e-5);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let rope = Rope::new(6, 10);
        let orig: Vec<f32> = (0..6).map(|i| (i as f32).cos()).collect();
        let mut x = orig.clone();
        rope.apply(&mut x, 7);
        rope.apply_inverse(&mut x, 7);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn relative_position_property() {
        // RoPE's defining property: <R_m q, R_n k> depends only on m - n.
        let rope = Rope::new(4, 32);
        let q: Vec<f32> = vec![0.3, -0.7, 1.1, 0.2];
        let k: Vec<f32> = vec![-0.5, 0.9, 0.4, -0.1];
        let dot = |m: usize, n: usize| -> f32 {
            let mut qm = q.clone();
            let mut kn = k.clone();
            rope.apply(&mut qm, m);
            rope.apply(&mut kn, n);
            qm.iter().zip(kn.iter()).map(|(a, b)| a * b).sum()
        };
        assert!((dot(3, 1) - dot(10, 8)).abs() < 1e-4, "offset 2 differs");
        assert!((dot(5, 5) - dot(20, 20)).abs() < 1e-4, "offset 0 differs");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_head_dim_rejected() {
        let _ = Rope::new(5, 4);
    }
}
