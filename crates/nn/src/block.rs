//! A pre-LayerNorm transformer block.

use rand::Rng;

use crate::attention::CausalSelfAttention;
use crate::layernorm::LayerNorm;
use crate::mlp::Mlp;
use crate::param::{Param, VisitParams};

/// One pre-LN transformer block:
/// `x = x + attn(ln1(x)); x = x + mlp(ln2(x))`.
#[derive(Debug, Clone)]
pub struct Block {
    /// First layer norm (before attention).
    pub ln1: LayerNorm,
    /// Causal self-attention.
    pub attn: CausalSelfAttention,
    /// Second layer norm (before the MLP).
    pub ln2: LayerNorm,
    /// Feed-forward network.
    pub mlp: Mlp,
}

impl Block {
    /// Creates a block with the standard 4x MLP expansion.
    pub fn new<R: Rng>(name: &str, dim: usize, heads: usize, std: f32, rng: &mut R) -> Block {
        Block {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            attn: CausalSelfAttention::new(&format!("{name}.attn"), dim, heads, std, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            mlp: Mlp::new(&format!("{name}.mlp"), dim, 4, std, rng),
        }
    }

    /// Forward pass for `batch` sequences of length `seq`.
    pub fn forward(&mut self, x: &[f32], batch: usize, seq: usize) -> Vec<f32> {
        let rows = batch * seq;
        let n1 = self.ln1.forward(x, rows);
        let a = self.attn.forward(&n1, batch, seq);
        let mid: Vec<f32> = x.iter().zip(a.iter()).map(|(xv, av)| xv + av).collect();
        let n2 = self.ln2.forward(&mid, rows);
        let m = self.mlp.forward(&n2, rows);
        mid.iter().zip(m.iter()).map(|(xv, mv)| xv + mv).collect()
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        // y = mid + mlp(ln2(mid))
        let dmid_from_mlp = self.ln2.backward(&self.mlp.backward(dy));
        let dmid: Vec<f32> =
            dy.iter().zip(dmid_from_mlp.iter()).map(|(a, b)| a + b).collect();
        // mid = x + attn(ln1(x))
        let dx_from_attn = self.ln1.backward(&self.attn.backward(&dmid));
        dmid.iter().zip(dx_from_attn.iter()).map(|(a, b)| a + b).collect()
    }
}

impl VisitParams for Block {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn residual_keeps_signal() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut blk = Block::new("b", 4, 2, 0.02, &mut rng);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        let y = blk.forward(&x, 1, 2);
        // With tiny weights the block is close to identity (residual path).
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert!((xi - yi).abs() < 1.0, "residual path lost: {xi} -> {yi}");
        }
    }

    #[test]
    fn gradcheck_full_block() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut blk = Block::new("b", 4, 2, 0.3, &mut rng);
        let x: Vec<f32> = (0..2 * 4).map(|i| (i as f32 * 0.61).sin()).collect();
        let (batch, seq) = (1usize, 2usize);
        gradcheck(
            &mut blk,
            &x,
            batch * seq,
            move |m, x, _| m.forward(x, batch, seq),
            |m, dy| m.backward(dy),
            4e-2,
        );
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = 8usize;
        let mut blk = Block::new("b", d, 2, 0.02, &mut rng);
        // qkv: d*3d + 3d; proj: d*d + d; mlp: d*4d + 4d + 4d*d + d; 2 LN: 4d.
        let expected = d * 3 * d + 3 * d + d * d + d + d * 4 * d + 4 * d + 4 * d * d + d + 4 * d;
        assert_eq!(blk.num_params(), expected);
    }
}
