//! Multi-head causal self-attention with manual backprop.

use rand::Rng;

use crate::linear::Linear;
use crate::math::softmax_rows;
use crate::param::{Param, VisitParams};

/// Multi-head causal self-attention.
///
/// Input/output shape is `[batch * seq, dim]`; `forward` takes the batch and
/// sequence structure explicitly. Uses a fused QKV projection and an output
/// projection, as in GPT/Megatron blocks.
#[derive(Debug, Clone)]
pub struct CausalSelfAttention {
    /// Fused query/key/value projection `[dim, 3*dim]`.
    pub qkv: Linear,
    /// Output projection `[dim, dim]`.
    pub proj: Linear,
    dim: usize,
    heads: usize,
    // caches
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    probs: Vec<f32>,
    batch: usize,
    seq: usize,
}

impl CausalSelfAttention {
    /// Creates an attention module.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng>(name: &str, dim: usize, heads: usize, std: f32, rng: &mut R) -> Self {
        assert_eq!(dim % heads, 0, "dim must be divisible by heads");
        CausalSelfAttention {
            qkv: Linear::new(&format!("{name}.qkv"), dim, 3 * dim, std, rng),
            proj: Linear::new(&format!("{name}.proj"), dim, dim, std, rng),
            dim,
            heads,
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            probs: Vec::new(),
            batch: 0,
            seq: 0,
        }
    }

    /// Head dimension (`dim / heads`).
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Forward pass for `batch` sequences of length `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != batch * seq * dim`.
    pub fn forward(&mut self, x: &[f32], batch: usize, seq: usize) -> Vec<f32> {
        let d = self.dim;
        let h = self.heads;
        let hd = d / h;
        assert_eq!(x.len(), batch * seq * d, "bad input size");
        let rows = batch * seq;
        let qkv = self.qkv.forward(x, rows);

        // Split into per-head contiguous q, k, v of shape [batch, h, seq, hd].
        let mut q = vec![0.0; rows * d];
        let mut k = vec![0.0; rows * d];
        let mut v = vec![0.0; rows * d];
        for b in 0..batch {
            for t in 0..seq {
                let src = &qkv[(b * seq + t) * 3 * d..(b * seq + t + 1) * 3 * d];
                for head in 0..h {
                    let dst = ((b * h + head) * seq + t) * hd;
                    q[dst..dst + hd].copy_from_slice(&src[head * hd..(head + 1) * hd]);
                    k[dst..dst + hd].copy_from_slice(&src[d + head * hd..d + (head + 1) * hd]);
                    v[dst..dst + hd]
                        .copy_from_slice(&src[2 * d + head * hd..2 * d + (head + 1) * hd]);
                }
            }
        }

        // Scores and probabilities per (batch, head).
        let scale = 1.0 / (hd as f32).sqrt();
        let mut probs = vec![0.0; batch * h * seq * seq];
        for bh in 0..batch * h {
            let qb = &q[bh * seq * hd..(bh + 1) * seq * hd];
            let kb = &k[bh * seq * hd..(bh + 1) * seq * hd];
            let pb = &mut probs[bh * seq * seq..(bh + 1) * seq * seq];
            for i in 0..seq {
                for j in 0..seq {
                    pb[i * seq + j] = if j <= i {
                        let qi = &qb[i * hd..(i + 1) * hd];
                        let kj = &kb[j * hd..(j + 1) * hd];
                        qi.iter().zip(kj.iter()).map(|(a, b)| a * b).sum::<f32>() * scale
                    } else {
                        f32::NEG_INFINITY // causal mask
                    };
                }
            }
            softmax_rows(pb, seq, seq);
        }

        // Context = probs · v, merged back to [batch*seq, dim].
        let mut ctx = vec![0.0; rows * d];
        for b in 0..batch {
            for head in 0..h {
                let bh = b * h + head;
                let pb = &probs[bh * seq * seq..(bh + 1) * seq * seq];
                let vb = &v[bh * seq * hd..(bh + 1) * seq * hd];
                for i in 0..seq {
                    let out = &mut ctx[(b * seq + i) * d + head * hd..][..hd];
                    for j in 0..=i {
                        let p = pb[i * seq + j];
                        let vj = &vb[j * hd..(j + 1) * hd];
                        for (o, vv) in out.iter_mut().zip(vj.iter()) {
                            *o += p * vv;
                        }
                    }
                }
            }
        }

        self.q = q;
        self.k = k;
        self.v = v;
        self.probs = probs;
        self.batch = batch;
        self.seq = seq;
        self.proj.forward(&ctx, rows)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dy` has the wrong size.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let (batch, seq) = (self.batch, self.seq);
        assert!(batch > 0, "backward before forward");
        let d = self.dim;
        let h = self.heads;
        let hd = d / h;
        let scale = 1.0 / (hd as f32).sqrt();

        let dctx = self.proj.backward(dy);

        let mut dq = vec![0.0; batch * h * seq * hd];
        let mut dk = vec![0.0; batch * h * seq * hd];
        let mut dv = vec![0.0; batch * h * seq * hd];

        for b in 0..batch {
            for head in 0..h {
                let bh = b * h + head;
                let pb = &self.probs[bh * seq * seq..(bh + 1) * seq * seq];
                let vb = &self.v[bh * seq * hd..(bh + 1) * seq * hd];
                let qb = &self.q[bh * seq * hd..(bh + 1) * seq * hd];
                let kb = &self.k[bh * seq * hd..(bh + 1) * seq * hd];
                for i in 0..seq {
                    let dout = &dctx[(b * seq + i) * d + head * hd..][..hd];
                    // dprobs and dv
                    let mut dprow = vec![0.0f32; i + 1];
                    for j in 0..=i {
                        let vj = &vb[j * hd..(j + 1) * hd];
                        dprow[j] = dout.iter().zip(vj.iter()).map(|(a, b)| a * b).sum();
                        let p = pb[i * seq + j];
                        let dvj = &mut dv[bh * seq * hd + j * hd..][..hd];
                        for (dvv, o) in dvj.iter_mut().zip(dout.iter()) {
                            *dvv += p * o;
                        }
                    }
                    // Softmax backward: ds = (dp - Σ dp·p) ⊙ p
                    let dot: f32 =
                        (0..=i).map(|j| dprow[j] * pb[i * seq + j]).sum();
                    for j in 0..=i {
                        let ds = (dprow[j] - dot) * pb[i * seq + j] * scale;
                        let kj = &kb[j * hd..(j + 1) * hd];
                        let qi = &qb[i * hd..(i + 1) * hd];
                        let dqi = &mut dq[bh * seq * hd + i * hd..][..hd];
                        for (dqv, kv) in dqi.iter_mut().zip(kj.iter()) {
                            *dqv += ds * kv;
                        }
                        let dkj = &mut dk[bh * seq * hd + j * hd..][..hd];
                        for (dkv, qv) in dkj.iter_mut().zip(qi.iter()) {
                            *dkv += ds * qv;
                        }
                    }
                }
            }
        }

        // Merge dq/dk/dv back into the fused QKV gradient layout.
        let rows = batch * seq;
        let mut dqkv = vec![0.0; rows * 3 * d];
        for b in 0..batch {
            for t in 0..seq {
                let dst = &mut dqkv[(b * seq + t) * 3 * d..(b * seq + t + 1) * 3 * d];
                for head in 0..h {
                    let src = ((b * h + head) * seq + t) * hd;
                    dst[head * hd..(head + 1) * hd].copy_from_slice(&dq[src..src + hd]);
                    dst[d + head * hd..d + (head + 1) * hd].copy_from_slice(&dk[src..src + hd]);
                    dst[2 * d + head * hd..2 * d + (head + 1) * hd]
                        .copy_from_slice(&dv[src..src + hd]);
                }
            }
        }
        self.qkv.backward(&dqkv)
    }
}

impl VisitParams for CausalSelfAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.qkv.visit_params(f);
        self.proj.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = CausalSelfAttention::new("a", 8, 2, 0.2, &mut rng);
        let x = vec![0.1; 2 * 3 * 8];
        let y = attn.forward(&x, 2, 3);
        assert_eq!(y.len(), x.len());
        assert_eq!(attn.head_dim(), 4);
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_outputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = CausalSelfAttention::new("a", 4, 2, 0.3, &mut rng);
        let mut x: Vec<f32> = (0..3 * 4).map(|i| (i as f32).sin()).collect();
        let y1 = attn.forward(&x, 1, 3);
        // Change only the last token.
        for v in x[2 * 4..].iter_mut() {
            *v += 1.0;
        }
        let y2 = attn.forward(&x, 1, 3);
        // Tokens 0 and 1 unchanged, token 2 changed.
        assert_eq!(&y1[..8], &y2[..8]);
        assert_ne!(&y1[8..], &y2[8..]);
    }

    #[test]
    fn gradcheck_attention() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut attn = CausalSelfAttention::new("a", 4, 2, 0.4, &mut rng);
        let x: Vec<f32> = (0..2 * 2 * 4).map(|i| (i as f32 * 0.37).cos()).collect();
        let (batch, seq) = (2usize, 2usize);
        gradcheck(
            &mut attn,
            &x,
            batch * seq,
            move |m, x, _| m.forward(x, batch, seq),
            |m, dy| m.backward(dy),
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn heads_must_divide_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = CausalSelfAttention::new("a", 6, 4, 0.1, &mut rng);
    }
}
