//! The paper's model zoo (Table 2) and transformer accounting formulas.
//!
//! The evaluation trains five decoder-only models derived from LLaMA-2 (7B,
//! 13B), Megatron-LM (8.3B), GPT-10B, and GPT-NeoX (20B). This module
//! captures their architectures and the standard parameter / activation /
//! FLOP formulas the simulator uses.

use serde::{Deserialize, Serialize};

/// Bytes per FP16 element.
pub const FP16_BYTES: u64 = 2;
/// Bytes per FP32 element.
pub const FP32_BYTES: u64 = 4;

/// Architecture of one evaluation model (a row of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name (e.g. `"20B"`).
    pub name: String,
    /// Nominal parameter count the paper quotes, in billions.
    pub nominal_billions: f64,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Attention heads.
    pub attention_heads: usize,
    /// Vocabulary size (the paper tokenizes with LLaMA-2's 32 000-entry
    /// vocabulary).
    pub vocab_size: usize,
    /// Training sequence length (2048 in all the paper's runs).
    pub seq_len: usize,
}

impl ModelSpec {
    /// Exact parameter count from the architecture:
    /// `12·L·H²` for blocks (QKV `3H²` + proj `H²` + MLP `8H²`, biases and
    /// LayerNorms folded in as `13H` per layer) plus `V·H` token embeddings,
    /// `S·H` positional embeddings, and the untied `H·V` head.
    pub fn param_count(&self) -> u64 {
        let l = self.num_layers as u64;
        let h = self.hidden_dim as u64;
        let v = self.vocab_size as u64;
        let s = self.seq_len as u64;
        l * (12 * h * h + 13 * h) + v * h + s * h + h * v + v + 2 * h
    }

    /// FP16 model-parameter bytes (`2P`).
    pub fn fp16_param_bytes(&self) -> u64 {
        FP16_BYTES * self.param_count()
    }

    /// FP16 gradient bytes (`2P`).
    pub fn fp16_grad_bytes(&self) -> u64 {
        FP16_BYTES * self.param_count()
    }

    /// FP32 optimizer-state bytes: master parameters, momentum, and variance
    /// (`12P`), plus the FP32 gradient staging the paper counts with the
    /// optimizer (`2P` of FP16 gradients upscaled on arrival), ≈ `14P` —
    /// this reproduces Table 2's "FP32 optimizer (GB)" within a few percent.
    pub fn fp32_optimizer_bytes(&self) -> u64 {
        3 * FP32_BYTES * self.param_count() + FP16_BYTES * self.param_count()
    }

    /// Bytes of activations for one micro-batch without checkpointing,
    /// using the standard per-layer estimate `s·b·h·(34 + 5·a·s/h)` bytes
    /// in FP16 (Korthikanti et al.), summed over layers.
    pub fn activation_bytes(&self, micro_batch: usize) -> u64 {
        let s = self.seq_len as u64;
        let b = micro_batch as u64;
        let h = self.hidden_dim as u64;
        let a = self.attention_heads as u64;
        let per_layer = s * b * h * 34 + 5 * a * s * s * b;
        per_layer * self.num_layers as u64
    }

    /// Bytes of activation checkpoints for one micro-batch: one `[s, b, h]`
    /// FP16 tensor per layer boundary (ZeRO-Infinity §3 interval style).
    pub fn activation_checkpoint_bytes(&self, micro_batch: usize) -> u64 {
        let s = self.seq_len as u64;
        let b = micro_batch as u64;
        let h = self.hidden_dim as u64;
        s * b * h * FP16_BYTES * (self.num_layers as u64 + 1)
    }

    /// FLOPs of one forward pass over one micro-batch (`2·P·tokens` dense
    /// estimate plus the quadratic attention term).
    pub fn forward_flops(&self, micro_batch: usize) -> f64 {
        let tokens = (micro_batch * self.seq_len) as f64;
        let p = self.param_count() as f64;
        let attn = 2.0
            * (self.num_layers as f64)
            * (self.seq_len as f64)
            * (self.seq_len as f64)
            * (self.hidden_dim as f64)
            * micro_batch as f64;
        2.0 * p * tokens + attn
    }

    /// FLOPs of one backward pass (2× forward), optionally with the 33 %
    /// recomputation overhead of activation checkpointing (§5.3: "at the
    /// expense of 33 % additional recomputations during the backward pass").
    pub fn backward_flops(&self, micro_batch: usize, activation_checkpointing: bool) -> f64 {
        let f = self.forward_flops(micro_batch);
        if activation_checkpointing {
            2.0 * f + f // recompute forward once more
        } else {
            2.0 * f
        }
    }

    /// The five evaluation models of Table 2.
    pub fn table2_zoo() -> Vec<ModelSpec> {
        let spec = |name: &str, nominal: f64, layers, hidden, heads| ModelSpec {
            name: name.to_string(),
            nominal_billions: nominal,
            num_layers: layers,
            hidden_dim: hidden,
            attention_heads: heads,
            vocab_size: 32_000,
            seq_len: 2048,
        };
        vec![
            spec("7B", 7.0, 32, 4096, 32),
            spec("8.3B", 8.3, 72, 3072, 24),
            spec("10B", 10.0, 50, 4096, 32),
            spec("13B", 13.0, 40, 5120, 40),
            spec("20B", 20.0, 48, 6144, 64),
        ]
    }

    /// Models beyond the paper's evaluation, for the NVMe-offload
    /// extension (§5.3 notes LLaMA-33B's optimizer state already exceeds
    /// the testbed's 512 GB DRAM; §6 proposes NVMe offloading for them).
    pub fn extended_zoo() -> Vec<ModelSpec> {
        let spec = |name: &str, nominal: f64, layers, hidden, heads| ModelSpec {
            name: name.to_string(),
            nominal_billions: nominal,
            num_layers: layers,
            hidden_dim: hidden,
            attention_heads: heads,
            vocab_size: 32_000,
            seq_len: 2048,
        };
        vec![spec("33B", 33.0, 60, 6656, 52), spec("65B", 65.0, 80, 8192, 64)]
    }

    /// Looks up a model by name in the Table 2 zoo or the extended zoo.
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        Self::table2_zoo()
            .into_iter()
            .chain(Self::extended_zoo())
            .find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn zoo_matches_table2_architectures() {
        let zoo = ModelSpec::table2_zoo();
        assert_eq!(zoo.len(), 5);
        let m20 = &zoo[4];
        assert_eq!(m20.num_layers, 48);
        assert_eq!(m20.hidden_dim, 6144);
        assert_eq!(m20.attention_heads, 64);
        let m83 = &zoo[1];
        assert_eq!(m83.num_layers, 72);
        assert_eq!(m83.hidden_dim, 3072);
    }

    #[test]
    fn param_counts_are_near_nominal() {
        for m in ModelSpec::table2_zoo() {
            let computed = m.param_count() as f64 / 1e9;
            let ratio = computed / m.nominal_billions;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "{}: computed {computed:.2}B vs nominal {}B",
                m.name,
                m.nominal_billions
            );
        }
    }

    #[test]
    fn memory_sizes_track_table2_shape() {
        // Table 2: FP32 optimizer sizes 96/121/150/188/294 GB for the zoo.
        let paper = [96.0, 121.0, 150.0, 188.0, 294.0];
        for (m, &expect) in ModelSpec::table2_zoo().iter().zip(paper.iter()) {
            let got = m.fp32_optimizer_bytes() as f64 / GB;
            let ratio = got / expect;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "{}: optimizer {got:.0} GB vs paper {expect} GB",
                m.name
            );
        }
    }

    #[test]
    fn optimizer_is_seven_times_fp16_model() {
        let m = ModelSpec::by_name("20B").unwrap();
        assert_eq!(m.fp32_optimizer_bytes(), 7 * m.fp16_param_bytes());
    }

    #[test]
    fn checkpointing_reduces_activation_memory() {
        let m = ModelSpec::by_name("20B").unwrap();
        assert!(m.activation_checkpoint_bytes(1) < m.activation_bytes(1) / 4);
    }

    #[test]
    fn flops_scale_with_batch() {
        let m = ModelSpec::by_name("7B").unwrap();
        let f1 = m.forward_flops(1);
        let f2 = m.forward_flops(2);
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
        assert!(m.backward_flops(1, false) > f1);
        assert!(m.backward_flops(1, true) > m.backward_flops(1, false));
    }

    #[test]
    fn lookup_by_name() {
        assert!(ModelSpec::by_name("13B").is_some());
        assert!(ModelSpec::by_name("99B").is_none());
    }

    #[test]
    fn extended_zoo_exceeds_the_testbed_dram() {
        // §5.3: LLaMA-33B's host-resident state (optimizer + FP32 grads)
        // exceeds the testbed's 512 GB DRAM.
        let m33 = ModelSpec::by_name("33B").unwrap();
        let host_bytes = m33.fp32_optimizer_bytes() + 4 * m33.param_count();
        assert!(host_bytes > 512_000_000_000, "host bytes {host_bytes}");
        let m65 = ModelSpec::by_name("65B").unwrap();
        assert!(m65.param_count() > m33.param_count());
    }
}
