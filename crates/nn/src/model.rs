//! The GPT-style decoder-only transformer.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::loss::cross_entropy;
use crate::param::{Param, VisitParams};

/// Architecture hyper-parameters of a [`Gpt`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
    /// Hidden dimension.
    pub dim: usize,
    /// Number of transformer blocks.
    pub num_layers: usize,
    /// Attention heads per block.
    pub num_heads: usize,
    /// Weight-initialization standard deviation.
    pub init_std: f32,
}

impl GptConfig {
    /// A deliberately tiny configuration for functional tests and examples.
    pub fn tiny() -> GptConfig {
        GptConfig {
            vocab_size: 64,
            max_seq: 16,
            dim: 16,
            num_layers: 2,
            num_heads: 2,
            init_std: 0.08,
        }
    }
}

/// A decoder-only transformer with embeddings, pre-LN blocks, a final
/// LayerNorm, and an (untied) language-model head.
///
/// # Examples
///
/// ```
/// use dos_nn::{Gpt, GptConfig, VisitParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Gpt::new(GptConfig::tiny(), &mut rng);
/// let tokens = [1usize, 2, 3, 4];
/// let targets = [2usize, 3, 4, 5];
/// let loss = model.loss_and_backward(&tokens, &targets, 1, 4);
/// assert!(loss > 0.0);
/// assert!(model.num_params() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Gpt {
    cfg: GptConfig,
    emb: Embedding,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    head: Linear,
    cached_batch: usize,
    cached_seq: usize,
}

impl Gpt {
    /// Creates a model with randomly initialized weights.
    pub fn new<R: Rng>(cfg: GptConfig, rng: &mut R) -> Gpt {
        let emb =
            Embedding::new("emb", cfg.vocab_size, cfg.max_seq, cfg.dim, cfg.init_std, rng);
        let blocks = (0..cfg.num_layers)
            .map(|i| Block::new(&format!("blocks.{i}"), cfg.dim, cfg.num_heads, cfg.init_std, rng))
            .collect();
        let ln_f = LayerNorm::new("ln_f", cfg.dim);
        let head = Linear::new("head", cfg.dim, cfg.vocab_size, cfg.init_std, rng);
        Gpt { cfg, emb, blocks, ln_f, head, cached_batch: 0, cached_seq: 0 }
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Forward pass: token ids (`batch * seq` of them) to logits
    /// `[batch*seq, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.len() != batch * seq`.
    pub fn forward(&mut self, tokens: &[usize], batch: usize, seq: usize) -> Vec<f32> {
        assert_eq!(tokens.len(), batch * seq, "bad token count");
        let rows = batch * seq;
        let mut x = self.emb.forward(tokens, seq);
        for blk in &mut self.blocks {
            x = blk.forward(&x, batch, seq);
        }
        let x = self.ln_f.forward(&x, rows);
        self.cached_batch = batch;
        self.cached_seq = seq;
        self.head.forward(&x, rows)
    }

    /// Backward pass from logit gradients; accumulates into every parameter.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run.
    pub fn backward(&mut self, dlogits: &[f32]) {
        assert!(self.cached_batch > 0, "backward before forward");
        let (batch, seq) = (self.cached_batch, self.cached_seq);
        let mut dx = self.ln_f.backward(&self.head.backward(dlogits));
        for blk in self.blocks.iter_mut().rev() {
            dx = blk.backward(&dx);
        }
        self.emb.backward(&dx);
        let _ = (batch, seq);
    }

    /// Convenience: forward + cross-entropy + backward; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != tokens.len()`.
    pub fn loss_and_backward(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> f32 {
        assert_eq!(targets.len(), tokens.len(), "targets must align with tokens");
        let logits = self.forward(tokens, batch, seq);
        let (loss, dlogits) = cross_entropy(&logits, targets, self.cfg.vocab_size);
        self.backward(&dlogits);
        loss
    }

    /// Like [`Gpt::loss_and_backward`] but backpropagating a *scaled* loss
    /// (`scale × L`), the mixed-precision loss-scaling recipe: gradients
    /// come out multiplied by `scale` and must be unscaled (e.g. by
    /// `dos_optim::DynamicLossScaler::unscale_check`) before the optimizer
    /// consumes them. Returns the *unscaled* loss.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != tokens.len()` or `scale` is not positive.
    pub fn loss_and_backward_scaled(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        scale: f32,
    ) -> f32 {
        assert_eq!(targets.len(), tokens.len(), "targets must align with tokens");
        assert!(scale > 0.0, "scale must be positive");
        let logits = self.forward(tokens, batch, seq);
        let (loss, mut dlogits) = cross_entropy(&logits, targets, self.cfg.vocab_size);
        for d in dlogits.iter_mut() {
            *d *= scale;
        }
        self.backward(&dlogits);
        loss
    }

    /// Forward + loss only (no gradient) — used for evaluation.
    pub fn loss_only(&mut self, tokens: &[usize], targets: &[usize], batch: usize, seq: usize) -> f32 {
        let logits = self.forward(tokens, batch, seq);
        cross_entropy(&logits, targets, self.cfg.vocab_size).0
    }

    /// Like [`Gpt::loss_and_backward`] but with *activation checkpointing*:
    /// the forward pass keeps only each block's input, and the backward
    /// pass recomputes a block's forward immediately before its backward —
    /// the functional counterpart of the recompute strategy the paper
    /// enables for all its runs (§5.3, "33 % additional recomputations").
    /// Gradients are identical to the plain path.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != tokens.len()`.
    pub fn loss_and_backward_checkpointed(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> f32 {
        assert_eq!(targets.len(), tokens.len(), "targets must align with tokens");
        let rows = batch * seq;
        // Forward, checkpointing only the block inputs.
        let mut x = self.emb.forward(tokens, seq);
        let mut checkpoints: Vec<Vec<f32>> = Vec::with_capacity(self.blocks.len());
        for blk in &mut self.blocks {
            checkpoints.push(x.clone());
            x = blk.forward(&x, batch, seq);
            // The block's internal activation caches are conceptually
            // discarded here; they will be recomputed during backward.
        }
        let xf = self.ln_f.forward(&x, rows);
        let logits = self.head.forward(&xf, rows);
        let (loss, dlogits) = cross_entropy(&logits, targets, self.cfg.vocab_size);

        // Backward with per-block recomputation.
        let mut dx = self.ln_f.backward(&self.head.backward(&dlogits));
        for (blk, input) in self.blocks.iter_mut().zip(checkpoints).rev() {
            let _ = blk.forward(&input, batch, seq); // recompute activations
            dx = blk.backward(&dx);
        }
        self.emb.backward(&dx);
        loss
    }

    /// Autoregressive generation: extends `prompt` with `max_new` tokens.
    ///
    /// `temperature == 0` is greedy decoding; otherwise logits are divided
    /// by the temperature and sampled. The context is truncated to the last
    /// `max_seq` tokens as it grows. Equivalent to
    /// [`Gpt::generate_with`] with an unrestricted [`SamplingConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or contains out-of-vocabulary ids.
    pub fn generate<R: Rng>(
        &mut self,
        prompt: &[usize],
        max_new: usize,
        temperature: f32,
        rng: &mut R,
    ) -> Vec<usize> {
        self.generate_with(
            prompt,
            max_new,
            SamplingConfig { temperature, top_k: None, top_p: None },
            rng,
        )
    }

    /// Autoregressive generation with full sampling controls (temperature,
    /// top-k truncation, top-p nucleus sampling).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty, contains out-of-vocabulary ids, or the
    /// sampling configuration is invalid.
    pub fn generate_with<R: Rng>(
        &mut self,
        prompt: &[usize],
        max_new: usize,
        sampling: SamplingConfig,
        rng: &mut R,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        sampling.validate();
        let mut tokens = prompt.to_vec();
        for _ in 0..max_new {
            let start = tokens.len().saturating_sub(self.cfg.max_seq);
            let context = &tokens[start..];
            let logits = self.forward(context, 1, context.len());
            let last = &logits[(context.len() - 1) * self.cfg.vocab_size..];
            tokens.push(sampling.pick(last, rng));
        }
        tokens
    }
}

/// Decoding controls for [`Gpt::generate_with`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Softmax temperature; `0` means greedy decoding.
    pub temperature: f32,
    /// Keep only the k most likely tokens before sampling.
    pub top_k: Option<usize>,
    /// Keep the smallest set of tokens whose cumulative probability reaches
    /// `p` (nucleus sampling).
    pub top_p: Option<f32>,
}

impl SamplingConfig {
    /// Greedy decoding.
    pub fn greedy() -> SamplingConfig {
        SamplingConfig { temperature: 0.0, top_k: None, top_p: None }
    }

    fn validate(&self) {
        assert!(self.temperature >= 0.0, "temperature must be non-negative");
        if let Some(k) = self.top_k {
            assert!(k > 0, "top_k must be positive");
        }
        if let Some(p) = self.top_p {
            assert!((0.0..=1.0).contains(&p) && p > 0.0, "top_p must be in (0, 1]");
        }
    }

    /// Picks the next token from a logit row.
    fn pick<R: Rng>(&self, logits: &[f32], rng: &mut R) -> usize {
        if self.temperature <= 0.0 {
            return logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty vocab");
        }
        // Probabilities at the given temperature, as (index, weight).
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut entries: Vec<(usize, f32)> = logits
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, ((v - max) / self.temperature).exp()))
            .collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        if let Some(k) = self.top_k {
            entries.truncate(k.max(1));
        }
        if let Some(p) = self.top_p {
            let total: f32 = entries.iter().map(|(_, w)| w).sum();
            let mut cum = 0.0;
            let mut keep = entries.len();
            for (n, (_, w)) in entries.iter().enumerate() {
                cum += w / total;
                if cum >= p {
                    keep = n + 1;
                    break;
                }
            }
            entries.truncate(keep);
        }
        let total: f32 = entries.iter().map(|(_, w)| w).sum();
        let mut u: f32 = rng.gen::<f32>() * total;
        for (i, w) in &entries {
            if u <= *w {
                return *i;
            }
            u -= w;
        }
        entries.last().expect("at least one candidate").0
    }
}

impl VisitParams for Gpt {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.emb.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Gpt {
        let mut rng = StdRng::seed_from_u64(seed);
        Gpt::new(GptConfig::tiny(), &mut rng)
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = tiny_model(0);
        let logits = m.forward(&[1, 2, 3, 4], 2, 2);
        assert_eq!(logits.len(), 4 * 64);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_count_formula() {
        let mut m = tiny_model(0);
        let cfg = GptConfig::tiny();
        let d = cfg.dim;
        let block = d * 3 * d + 3 * d + d * d + d + d * 4 * d + 4 * d + 4 * d * d + d + 4 * d;
        let expected = cfg.vocab_size * d
            + cfg.max_seq * d
            + cfg.num_layers * block
            + 2 * d
            + d * cfg.vocab_size
            + cfg.vocab_size;
        assert_eq!(m.num_params(), expected);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut m = tiny_model(1);
        m.loss_and_backward(&[5, 6, 7, 8], &[6, 7, 8, 9], 1, 4);
        let grads = m.gather_grads();
        let nonzero = grads.iter().filter(|g| **g != 0.0).count();
        // Embedding rows for unused tokens stay zero; everything else moves.
        assert!(
            nonzero as f64 > grads.len() as f64 * 0.5,
            "only {nonzero}/{} grads nonzero",
            grads.len()
        );
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let mut m = tiny_model(2);
        let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let targets = [1usize, 4, 1, 5, 9, 2, 6, 5];
        let l0 = m.loss_and_backward(&tokens, &targets, 2, 4);
        let grads = m.gather_grads();
        let mut params = m.gather_params();
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            *p -= 0.1 * g;
        }
        m.scatter_params(&params);
        let l1 = m.loss_only(&tokens, &targets, 2, 4);
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = tiny_model(7);
        let mut b = tiny_model(7);
        let la = a.loss_and_backward(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
        let lb = b.loss_and_backward(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
        assert_eq!(la, lb);
        assert_eq!(a.gather_grads(), b.gather_grads());
    }
}

#[cfg(test)]
mod checkpoint_and_generation_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Gpt {
        let mut rng = StdRng::seed_from_u64(seed);
        Gpt::new(GptConfig::tiny(), &mut rng)
    }

    #[test]
    fn checkpointed_backward_matches_plain_bitwise() {
        let mut plain = model(21);
        let mut ckpt = model(21);
        let tokens = [3usize, 9, 27, 17, 5, 6, 7, 8];
        let targets = [9usize, 27, 17, 5, 6, 7, 8, 1];
        let l1 = plain.loss_and_backward(&tokens, &targets, 2, 4);
        let l2 = ckpt.loss_and_backward_checkpointed(&tokens, &targets, 2, 4);
        assert_eq!(l1, l2, "losses must match");
        assert_eq!(plain.gather_grads(), ckpt.gather_grads(), "grads must be bitwise equal");
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let mut m = model(4);
        let mut rng = StdRng::seed_from_u64(0);
        let a = m.generate(&[1, 2, 3], 5, 0.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(99);
        let b = m.generate(&[1, 2, 3], 5, 0.0, &mut rng);
        assert_eq!(a, b, "greedy decoding ignores the rng");
        assert_eq!(a.len(), 8);
        assert_eq!(&a[..3], &[1, 2, 3]);
        assert!(a.iter().all(|&t| t < m.config().vocab_size));
    }

    #[test]
    fn sampling_is_seed_deterministic_and_varies() {
        let mut m = model(4);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = m.generate(&[1], 6, 1.0, &mut r1);
        let b = m.generate(&[1], 6, 1.0, &mut r2);
        assert_eq!(a, b);
        // At high temperature different seeds should (almost surely) differ.
        let mut r3 = StdRng::seed_from_u64(6);
        let mut r4 = StdRng::seed_from_u64(7);
        let c = m.generate(&[1], 12, 2.0, &mut r3);
        let d = m.generate(&[1], 12, 2.0, &mut r4);
        assert_ne!(c, d);
    }

    #[test]
    fn generation_respects_context_window() {
        let mut m = model(4);
        let mut rng = StdRng::seed_from_u64(0);
        // Prompt longer than max_seq: the window truncates and it still works.
        let prompt: Vec<usize> = (0..20).map(|i| i % 50).collect();
        let out = m.generate(&prompt, 3, 0.0, &mut rng);
        assert_eq!(out.len(), 23);
    }
}

#[cfg(test)]
mod loss_scaling_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scaled_gradients_are_scale_times_plain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut plain = Gpt::new(GptConfig::tiny(), &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scaled = Gpt::new(GptConfig::tiny(), &mut rng);
        let tokens = [1usize, 2, 3, 4];
        let targets = [2usize, 3, 4, 5];
        let l1 = plain.loss_and_backward(&tokens, &targets, 1, 4);
        let l2 = scaled.loss_and_backward_scaled(&tokens, &targets, 1, 4, 1024.0);
        assert_eq!(l1, l2, "reported loss is unscaled");
        let g1 = plain.gather_grads();
        let g2 = scaled.gather_grads();
        for (a, b) in g1.iter().zip(g2.iter()) {
            // Scaling by a power of two is exact in floating point.
            assert_eq!(a * 1024.0, *b);
        }
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_one_equals_greedy() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Gpt::new(GptConfig::tiny(), &mut rng);
        let cfg = SamplingConfig { temperature: 1.0, top_k: Some(1), top_p: None };
        let mut r1 = StdRng::seed_from_u64(1);
        let topk = m.generate_with(&[1, 2], 6, cfg, &mut r1);
        let mut r2 = StdRng::seed_from_u64(2);
        let greedy = m.generate_with(&[1, 2], 6, SamplingConfig::greedy(), &mut r2);
        assert_eq!(topk, greedy, "top-k=1 must reduce to greedy");
    }

    #[test]
    fn top_k_restricts_candidates() {
        // Direct pick() check on a synthetic logit row.
        let logits = vec![0.0f32, 5.0, 4.0, -2.0, 3.0];
        let cfg = SamplingConfig { temperature: 1.0, top_k: Some(2), top_p: None };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let pick = cfg.pick(&logits, &mut rng);
            assert!(pick == 1 || pick == 2, "pick {pick} outside top-2");
        }
    }

    #[test]
    fn nucleus_keeps_high_probability_mass() {
        // One dominant token: tiny p keeps only it.
        let logits = vec![10.0f32, 0.0, 0.0, 0.0];
        let cfg = SamplingConfig { temperature: 1.0, top_k: None, top_p: Some(0.5) };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!(cfg.pick(&logits, &mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "top_p must be in (0, 1]")]
    fn top_p_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Gpt::new(GptConfig::tiny(), &mut rng);
        let cfg = SamplingConfig { temperature: 1.0, top_k: None, top_p: Some(1.5) };
        let mut r = StdRng::seed_from_u64(0);
        let _ = m.generate_with(&[1], 1, cfg, &mut r);
    }
}
