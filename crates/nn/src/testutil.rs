//! Finite-difference gradient checking used by the layer test suites.
//!
//! Hidden from docs; exposed so integration tests can gradcheck composed
//! modules too.

use crate::param::VisitParams;

/// Deterministic pseudo-random coefficient for the scalar test loss.
fn coeff(i: usize) -> f32 {
    ((i as f32 * 12.9898).sin() * 43758.547).fract() - 0.5
}

/// Scalar loss `L = Σ cᵢ yᵢ` used to turn a vector output into one number.
fn loss_of(y: &[f32]) -> f64 {
    y.iter().enumerate().map(|(i, &v)| coeff(i) as f64 * v as f64).sum()
}

/// Checks analytic gradients of `module` against central finite differences.
///
/// Runs `fwd` on `x`, backpropagates `dL/dy = c`, then perturbs every
/// parameter (and every input element) and compares. `tol` is a relative
/// tolerance with a small absolute floor — f32 arithmetic limits how tight
/// this can be.
///
/// # Panics
///
/// Panics (failing the test) when any gradient disagrees.
pub fn gradcheck<M, F, B>(module: &mut M, x: &[f32], rows: usize, fwd: F, bwd: B, tol: f32)
where
    M: VisitParams,
    F: Fn(&mut M, &[f32], usize) -> Vec<f32>,
    B: Fn(&mut M, &[f32]) -> Vec<f32>,
{
    module.zero_grads();
    let y = fwd(module, x, rows);
    let dy: Vec<f32> = (0..y.len()).map(coeff).collect();
    let dx = bwd(module, &dy);
    assert_eq!(dx.len(), x.len(), "dx has wrong length");
    let analytic_param_grads = module.gather_grads();

    let h = 1e-2f32;
    let close = |analytic: f32, numeric: f64, what: &str| {
        let numeric = numeric as f32;
        let denom = analytic.abs().max(numeric.abs()).max(1.0);
        assert!(
            (analytic - numeric).abs() / denom < tol,
            "{what}: analytic {analytic} vs numeric {numeric}"
        );
    };

    // Parameters.
    let n = module.num_params();
    let base = module.gather_params();
    for i in 0..n {
        let mut plus = base.clone();
        plus[i] += h;
        module.scatter_params(&plus);
        let lp = loss_of(&fwd(module, x, rows));
        let mut minus = base.clone();
        minus[i] -= h;
        module.scatter_params(&minus);
        let lm = loss_of(&fwd(module, x, rows));
        module.scatter_params(&base);
        close(analytic_param_grads[i], (lp - lm) / (2.0 * h as f64), &format!("param[{i}]"));
    }

    // Inputs.
    for i in 0..x.len() {
        let mut xp = x.to_vec();
        xp[i] += h;
        let lp = loss_of(&fwd(module, &xp, rows));
        let mut xm = x.to_vec();
        xm[i] -= h;
        let lm = loss_of(&fwd(module, &xm, rows));
        close(dx[i], (lp - lm) / (2.0 * h as f64), &format!("input[{i}]"));
    }
}
