//! Dense kernels used by the layers.
//!
//! All matrices are row-major `&[f32]` slices with explicit dimensions.
//! These loops are deliberately straightforward — the functional engine
//! trains *tiny* models to validate numerics; large-model performance is the
//! job of the `dos-sim` cost models.

/// `c = a · b` where `a` is `[m, k]`, `b` is `[k, n]`, `c` is `[m, n]`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * n, "c has wrong length");
    c.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `c += aᵀ · b` where `a` is `[m, k]`, `b` is `[m, n]`, `c` is `[k, n]`.
/// (Gradient of a weight matrix: `dW += xᵀ · dy`.)
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a has wrong length");
    assert_eq!(b.len(), m * n, "b has wrong length");
    assert_eq!(c.len(), k * n, "c has wrong length");
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[i * n..(i + 1) * n];
            let crow = &mut c[p * n..(p + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `c = a · bᵀ` where `a` is `[m, n]`, `b` is `[k, n]`, `c` is `[m, k]`.
/// (Gradient of an input: `dx = dy · Wᵀ`.)
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n, "a has wrong length");
    assert_eq!(b.len(), k * n, "b has wrong length");
    assert_eq!(c.len(), m * k, "c has wrong length");
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            c[i * k + p] = arow.iter().zip(brow.iter()).map(|(x, y)| x * y).sum();
        }
    }
}

/// Numerically stable in-place softmax over each row of an `[rows, cols]`
/// matrix.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols`.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols, "x has wrong length");
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// The tanh-approximated GELU used by GPT-family models.
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Exact derivative of [`gelu`] (of the tanh approximation).
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [2x2] * [2x2]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // [1x3] * [3x2]
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0; 2];
        matmul(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn at_b_accumulates() {
        let a = [1.0, 2.0]; // [2x1]
        let b = [3.0, 4.0]; // [2x1]
        let mut c = [10.0]; // [1x1], pre-seeded to check accumulation
        matmul_at_b_acc(&a, &b, &mut c, 2, 1, 1);
        assert_eq!(c, [10.0 + 1.0 * 3.0 + 2.0 * 4.0]);
    }

    #[test]
    fn a_bt_matches_manual() {
        // a [1x2], b [3x2] -> c [1x3]
        let a = [1.0, 2.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0; 3];
        matmul_a_bt(&a, &b, &mut c, 1, 2, 3);
        assert_eq!(c, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_identities() {
        // (a·b) computed two ways: matmul(a,b) == matmul_a_bt(a, b^T).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2x3]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // [3x2]
        let mut c1 = [0.0; 4];
        matmul(&a, &b, &mut c1, 2, 3, 2);
        // b^T is [2x3]
        let bt = [7.0, 9.0, 11.0, 8.0, 10.0, 12.0];
        let mut c2 = [0.0; 4];
        matmul_a_bt(&a, &bt, &mut c2, 2, 3, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-3.0).abs() < 0.01);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "grad mismatch at {x}: {} vs {fd}",
                gelu_grad(x)
            );
        }
    }
}
