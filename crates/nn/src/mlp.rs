//! The transformer feed-forward block (GELU MLP).

use rand::Rng;

use crate::linear::Linear;
use crate::math::{gelu, gelu_grad};
use crate::param::{Param, VisitParams};

/// Two-layer GELU MLP: `fc2(gelu(fc1(x)))` with hidden size
/// `dim * expansion` (transformers use expansion 4).
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Expansion projection `[dim, dim*expansion]`.
    pub fc1: Linear,
    /// Contraction projection `[dim*expansion, dim]`.
    pub fc2: Linear,
    cached_pre: Vec<f32>,
}

impl Mlp {
    /// Creates an MLP with hidden size `dim * expansion`.
    pub fn new<R: Rng>(
        name: &str,
        dim: usize,
        expansion: usize,
        std: f32,
        rng: &mut R,
    ) -> Mlp {
        Mlp {
            fc1: Linear::new(&format!("{name}.fc1"), dim, dim * expansion, std, rng),
            fc2: Linear::new(&format!("{name}.fc2"), dim * expansion, dim, std, rng),
            cached_pre: Vec::new(),
        }
    }

    /// Forward pass over `rows` rows.
    pub fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        let pre = self.fc1.forward(x, rows);
        let hidden: Vec<f32> = pre.iter().map(|&v| gelu(v)).collect();
        self.cached_pre = pre;
        self.fc2.forward(&hidden, rows)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        assert!(!self.cached_pre.is_empty(), "backward before forward");
        let dhidden = self.fc2.backward(dy);
        let dpre: Vec<f32> = dhidden
            .iter()
            .zip(self.cached_pre.iter())
            .map(|(&dh, &p)| dh * gelu_grad(p))
            .collect();
        self.fc1.backward(&dpre)
    }
}

impl VisitParams for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_nonlinearity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new("m", 3, 4, 0.3, &mut rng);
        let y = mlp.forward(&[0.5, -0.5, 1.0, 0.1, 0.2, 0.3], 2);
        assert_eq!(y.len(), 6);
        // Nonlinearity: f(2x) != 2 f(x)
        let y1 = mlp.forward(&[1.0, 1.0, 1.0], 1);
        let y2 = mlp.forward(&[2.0, 2.0, 2.0], 1);
        assert!((y2[0] - 2.0 * y1[0]).abs() > 1e-6);
    }

    #[test]
    fn gradcheck_mlp() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new("m", 3, 2, 0.5, &mut rng);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.81).sin()).collect();
        gradcheck(
            &mut mlp,
            &x,
            2,
            |m, x, rows| m.forward(x, rows),
            |m, dy| m.backward(dy),
            3e-2,
        );
    }
}
