//! Inverted dropout with manual backprop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training, zeroes each element with probability
/// `p` and scales survivors by `1/(1-p)`; at evaluation it is the identity.
///
/// Parameter-free; the mask is cached for the backward pass.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seed for its
    /// private mask stream (deterministic given the seed).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1), got {p}");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: Vec::new() }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Forward pass. With `training == false` (or `p == 0`) this is the
    /// identity and the backward mask is all-ones.
    pub fn forward(&mut self, x: &[f32], training: bool) -> Vec<f32> {
        if !training || self.p == 0.0 {
            self.mask = vec![1.0; x.len()];
            return x.to_vec();
        }
        let keep = 1.0 - self.p;
        let inv_keep = 1.0 / keep;
        self.mask = (0..x.len())
            .map(|_| if self.rng.gen::<f32>() < keep { inv_keep } else { 0.0 })
            .collect();
        x.iter().zip(self.mask.iter()).map(|(v, m)| v * m).collect()
    }

    /// Backward pass: applies the cached mask.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dy` has the wrong length.
    pub fn backward(&self, dy: &[f32]) -> Vec<f32> {
        assert_eq!(dy.len(), self.mask.len(), "backward before forward, or wrong size");
        dy.iter().zip(self.mask.iter()).map(|(d, m)| d * m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&[1.0, 1.0, 1.0]), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn training_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 7);
        let x = vec![1.0f32; 10_000];
        let y = d.forward(&x, true);
        let dropped = y.iter().filter(|v| **v == 0.0).count();
        let frac = dropped as f32 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05, "dropped fraction {frac}");
        // Survivors are scaled so the expectation is preserved.
        let mean: f32 = y.iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!(y.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.3, 2);
        let x = vec![1.0f32; 64];
        let y = d.forward(&x, true);
        let dx = d.backward(&vec![1.0; 64]);
        // Gradient flows exactly where activations survived.
        for (yy, dd) in y.iter().zip(dx.iter()) {
            assert_eq!(*yy == 0.0, *dd == 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Dropout::new(0.4, 9);
        let mut b = Dropout::new(0.4, 9);
        let x = vec![1.0f32; 128];
        assert_eq!(a.forward(&x, true), b.forward(&x, true));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn p_validated() {
        let _ = Dropout::new(1.0, 0);
    }
}
