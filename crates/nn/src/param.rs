//! Named trainable parameters.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dos_tensor::Tensor;

/// A named trainable parameter with its gradient accumulator.
///
/// Parameters hold FP32 weights; mixed-precision device copies are derived
/// by the training engines when needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Qualified name, e.g. `"blocks.0.attn.qkv.w"`.
    pub name: String,
    /// Weights (row-major, shape tracked by the owning layer).
    pub w: Vec<f32>,
    /// Gradient accumulator, same length as `w`.
    pub g: Vec<f32>,
}

impl Param {
    /// A parameter initialized from the given weights.
    pub fn new(name: impl Into<String>, w: Vec<f32>) -> Param {
        let g = vec![0.0; w.len()];
        Param { name: name.into(), w, g }
    }

    /// A zero-initialized parameter of length `n`.
    pub fn zeros(name: impl Into<String>, n: usize) -> Param {
        Param::new(name, vec![0.0; n])
    }

    /// A parameter with i.i.d. normal weights of standard deviation `std`.
    pub fn randn<R: Rng>(name: impl Into<String>, n: usize, std: f32, rng: &mut R) -> Param {
        let t = Tensor::randn(&[n], std, rng);
        Param::new(name, t.to_f32_vec())
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }
}

/// Visitor for walking every parameter of a module tree in a stable order.
///
/// The order defines the *flat parameter space* that `dos-zero` partitions
/// into subgroups, so it must be deterministic; all layers visit their
/// parameters in declaration order.
pub trait VisitParams {
    /// Calls `f` once per parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Concatenates all weights into one flat vector (the order `dos-zero`
    /// shards over).
    fn gather_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(&p.w));
        out
    }

    /// Concatenates all gradients into one flat vector.
    fn gather_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(&p.g));
        out
    }

    /// Writes a flat vector back into the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`VisitParams::num_params`].
    fn scatter_params(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |p| {
            let n = p.len();
            assert!(off + n <= flat.len(), "flat parameter vector has wrong length");
            p.w.copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat parameter vector has wrong length");
    }

    /// Zeroes every gradient accumulator.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Two {
        a: Param,
        b: Param,
    }

    impl VisitParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    #[test]
    fn param_construction() {
        let p = Param::zeros("x", 4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.g, vec![0.0; 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let q = Param::randn("y", 100, 0.02, &mut rng);
        assert!(q.w.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut two = Two { a: Param::new("a", vec![1.0, 2.0]), b: Param::new("b", vec![3.0]) };
        assert_eq!(two.num_params(), 3);
        let flat = two.gather_params();
        assert_eq!(flat, vec![1.0, 2.0, 3.0]);
        two.scatter_params(&[9.0, 8.0, 7.0]);
        assert_eq!(two.a.w, vec![9.0, 8.0]);
        assert_eq!(two.b.w, vec![7.0]);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut two = Two { a: Param::new("a", vec![1.0]), b: Param::new("b", vec![2.0]) };
        two.a.g[0] = 5.0;
        two.b.g[0] = 6.0;
        assert_eq!(two.gather_grads(), vec![5.0, 6.0]);
        two.zero_grads();
        assert_eq!(two.gather_grads(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn scatter_rejects_wrong_length() {
        let mut two = Two { a: Param::zeros("a", 2), b: Param::zeros("b", 1) };
        two.scatter_params(&[1.0, 2.0]);
    }
}
