//! Fully connected layer with manual backprop.

use rand::Rng;

use crate::math::{matmul, matmul_a_bt, matmul_at_b_acc};
use crate::param::{Param, VisitParams};

/// `y = x · W + b`, with `W` stored row-major as `[in_dim, out_dim]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix parameter.
    pub w: Param,
    /// Bias parameter.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cached_x: Vec<f32>,
    cached_rows: usize,
}

impl Linear {
    /// Creates a layer with normal(0, `std`) weights and zero bias.
    pub fn new<R: Rng>(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        std: f32,
        rng: &mut R,
    ) -> Linear {
        Linear {
            w: Param::randn(format!("{name}.w"), in_dim * out_dim, std, rng),
            b: Param::zeros(format!("{name}.b"), out_dim),
            in_dim,
            out_dim,
            cached_x: Vec::new(),
            cached_rows: 0,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass over `rows` rows; caches the input for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * in_dim`.
    pub fn forward(&mut self, x: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(x.len(), rows * self.in_dim, "bad input size");
        let mut y = vec![0.0; rows * self.out_dim];
        matmul(x, &self.w.w, &mut y, rows, self.in_dim, self.out_dim);
        for r in 0..rows {
            let row = &mut y[r * self.out_dim..(r + 1) * self.out_dim];
            for (v, b) in row.iter_mut().zip(self.b.w.iter()) {
                *v += b;
            }
        }
        self.cached_x = x.to_vec();
        self.cached_rows = rows;
        y
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dy` has the wrong size.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let rows = self.cached_rows;
        assert!(rows > 0, "backward before forward");
        assert_eq!(dy.len(), rows * self.out_dim, "bad grad size");
        // dW += x^T dy
        matmul_at_b_acc(&self.cached_x, dy, &mut self.w.g, rows, self.in_dim, self.out_dim);
        // db += column sums of dy
        for r in 0..rows {
            let row = &dy[r * self.out_dim..(r + 1) * self.out_dim];
            for (g, d) in self.b.g.iter_mut().zip(row.iter()) {
                *g += d;
            }
        }
        // dx = dy W^T
        let mut dx = vec![0.0; rows * self.in_dim];
        matmul_a_bt(dy, &self.w.w, &mut dx, rows, self.out_dim, self.in_dim);
        dx
    }
}

impl VisitParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("l", 2, 2, 0.1, &mut rng);
        l.w.w = vec![1.0, 2.0, 3.0, 4.0];
        l.b.w = vec![0.5, -0.5];
        let y = l.forward(&[1.0, 1.0], 1);
        assert_eq!(y, vec![4.5, 5.5]);
        assert_eq!(l.in_dim(), 2);
        assert_eq!(l.out_dim(), 2);
    }

    #[test]
    fn gradcheck_weights_bias_and_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new("l", 3, 4, 0.5, &mut rng);
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.7).sin()).collect();
        gradcheck(
            &mut l,
            &x,
            2,
            |l, x, rows| l.forward(x, rows),
            |l, dy| l.backward(dy),
            2e-2,
        );
    }

    #[test]
    fn backward_accumulates_over_calls() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 2, 1, 0.1, &mut rng);
        let x = [1.0, 2.0];
        l.forward(&x, 1);
        l.backward(&[1.0]);
        let g1 = l.w.g.clone();
        l.forward(&x, 1);
        l.backward(&[1.0]);
        for (a, b) in l.w.g.iter().zip(g1.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 2, 1, 0.1, &mut rng);
        l.backward(&[1.0]);
    }
}
