//! Token and positional embeddings.

use rand::Rng;

use crate::param::{Param, VisitParams};

/// Token + learned positional embedding: `x[t] = wte[token[t]] + wpe[pos(t)]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token embedding table `[vocab, dim]`.
    pub wte: Param,
    /// Positional embedding table `[max_seq, dim]`.
    pub wpe: Param,
    vocab: usize,
    max_seq: usize,
    dim: usize,
    cached_tokens: Vec<usize>,
    cached_seq: usize,
}

impl Embedding {
    /// Creates embedding tables with normal(0, `std`) entries.
    pub fn new<R: Rng>(
        name: &str,
        vocab: usize,
        max_seq: usize,
        dim: usize,
        std: f32,
        rng: &mut R,
    ) -> Embedding {
        Embedding {
            wte: Param::randn(format!("{name}.wte"), vocab * dim, std, rng),
            wpe: Param::randn(format!("{name}.wpe"), max_seq * dim, std, rng),
            vocab,
            max_seq,
            dim,
            cached_tokens: Vec::new(),
            cached_seq: 0,
        }
    }

    /// Embeds `batch * seq` token ids into `[batch*seq, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if a token id is out of vocabulary, `seq > max_seq`, or
    /// `tokens.len()` is not a multiple of `seq`.
    pub fn forward(&mut self, tokens: &[usize], seq: usize) -> Vec<f32> {
        assert!(seq <= self.max_seq, "sequence longer than max_seq");
        assert_eq!(tokens.len() % seq, 0, "tokens not a whole number of sequences");
        let d = self.dim;
        let mut x = vec![0.0; tokens.len() * d];
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab, "token {tok} out of vocabulary {}", self.vocab);
            let pos = t % seq;
            let out = &mut x[t * d..(t + 1) * d];
            let te = &self.wte.w[tok * d..(tok + 1) * d];
            let pe = &self.wpe.w[pos * d..(pos + 1) * d];
            for i in 0..d {
                out[i] = te[i] + pe[i];
            }
        }
        self.cached_tokens = tokens.to_vec();
        self.cached_seq = seq;
        x
    }

    /// Backward pass: scatters `dx` into the embedding-table gradients.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not run or `dx` has the wrong size.
    pub fn backward(&mut self, dx: &[f32]) {
        let d = self.dim;
        assert!(!self.cached_tokens.is_empty(), "backward before forward");
        assert_eq!(dx.len(), self.cached_tokens.len() * d, "bad grad size");
        let seq = self.cached_seq;
        for (t, &tok) in self.cached_tokens.iter().enumerate() {
            let pos = t % seq;
            let src = &dx[t * d..(t + 1) * d];
            let te = &mut self.wte.g[tok * d..(tok + 1) * d];
            for i in 0..d {
                te[i] += src[i];
            }
            let pe = &mut self.wpe.g[pos * d..(pos + 1) * d];
            for i in 0..d {
                pe[i] += src[i];
            }
        }
    }
}

impl VisitParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wte);
        f(&mut self.wpe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_adds_token_and_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new("e", 4, 3, 2, 0.1, &mut rng);
        let x = emb.forward(&[1, 1], 2);
        // Same token at two positions differs only by positional embedding.
        let diff0 = x[0] - x[2];
        let expected = emb.wpe.w[0] - emb.wpe.w[2];
        assert!((diff0 - expected).abs() < 1e-6);
    }

    #[test]
    fn backward_scatters_to_used_rows_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new("e", 4, 2, 2, 0.1, &mut rng);
        emb.forward(&[2, 2], 2);
        emb.backward(&[1.0, 1.0, 1.0, 1.0]);
        // Token 2's row accumulated both steps; others untouched.
        assert_eq!(&emb.wte.g[2 * 2..3 * 2], &[2.0, 2.0]);
        assert_eq!(&emb.wte.g[0..2], &[0.0, 0.0]);
        // Both positions got one step each.
        assert_eq!(&emb.wpe.g[..], &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new("e", 4, 2, 2, 0.1, &mut rng);
        emb.forward(&[7], 1);
    }

    #[test]
    #[should_panic(expected = "max_seq")]
    fn rejects_long_sequences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new("e", 4, 2, 2, 0.1, &mut rng);
        emb.forward(&[0, 1, 2], 3);
    }
}
