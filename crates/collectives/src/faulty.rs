//! Fault-injecting transport wrapper driven by a seeded plan.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs delivery the
//! way a lossy interconnect would: per-frame drops, duplication, tick-based
//! delays (whose variance also reorders frames across peers), scheduled
//! per-rank disconnects, and partition windows between rank pairs. Every
//! fate is a pure hash of `(plan seed, source, destination, wire_seq)`, so
//! a plan replays identically over the same traffic — and because
//! retransmissions carry *fresh* wire sequence numbers, a retry re-rolls
//! the dice instead of deterministically re-dropping.
//!
//! Message-level fates (drop / delay / dup) only make sense when the
//! collectives run in deadline mode, where timeouts trigger resend
//! requests; the blocking `recv` path (used under `dos-check`, which has
//! no clock) applies only the permanent rules — disconnects — and delivers
//! everything else verbatim.

// Relaxed counters local to one rank's endpoint — never a cross-thread
// handshake, so no interleaving hides from the explorer.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering}; // check-hygiene: allow
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use dos_telemetry::Tracer;

use crate::transport::{Frame, FrameKind, Transport, TransportError};

/// When a scheduled disconnect fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisconnectPoint {
    /// At the start of this training epoch (iteration), as reported via
    /// [`Transport::set_epoch`].
    Epoch(u64),
    /// After this many frames have been sent by the rank — lands *inside*
    /// a collective, which is how the kill-a-rank-mid-`all_reduce` tests
    /// hit a seeded point.
    Frame(u64),
}

/// A scheduled permanent disconnect of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectRule {
    /// The rank whose endpoint dies.
    pub rank: usize,
    /// When it dies.
    pub at: DisconnectPoint,
}

/// A temporary partition between two ranks over an epoch window: frames
/// between `a` and `b` (both directions) are dropped while
/// `from_epoch <= epoch < until_epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// One side of the cut.
    pub a: usize,
    /// The other side.
    pub b: usize,
    /// First affected epoch (inclusive).
    pub from_epoch: u64,
    /// First unaffected epoch (exclusive).
    pub until_epoch: u64,
}

/// Seeded description of how a [`FaultyTransport`] misbehaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportFaultPlan {
    /// Hash seed; the same seed over the same traffic replays identically.
    pub seed: u64,
    /// Per-frame drop probability in [0, 1].
    pub drop_p: f64,
    /// Per-frame duplication probability in [0, 1].
    pub dup_p: f64,
    /// Inclusive range of delivery delays in receiver poll ticks; applied
    /// to every frame (a frame delayed longer than a later one reorders).
    pub delay_ticks: Option<(u64, u64)>,
    /// Scheduled permanent disconnects.
    pub disconnects: Vec<DisconnectRule>,
    /// Temporary partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl TransportFaultPlan {
    /// A plan that injects nothing.
    pub fn none(seed: u64) -> TransportFaultPlan {
        TransportFaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_ticks: None,
            disconnects: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// This plan minus its permanent failures (disconnects and
    /// partitions): what elastic recovery re-arms survivors with, and what
    /// the bitwise-vs-fault-free checks run, since drops/delays/dups are
    /// proven invisible to numerics while permanent failures are not.
    pub fn without_permanent_failures(&self) -> TransportFaultPlan {
        TransportFaultPlan { disconnects: Vec::new(), partitions: Vec::new(), ..self.clone() }
    }

    /// Whether any rule can perturb traffic at all.
    pub fn is_noop(&self) -> bool {
        self.drop_p <= 0.0
            && self.dup_p <= 0.0
            && self.delay_ticks.is_none()
            && self.disconnects.is_empty()
            && self.partitions.is_empty()
    }

    /// Parses the CLI spec grammar: comma-separated terms among
    /// `drop:P`, `dup:P`, `delay:LO..HI`, `disconnect:rankR@iterN`,
    /// `disconnect:rankR@frameN`, and `part:A-B@LO..HI`.
    ///
    /// ```
    /// use dos_collectives::TransportFaultPlan;
    /// let plan = TransportFaultPlan::parse("drop:0.05,delay:1..3,disconnect:rank1@iter3", 7)
    ///     .unwrap();
    /// assert_eq!(plan.drop_p, 0.05);
    /// assert_eq!(plan.delay_ticks, Some((1, 3)));
    /// assert_eq!(plan.disconnects.len(), 1);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed term.
    pub fn parse(spec: &str, seed: u64) -> Result<TransportFaultPlan, String> {
        let mut plan = TransportFaultPlan::none(seed);
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = term
                .split_once(':')
                .ok_or_else(|| format!("fault term `{term}` is missing `:`"))?;
            match key {
                "drop" => plan.drop_p = parse_probability(value, term)?,
                "dup" => plan.dup_p = parse_probability(value, term)?,
                "delay" => plan.delay_ticks = Some(parse_range(value, term)?),
                "disconnect" => {
                    let (rank_part, at_part) = value
                        .split_once('@')
                        .ok_or_else(|| format!("`{term}`: expected rankR@iterN or rankR@frameN"))?;
                    let rank = rank_part
                        .strip_prefix("rank")
                        .and_then(|r| r.parse::<usize>().ok())
                        .ok_or_else(|| format!("`{term}`: expected rankR"))?;
                    let at = if let Some(n) = at_part.strip_prefix("iter") {
                        DisconnectPoint::Epoch(
                            n.parse().map_err(|_| format!("`{term}`: bad iteration"))?,
                        )
                    } else if let Some(n) = at_part.strip_prefix("frame") {
                        DisconnectPoint::Frame(
                            n.parse().map_err(|_| format!("`{term}`: bad frame count"))?,
                        )
                    } else {
                        return Err(format!("`{term}`: expected @iterN or @frameN"));
                    };
                    plan.disconnects.push(DisconnectRule { rank, at });
                }
                "part" => {
                    let (pair, window) = value
                        .split_once('@')
                        .ok_or_else(|| format!("`{term}`: expected A-B@LO..HI"))?;
                    let (a, b) = pair
                        .split_once('-')
                        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                        .ok_or_else(|| format!("`{term}`: expected rank pair A-B"))?;
                    let (from_epoch, until_epoch) = parse_range(window, term)?;
                    plan.partitions.push(PartitionWindow {
                        a,
                        b,
                        from_epoch,
                        until_epoch: until_epoch.saturating_add(1),
                    });
                }
                other => return Err(format!("unknown fault kind `{other}` in `{term}`")),
            }
        }
        Ok(plan)
    }
}

fn parse_probability(value: &str, term: &str) -> Result<f64, String> {
    let p: f64 = value.parse().map_err(|_| format!("`{term}`: bad probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("`{term}`: probability must be in [0, 1]"));
    }
    Ok(p)
}

fn parse_range(value: &str, term: &str) -> Result<(u64, u64), String> {
    let (lo, hi) = value
        .split_once("..")
        .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)))
        .ok_or_else(|| format!("`{term}`: expected LO..HI"))?;
    if lo > hi {
        return Err(format!("`{term}`: range is inverted"));
    }
    Ok((lo, hi))
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in [0, 1) from the fate coordinates.
fn roll(seed: u64, from: usize, to: usize, wire_seq: u64, salt: u64) -> f64 {
    let mut x = seed
        ^ (from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (to as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ wire_seq.wrapping_mul(0x1656_67b1_9e37_79f9)
        ^ salt;
    (splitmix64(&mut x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Transport`] decorator that injects the faults of a
/// [`TransportFaultPlan`], mirroring each injection as a
/// `fault:collective:*` tracer instant so the flight recorder captures the
/// incident.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    plan: TransportFaultPlan,
    epoch: AtomicU64,
    sent_frames: AtomicU64,
    killed: AtomicBool,
    tick: AtomicU64,
    /// Per-source-peer jitter buffers of `(due_tick, frame)`.
    jitter: Mutex<Vec<Vec<(u64, Frame)>>>,
    tracer: Option<Arc<Tracer>>,
}

impl std::fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("rank", &self.inner.rank())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl FaultyTransport {
    /// Wraps `inner` with the fault plan.
    pub fn new(inner: Box<dyn Transport>, plan: TransportFaultPlan) -> FaultyTransport {
        let world = inner.world_size();
        FaultyTransport {
            inner,
            plan,
            epoch: AtomicU64::new(0),
            sent_frames: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            tick: AtomicU64::new(0),
            jitter: Mutex::new(vec![Vec::new(); world]),
            tracer: None,
        }
    }

    /// Attaches a tracer for `fault:collective:*` instants.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> FaultyTransport {
        self.tracer = Some(tracer);
        self
    }

    fn instant(&self, name: &str) {
        if let Some(t) = &self.tracer {
            t.instant(name, "transport");
        }
    }

    /// Whether this rank's endpoint is (now) dead per the disconnect rules.
    fn check_killed(&self) -> bool {
        if self.killed.load(Ordering::Relaxed) {
            return true;
        }
        let rank = self.inner.rank();
        let epoch = self.epoch.load(Ordering::Relaxed);
        let sent = self.sent_frames.load(Ordering::Relaxed);
        let dead = self.plan.disconnects.iter().any(|d| {
            d.rank == rank
                && match d.at {
                    DisconnectPoint::Epoch(e) => epoch >= e,
                    DisconnectPoint::Frame(n) => sent >= n,
                }
        });
        if dead && !self.killed.swap(true, Ordering::Relaxed) {
            self.instant("fault:collective:disconnect");
        }
        dead
    }

    fn partitioned(&self, peer: usize) -> bool {
        let rank = self.inner.rank();
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.plan.partitions.iter().any(|w| {
            ((w.a == rank && w.b == peer) || (w.a == peer && w.b == rank))
                && epoch >= w.from_epoch
                && epoch < w.until_epoch
        })
    }

    fn pop_due(&self, from: usize, now: u64) -> Option<Frame> {
        let mut jitter = self.jitter.lock();
        let queue = &mut jitter[from];
        let idx = queue.iter().position(|(due, _)| *due <= now)?;
        Some(queue.remove(idx).1)
    }

    /// Applies receiver-side fates; `None` means the frame was consumed by
    /// a fate (dropped or parked) and the caller should keep polling.
    fn admit(&self, from: usize, frame: Frame, now: u64) -> Option<Frame> {
        if self.partitioned(from) {
            self.instant("fault:collective:partition");
            return None;
        }
        let rank = self.inner.rank();
        // Heartbeats are exempt from drop/delay: failure detection timing
        // is the detector's own contract, not the lossy link's.
        let lossy = frame.kind == FrameKind::Data || frame.kind == FrameKind::Resend;
        if lossy {
            let u = roll(self.plan.seed, from, rank, frame.wire_seq, 0x01);
            if u < self.plan.drop_p {
                self.instant("fault:collective:drop");
                return None;
            }
            if u < self.plan.drop_p + self.plan.dup_p {
                self.instant("fault:collective:dup");
                self.jitter.lock()[from].push((now + 1, frame.clone()));
            }
            if let Some((lo, hi)) = self.plan.delay_ticks {
                let d = lo + splitmix_pick(self.plan.seed, from, rank, frame.wire_seq, hi - lo + 1);
                if d > 0 {
                    self.instant("fault:collective:delay");
                    self.jitter.lock()[from].push((now + d, frame));
                    return None;
                }
            }
        }
        Some(frame)
    }
}

fn splitmix_pick(seed: u64, from: usize, to: usize, wire_seq: u64, span: u64) -> u64 {
    let mut x = seed
        ^ 0x5bd1_e995
        ^ (from as u64).rotate_left(17)
        ^ (to as u64).rotate_left(31)
        ^ wire_seq.wrapping_mul(0x2545_f491_4f6c_dd1d);
    splitmix64(&mut x) % span.max(1)
}

impl Transport for FaultyTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, to: usize, frame: Frame) -> Result<(), TransportError> {
        if self.check_killed() {
            return Err(TransportError::Disconnected { peer: self.inner.rank() });
        }
        self.sent_frames.fetch_add(1, Ordering::Relaxed);
        self.inner.send(to, frame)
    }

    fn recv(&self, from: usize) -> Result<Frame, TransportError> {
        loop {
            if self.check_killed() {
                return Err(TransportError::Disconnected { peer: self.inner.rank() });
            }
            let frame = self.inner.recv(from)?;
            // No clock on the blocking path: only permanent rules apply
            // (see module docs), so deliver verbatim.
            if !self.partitioned(from) {
                return Ok(frame);
            }
            self.instant("fault:collective:partition");
        }
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Frame, TransportError> {
        if self.check_killed() {
            return Err(TransportError::Disconnected { peer: self.inner.rank() });
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(frame) = self.pop_due(from, now) {
            return Ok(frame);
        }
        let frame = self.inner.recv_timeout(from, timeout)?;
        self.admit(from, frame, now).ok_or(TransportError::Timeout { peer: from })
    }

    fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.inner.set_epoch(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InProcTransport;

    #[test]
    fn spec_parser_round_trips_the_ci_plan() {
        let plan =
            TransportFaultPlan::parse("drop:0.05,delay:1..3,disconnect:rank1@iter3", 7).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_p, 0.05);
        assert_eq!(plan.delay_ticks, Some((1, 3)));
        assert_eq!(
            plan.disconnects,
            vec![DisconnectRule { rank: 1, at: DisconnectPoint::Epoch(3) }]
        );
        assert!(plan.without_permanent_failures().disconnects.is_empty());
    }

    #[test]
    fn spec_parser_rejects_malformed_terms() {
        assert!(TransportFaultPlan::parse("drop:1.5", 0).is_err());
        assert!(TransportFaultPlan::parse("delay:3..1", 0).is_err());
        assert!(TransportFaultPlan::parse("disconnect:rank1", 0).is_err());
        assert!(TransportFaultPlan::parse("flood:9", 0).is_err());
        assert!(TransportFaultPlan::parse("part:0-1@2..4", 0).is_ok());
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let count_drops = |seed: u64| {
            let mut world = InProcTransport::world(2);
            let t1 = world.pop().unwrap();
            let t0 = world.pop().unwrap();
            let plan = TransportFaultPlan {
                drop_p: 0.5,
                ..TransportFaultPlan::none(seed)
            };
            let f1 = FaultyTransport::new(Box::new(t1), plan);
            let mut delivered = 0;
            for wire in 0..64 {
                t0.send(1, Frame::data(wire, wire, vec![wire as u8])).unwrap();
                if f1.recv_timeout(0, Duration::from_millis(5)).is_ok() {
                    delivered += 1;
                }
            }
            delivered
        };
        let a = count_drops(7);
        assert_eq!(a, count_drops(7), "same seed must replay identically");
        assert!(a > 0 && a < 64, "drop_p=0.5 should lose some but not all ({a}/64)");
    }

    #[test]
    fn frame_disconnect_kills_the_sender_side() {
        let mut world = InProcTransport::world(2);
        let _t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let plan = TransportFaultPlan {
            disconnects: vec![DisconnectRule { rank: 0, at: DisconnectPoint::Frame(2) }],
            ..TransportFaultPlan::none(0)
        };
        let f0 = FaultyTransport::new(Box::new(t0), plan);
        f0.send(1, Frame::heartbeat(0)).unwrap();
        f0.send(1, Frame::heartbeat(1)).unwrap();
        assert_eq!(
            f0.send(1, Frame::heartbeat(2)),
            Err(TransportError::Disconnected { peer: 0 })
        );
        assert_eq!(
            f0.recv_timeout(1, Duration::from_millis(1)),
            Err(TransportError::Disconnected { peer: 0 })
        );
    }

    #[test]
    fn delayed_frames_surface_after_enough_polls() {
        let mut world = InProcTransport::world(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let plan = TransportFaultPlan {
            delay_ticks: Some((1, 1)),
            ..TransportFaultPlan::none(3)
        };
        let f1 = FaultyTransport::new(Box::new(t1), plan);
        t0.send(1, Frame::data(0, 1, vec![5])).unwrap();
        // First poll parks the frame in the jitter buffer...
        assert!(f1.recv_timeout(0, Duration::from_millis(5)).is_err());
        // ...a later poll delivers it.
        let got = f1.recv_timeout(0, Duration::from_millis(5)).unwrap();
        assert_eq!(got.payload, vec![5]);
    }
}
