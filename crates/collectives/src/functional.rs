//! Functional (thread-based) collectives.
//!
//! Real multi-worker collectives over OS threads, used by the functional
//! data-parallel trainer: each rank contributes a buffer, a rendezvous
//! combines them, and every rank derives its result locally. Semantically
//! equivalent to NCCL's `all_reduce`, `all_gather`, and `reduce_scatter`
//! (sum reduction), which the ZeRO stages are built on.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Errors from collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CollectiveError {
    /// Ranks contributed buffers of different lengths to an operation that
    /// requires uniform lengths.
    LengthMismatch {
        /// The lengths observed, by rank.
        lengths: Vec<usize>,
    },
    /// A buffer could not be evenly partitioned across ranks.
    UnevenPartition {
        /// Buffer length.
        len: usize,
        /// World size.
        world: usize,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::LengthMismatch { lengths } => {
                write!(f, "ranks contributed different lengths: {lengths:?}")
            }
            CollectiveError::UnevenPartition { len, world } => {
                write!(f, "buffer of {len} elements does not partition across {world} ranks")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

#[derive(Debug)]
struct Slot {
    contributions: Vec<Option<Vec<f32>>>,
    arrived: usize,
    picked: usize,
    result: Option<Arc<Vec<Vec<f32>>>>,
}

#[derive(Debug)]
struct Shared {
    world: usize,
    slot: Mutex<Slot>,
    cv: Condvar,
}

/// One rank's handle to a world of collective peers.
///
/// Create the full world with [`Communicator::world`], hand one handle to
/// each thread, and call the collective methods; every method blocks until
/// all ranks of the world have called it.
///
/// # Examples
///
/// ```
/// use dos_collectives::Communicator;
/// use std::thread;
///
/// let comms = Communicator::world(2);
/// let handles: Vec<_> = comms
///     .into_iter()
///     .enumerate()
///     .map(|(r, comm)| {
///         thread::spawn(move || {
///             let mut data = vec![r as f32 + 1.0; 4];
///             comm.all_reduce_sum(&mut data).unwrap();
///             data
///         })
///     })
///     .collect();
/// for h in handles {
///     assert_eq!(h.join().unwrap(), vec![3.0; 4]);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Communicator {
    rank: usize,
    shared: Arc<Shared>,
}

impl Communicator {
    /// Creates the handles for a world of `world` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn world(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world must be positive");
        let shared = Arc::new(Shared {
            world,
            slot: Mutex::new(Slot {
                contributions: vec![None; world],
                arrived: 0,
                picked: 0,
                result: None,
            }),
            cv: Condvar::new(),
        });
        (0..world).map(|rank| Communicator { rank, shared: Arc::clone(&shared) }).collect()
    }

    /// This handle's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.shared.world
    }

    /// Exchanges a buffer with all peers; returns every rank's contribution.
    fn exchange(&self, data: Vec<f32>) -> Arc<Vec<Vec<f32>>> {
        let shared = &self.shared;
        let mut slot = shared.slot.lock();
        // Wait for any previous round to fully drain.
        while slot.result.is_some() {
            shared.cv.wait(&mut slot);
        }
        slot.contributions[self.rank] = Some(data);
        slot.arrived += 1;
        if slot.arrived == shared.world {
            let all: Vec<Vec<f32>> =
                slot.contributions.iter_mut().map(|c| c.take().expect("deposited")).collect();
            slot.result = Some(Arc::new(all));
            shared.cv.notify_all();
        } else {
            while slot.result.is_none() {
                shared.cv.wait(&mut slot);
            }
        }
        let result = Arc::clone(slot.result.as_ref().expect("result present"));
        slot.picked += 1;
        if slot.picked == shared.world {
            slot.result = None;
            slot.arrived = 0;
            slot.picked = 0;
            shared.cv.notify_all();
        }
        result
    }

    /// Blocks until every rank reaches the barrier.
    pub fn barrier(&self) {
        let _ = self.exchange(Vec::new());
    }

    /// Sums `data` element-wise across all ranks, in place on every rank
    /// (data parallelism's gradient averaging, before division).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if ranks disagree on
    /// length.
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), CollectiveError> {
        let all = self.exchange(data.to_vec());
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        data.fill(0.0);
        for contribution in all.iter() {
            for (d, c) in data.iter_mut().zip(contribution.iter()) {
                *d += c;
            }
        }
        Ok(())
    }

    /// Gathers every rank's buffer, concatenated in rank order (ZeRO-3's
    /// layer-shard reassembly on the forward/backward path).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if ranks disagree on
    /// length.
    pub fn all_gather(&self, data: &[f32]) -> Result<Vec<f32>, CollectiveError> {
        let all = self.exchange(data.to_vec());
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        let mut out = Vec::with_capacity(data.len() * all.len());
        for contribution in all.iter() {
            out.extend_from_slice(contribution);
        }
        Ok(out)
    }

    /// Reduces (sums) full-length buffers and returns this rank's 1/world
    /// chunk (ZeRO's gradient partitioning primitive).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::UnevenPartition`] if the length is not a
    /// multiple of the world size, or [`CollectiveError::LengthMismatch`]
    /// if ranks disagree on length.
    pub fn reduce_scatter_sum(&self, data: &[f32]) -> Result<Vec<f32>, CollectiveError> {
        let world = self.shared.world;
        if !data.len().is_multiple_of(world) {
            return Err(CollectiveError::UnevenPartition { len: data.len(), world });
        }
        let all = self.exchange(data.to_vec());
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        let chunk = data.len() / world;
        let start = self.rank * chunk;
        let mut out = vec![0.0; chunk];
        for contribution in all.iter() {
            for (o, c) in out.iter_mut().zip(contribution[start..start + chunk].iter()) {
                *o += c;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F, T>(world: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let comms = Communicator::world(world);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let results = run_world(4, |c| {
            let mut data = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_sum(&mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![10.0; 3]); // 1+2+3+4
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let results = run_world(3, |c| c.all_gather(&[c.rank() as f32]).unwrap());
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn reduce_scatter_returns_own_chunk() {
        let results = run_world(2, |c| {
            let data: Vec<f32> = (0..4).map(|i| (i + 1) as f32 * (c.rank() + 1) as f32).collect();
            (c.rank(), c.reduce_scatter_sum(&data).unwrap())
        });
        // Sum over ranks: [1,2,3,4] + [2,4,6,8] = [3,6,9,12].
        for (rank, chunk) in results {
            if rank == 0 {
                assert_eq!(chunk, vec![3.0, 6.0]);
            } else {
                assert_eq!(chunk, vec![9.0, 12.0]);
            }
        }
    }

    #[test]
    fn repeated_collectives_reuse_the_slot() {
        let results = run_world(3, |c| {
            let mut acc = 0.0;
            for round in 0..10 {
                let mut data = vec![round as f32 + c.rank() as f32];
                c.all_reduce_sum(&mut data).unwrap();
                acc += data[0];
            }
            acc
        });
        // Each round: sum over ranks of (round + rank) = 3*round + 3.
        let expected: f32 = (0..10).map(|r| 3.0 * r as f32 + 3.0).sum();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn uneven_reduce_scatter_is_rejected() {
        let results = run_world(2, |c| c.reduce_scatter_sum(&[1.0, 2.0, 3.0]));
        for r in results {
            assert!(matches!(r, Err(CollectiveError::UnevenPartition { len: 3, world: 2 })));
        }
    }

    #[test]
    fn barrier_synchronizes() {
        // All ranks must pass; hang = failure by test timeout.
        let results = run_world(4, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn single_rank_world_is_identity() {
        let comms = Communicator::world(1);
        let c = &comms[0];
        let mut d = vec![1.0, 2.0];
        c.all_reduce_sum(&mut d).unwrap();
        assert_eq!(d, vec![1.0, 2.0]);
        assert_eq!(c.all_gather(&d).unwrap(), d);
        assert_eq!(c.reduce_scatter_sum(&d).unwrap(), d);
    }
}
