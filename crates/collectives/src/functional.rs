//! Functional collectives over a pluggable, fault-tolerant transport.
//!
//! Real multi-worker collectives used by the functional data-parallel
//! trainer: each rank broadcasts its contribution to every peer over a
//! [`Transport`] mesh and reduces the gathered buffers **in rank order**,
//! so the result is bitwise identical regardless of arrival order,
//! retransmissions, or which backend carried the frames. Semantically
//! equivalent to NCCL's `all_reduce`, `all_gather`, and `reduce_scatter`
//! (sum reduction), which the ZeRO stages are built on.
//!
//! Robustness (deadline mode, `timeout: Some(_)`):
//!
//! * every collective has a per-op deadline; while waiting, ranks poll
//!   peers round-robin in short slices and emit heartbeats;
//! * suspected losses trigger retransmission of the rank's own
//!   contribution plus a [`FrameKind::Resend`] request, backed off per the
//!   shared [`RetryPolicy`]; contributions are sequence-numbered and
//!   deduped, so a duplicate delivery can never double-count — retries are
//!   bitwise-exact;
//! * a peer that is both past the deadline and silent for several
//!   heartbeat intervals — or whose link is gone — is reported as
//!   [`CollectiveError::RankFailed`]; a peer that is alive but slow is a
//!   [`CollectiveError::Timeout`]. Callers (the elastic trainer) decide
//!   whether to evict or to keep waiting.
//!
//! Blocking mode (`timeout: None`) has no clock: ranks block per-peer in
//! rank order, and liveness comes from disconnect propagation — a rank
//! that panics unwinds, drops its transport, and every peer blocked on it
//! gets [`CollectiveError::RankFailed`] instead of hanging (the barrier
//! poisoning fix). This is also the mode `dos-check` explores, where the
//! cooperative scheduler's deadlock detector subsumes timeouts.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dos_hal::RetryPolicy;

use crate::transport::{Frame, FrameKind, Transport, TransportError};
use crate::InProcTransport;

/// How many completed ops' payloads each rank keeps for serving resend
/// requests (and absorbing very stale duplicates).
const HISTORY: usize = 8;

/// Errors from collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CollectiveError {
    /// Ranks contributed buffers of different lengths to an operation that
    /// requires uniform lengths.
    LengthMismatch {
        /// The lengths observed, by rank.
        lengths: Vec<usize>,
    },
    /// A buffer could not be evenly partitioned across ranks.
    UnevenPartition {
        /// Buffer length.
        len: usize,
        /// World size.
        world: usize,
    },
    /// The per-op deadline elapsed but the slow peer was recently heard
    /// from (alive, just late). Retryable by the caller.
    Timeout {
        /// Which collective timed out.
        op: &'static str,
        /// The peer the operation was stuck on.
        rank: usize,
        /// Time spent in the operation before giving up.
        elapsed: Duration,
    },
    /// A peer is gone: its link disconnected, or it stayed silent past the
    /// deadline and several heartbeat intervals.
    RankFailed {
        /// The dead peer (the local rank itself when the local endpoint
        /// was torn down, e.g. by an injected disconnect).
        rank: usize,
        /// The collective that observed the failure.
        op: &'static str,
    },
    /// The transport failed in a way retries could not absorb.
    Transport {
        /// The collective that observed the failure.
        op: &'static str,
        /// Underlying transport error.
        detail: String,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::LengthMismatch { lengths } => {
                write!(f, "ranks contributed different lengths: {lengths:?}")
            }
            CollectiveError::UnevenPartition { len, world } => {
                write!(f, "buffer of {len} elements does not partition across {world} ranks")
            }
            CollectiveError::Timeout { op, rank, elapsed } => {
                write!(f, "{op} timed out after {elapsed:?} waiting on rank {rank}")
            }
            CollectiveError::RankFailed { rank, op } => {
                write!(f, "rank {rank} failed during {op}")
            }
            CollectiveError::Transport { op, detail } => {
                write!(f, "transport error during {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

/// Deadline / retry / heartbeat parameters of a [`Communicator`].
#[derive(Debug, Clone)]
pub struct CollectiveConfig {
    /// Per-operation deadline. `None` selects blocking mode (no clock —
    /// required under `dos-check`); `Some` selects deadline mode with
    /// heartbeats, retransmits, and failure detection.
    pub timeout: Option<Duration>,
    /// Backoff schedule for loss-suspected retransmits (shared with the
    /// HAL's fault model, so chaos campaigns tune one policy).
    pub retry: RetryPolicy,
    /// Heartbeat interval; the poll slice is a quarter of it. A peer
    /// silent for `3 * heartbeat` past the deadline is declared failed.
    pub heartbeat: Duration,
}

impl Default for CollectiveConfig {
    fn default() -> CollectiveConfig {
        CollectiveConfig {
            timeout: None,
            retry: RetryPolicy::default(),
            heartbeat: Duration::from_millis(25),
        }
    }
}

impl CollectiveConfig {
    /// Deadline mode with the given per-op timeout.
    pub fn with_timeout(timeout: Duration) -> CollectiveConfig {
        CollectiveConfig { timeout: Some(timeout), ..CollectiveConfig::default() }
    }

    fn backoff_after(&self, attempt: u32) -> Duration {
        let base = self.retry.backoff.as_secs().max(1e-4);
        Duration::from_secs_f64(base * self.retry.backoff_multiplier.powi(attempt as i32))
    }
}

struct CommState {
    /// Monotonic collective-operation counter (identical across ranks by
    /// SPMD construction: every rank issues the same op sequence).
    op_seq: u64,
    /// Per-link transmission counter; fresh per send, including resends.
    wire_seq: u64,
    /// Out-of-order buffer: `inbox[peer][op] = payload` for ops ahead of
    /// the one currently being collected.
    inbox: Vec<BTreeMap<u64, Vec<u8>>>,
    /// Recent own contributions, kept to serve resend requests
    /// byte-identically.
    history: Vec<(u64, Vec<u8>)>,
}

/// One rank's handle to a world of collective peers.
///
/// Create an in-process world with [`Communicator::world`], hand one
/// handle to each thread, and call the collective methods; every method
/// completes once all ranks of the world have called it (or returns a
/// typed error once a peer is known dead or too slow).
///
/// # Examples
///
/// ```
/// use dos_collectives::Communicator;
/// use std::thread;
///
/// let comms = Communicator::world(2);
/// let handles: Vec<_> = comms
///     .into_iter()
///     .enumerate()
///     .map(|(r, comm)| {
///         thread::spawn(move || {
///             let mut data = vec![r as f32 + 1.0; 4];
///             comm.all_reduce_sum(&mut data).unwrap();
///             data
///         })
///     })
///     .collect();
/// for h in handles {
///     assert_eq!(h.join().unwrap(), vec![3.0; 4]);
/// }
/// ```
pub struct Communicator {
    transport: Box<dyn Transport>,
    cfg: CollectiveConfig,
    state: Mutex<CommState>,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank())
            .field("world", &self.world_size())
            .field("cfg", &self.cfg)
            .finish()
    }
}

fn encode_f32(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_f32(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

impl Communicator {
    /// Wraps a transport endpoint with the collective layer.
    pub fn new(transport: Box<dyn Transport>, cfg: CollectiveConfig) -> Communicator {
        let world = transport.world_size();
        Communicator {
            transport,
            cfg,
            state: Mutex::new(CommState {
                op_seq: 0,
                wire_seq: 0,
                inbox: vec![BTreeMap::new(); world],
                history: Vec::new(),
            }),
        }
    }

    /// Creates the handles for an in-process world of `world` ranks in
    /// blocking mode (the historical default).
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn world(world: usize) -> Vec<Communicator> {
        Communicator::world_with(world, CollectiveConfig::default())
    }

    /// Creates an in-process world with an explicit [`CollectiveConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn world_with(world: usize, cfg: CollectiveConfig) -> Vec<Communicator> {
        InProcTransport::world(world)
            .into_iter()
            .map(|t| Communicator::new(Box::new(t), cfg.clone()))
            .collect()
    }

    /// This handle's rank.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.transport.world_size()
    }

    /// Forwards the training epoch to the transport (fault plans key
    /// scheduled disconnects and partition windows off it).
    pub fn set_epoch(&self, epoch: u64) {
        self.transport.set_epoch(epoch);
    }

    /// Handles one inbound frame during collection for op `opn`.
    /// Returns the payload if it completes the wait for `from`.
    fn absorb(
        &self,
        st: &mut CommState,
        from: usize,
        frame: Frame,
        opn: u64,
        have: bool,
    ) -> Option<Vec<u8>> {
        match frame.kind {
            FrameKind::Heartbeat | FrameKind::Bye => None,
            FrameKind::Resend => {
                // Serve byte-identical retransmission from history; unknown
                // ops (older than the window) are ignored — the requester
                // has either completed them or will fail by deadline.
                if let Some((_, payload)) =
                    st.history.iter().find(|(o, _)| *o == frame.op_seq).cloned()
                {
                    st.wire_seq += 1;
                    let _ = self.transport.send(from, Frame::data(st.wire_seq, frame.op_seq, payload));
                }
                None
            }
            FrameKind::Data => {
                if frame.op_seq == opn {
                    // Duplicate deliveries of the op being collected are
                    // discarded by the `have` check: idempotent.
                    if have {
                        None
                    } else {
                        Some(frame.payload)
                    }
                } else if frame.op_seq > opn {
                    // Early frame for a future op: park it.
                    st.inbox[from].entry(frame.op_seq).or_insert(frame.payload);
                    None
                } else {
                    // Stale duplicate of a completed op.
                    None
                }
            }
        }
    }

    /// Exchanges a buffer with all peers; returns every rank's
    /// contribution, indexed by rank.
    fn exchange(&self, op: &'static str, data: Vec<f32>) -> Result<Vec<Vec<f32>>, CollectiveError> {
        let world = self.world_size();
        let rank = self.rank();
        if world == 1 {
            return Ok(vec![data]);
        }
        let mut st = self.state.lock();
        st.op_seq += 1;
        let opn = st.op_seq;
        let payload = encode_f32(&data);
        st.history.push((opn, payload.clone()));
        if st.history.len() > HISTORY {
            st.history.remove(0);
        }

        // Send phase: broadcast our contribution.
        for peer in (0..world).filter(|&p| p != rank) {
            st.wire_seq += 1;
            let frame = Frame::data(st.wire_seq, opn, payload.clone());
            self.transport.send(peer, frame).map_err(|e| match e {
                TransportError::Disconnected { peer } => CollectiveError::RankFailed { rank: peer, op },
                other => CollectiveError::Transport { op, detail: other.to_string() },
            })?;
        }

        // Collect phase.
        let mut got: Vec<Option<Vec<u8>>> = vec![None; world];
        got[rank] = Some(payload.clone());
        for peer in (0..world).filter(|&p| p != rank) {
            if let Some(buf) = st.inbox[peer].remove(&opn) {
                got[peer] = Some(buf);
            }
        }
        match self.cfg.timeout {
            None => self.collect_blocking(&mut st, op, opn, &mut got)?,
            Some(deadline) => self.collect_deadline(&mut st, op, opn, &payload, deadline, &mut got)?,
        }

        // Anything still buffered at or below this op is a stale duplicate.
        for peer in 0..world {
            st.inbox[peer].retain(|&o, _| o > opn);
        }
        Ok(got
            .into_iter()
            .map(|b| decode_f32(&b.unwrap_or_default()))
            .collect())
    }

    /// Blocking collection: per-peer, in rank order. Liveness comes from
    /// disconnect propagation (a dead peer's links error out).
    fn collect_blocking(
        &self,
        st: &mut CommState,
        op: &'static str,
        opn: u64,
        got: &mut [Option<Vec<u8>>],
    ) -> Result<(), CollectiveError> {
        for (peer, slot) in got.iter_mut().enumerate() {
            while slot.is_none() {
                let frame = self.transport.recv(peer).map_err(|e| match e {
                    TransportError::Disconnected { peer } => {
                        CollectiveError::RankFailed { rank: peer, op }
                    }
                    other => CollectiveError::Transport { op, detail: other.to_string() },
                })?;
                if let Some(buf) = self.absorb(st, peer, frame, opn, slot.is_some()) {
                    *slot = Some(buf);
                }
            }
        }
        Ok(())
    }

    /// Deadline collection: round-robin short-slice polling over the
    /// missing peers, with heartbeats, backoff-scheduled retransmit
    /// nudges, and failure attribution at the deadline.
    fn collect_deadline(
        &self,
        st: &mut CommState,
        op: &'static str,
        opn: u64,
        payload: &[u8],
        deadline: Duration,
        got: &mut [Option<Vec<u8>>],
    ) -> Result<(), CollectiveError> {
        let world = got.len();
        let start = Instant::now();
        let slice = (self.cfg.heartbeat / 4).max(Duration::from_millis(1));
        let mut last_heard = vec![start; world];
        let mut last_beat = start;
        let mut attempt = vec![0u32; world];
        let mut next_nudge = vec![start + self.cfg.backoff_after(0); world];
        loop {
            let missing: Vec<usize> = (0..world).filter(|&p| got[p].is_none()).collect();
            if missing.is_empty() {
                return Ok(());
            }
            for &peer in &missing {
                match self.transport.recv_timeout(peer, slice) {
                    Ok(frame) => {
                        last_heard[peer] = Instant::now();
                        if let Some(buf) = self.absorb(st, peer, frame, opn, got[peer].is_some()) {
                            got[peer] = Some(buf);
                        }
                    }
                    Err(TransportError::Timeout { .. }) => {}
                    Err(TransportError::Disconnected { peer: dead }) => {
                        return Err(CollectiveError::RankFailed { rank: dead, op });
                    }
                    Err(other) => {
                        attempt[peer] += 1;
                        if attempt[peer] > self.cfg.retry.max_retries {
                            return Err(CollectiveError::Transport { op, detail: other.to_string() });
                        }
                    }
                }
            }
            let now = Instant::now();
            // Heartbeats go only to peers we are still waiting on: a peer
            // we already heard from may legitimately have finished its
            // final collective and gone away.
            if now.duration_since(last_beat) >= self.cfg.heartbeat {
                for p in (0..world).filter(|p| got[*p].is_none()) {
                    st.wire_seq += 1;
                    if let Err(TransportError::Disconnected { peer: dead }) =
                        self.transport.send(p, Frame::heartbeat(st.wire_seq))
                    {
                        return Err(CollectiveError::RankFailed { rank: dead, op });
                    }
                }
                last_beat = now;
            }
            // Loss-suspected nudges: retransmit our own contribution (the
            // peer may have lost it and be stuck waiting on *us*) and
            // request theirs. New wire numbers, same op number: fault
            // plans re-roll, receivers dedupe.
            for p in (0..world).filter(|p| got[*p].is_none()) {
                if now >= next_nudge[p] && attempt[p] <= self.cfg.retry.max_retries {
                    st.wire_seq += 1;
                    let resent = Frame::data(st.wire_seq, opn, payload.to_vec());
                    st.wire_seq += 1;
                    let ask = Frame::resend(st.wire_seq, opn);
                    for frame in [resent, ask] {
                        if let Err(TransportError::Disconnected { peer: dead }) =
                            self.transport.send(p, frame)
                        {
                            return Err(CollectiveError::RankFailed { rank: dead, op });
                        }
                    }
                    attempt[p] += 1;
                    next_nudge[p] = now + self.cfg.backoff_after(attempt[p]);
                }
            }
            let elapsed = now.duration_since(start);
            if elapsed >= deadline {
                let peer = *missing.first().unwrap_or(&0);
                let silent_for = now.duration_since(last_heard[peer]);
                return if silent_for > self.cfg.heartbeat * 3 {
                    Err(CollectiveError::RankFailed { rank: peer, op })
                } else {
                    Err(CollectiveError::Timeout { op, rank: peer, elapsed })
                };
            }
        }
    }

    /// Blocks until every rank reaches the barrier.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::RankFailed`] if a participant died
    /// before arriving (poison propagation — waiters never hang on a
    /// dead peer), or [`CollectiveError::Timeout`] in deadline mode.
    pub fn barrier(&self) -> Result<(), CollectiveError> {
        self.exchange("barrier", Vec::new()).map(|_| ())
    }

    /// Sums `data` element-wise across all ranks, in place on every rank
    /// (data parallelism's gradient averaging, before division). The sum
    /// is accumulated in rank order, independent of arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if ranks disagree on
    /// length, or a robustness error ([`CollectiveError::Timeout`],
    /// [`CollectiveError::RankFailed`], [`CollectiveError::Transport`]).
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), CollectiveError> {
        let all = self.exchange("all_reduce", data.to_vec())?;
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        data.fill(0.0);
        for contribution in all.iter() {
            for (d, c) in data.iter_mut().zip(contribution.iter()) {
                *d += c;
            }
        }
        Ok(())
    }

    /// Gathers every rank's buffer, concatenated in rank order (ZeRO-3's
    /// layer-shard reassembly on the forward/backward path).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::LengthMismatch`] if ranks disagree on
    /// length, or a robustness error as for
    /// [`Communicator::all_reduce_sum`].
    pub fn all_gather(&self, data: &[f32]) -> Result<Vec<f32>, CollectiveError> {
        let all = self.exchange("all_gather", data.to_vec())?;
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        let mut out = Vec::with_capacity(data.len() * all.len());
        for contribution in all.iter() {
            out.extend_from_slice(contribution);
        }
        Ok(out)
    }

    /// Gathers buffers of possibly different lengths, concatenated in rank
    /// order (elastic checkpoint reassembly gathers uneven tail shards).
    ///
    /// # Errors
    ///
    /// Returns a robustness error as for [`Communicator::all_reduce_sum`].
    pub fn all_gather_var(&self, data: &[f32]) -> Result<Vec<f32>, CollectiveError> {
        let all = self.exchange("all_gather", data.to_vec())?;
        let mut out = Vec::new();
        for contribution in all.iter() {
            out.extend_from_slice(contribution);
        }
        Ok(out)
    }

    /// Gracefully tears down this rank's endpoint after its final
    /// collective.
    ///
    /// In deadline mode a completed contribution can still be lost on the
    /// wire: if this rank simply dropped its transport after its last op, a
    /// slower peer whose copy of the final frame was dropped could never
    /// get a retransmission and would misreport a rank failure. `shutdown`
    /// closes that race: the rank lingers — serving [`FrameKind::Resend`]
    /// requests byte-identically from history and re-broadcasting
    /// [`FrameKind::Bye`] every heartbeat interval — until every peer has
    /// said `Bye` back (or disconnected), or `grace` elapses. A peer is
    /// only marked done on `Bye`/disconnect, both of which prove it needs
    /// nothing further, so leaving early is safe.
    ///
    /// Blocking mode returns immediately: without lossy fault injection
    /// frames cannot be dropped, and polling would not be meaningful under
    /// the virtual scheduler.
    pub fn shutdown(self, grace: Duration) {
        if self.cfg.timeout.is_none() {
            return;
        }
        let world = self.world_size();
        let rank = self.rank();
        if world == 1 {
            return;
        }
        let mut st = self.state.lock();
        let opn = st.op_seq;
        let start = Instant::now();
        let slice = (self.cfg.heartbeat / 4).max(Duration::from_millis(1));
        let mut done = vec![false; world];
        done[rank] = true;
        let mut last_bye: Option<Instant> = None;
        while done.iter().any(|d| !d) && start.elapsed() < grace {
            let now = Instant::now();
            if last_bye.is_none_or(|t| now.duration_since(t) >= self.cfg.heartbeat) {
                for (p, d) in done.iter_mut().enumerate() {
                    if *d {
                        continue;
                    }
                    st.wire_seq += 1;
                    if self.transport.send(p, Frame::bye(st.wire_seq)).is_err() {
                        *d = true;
                    }
                }
                last_bye = Some(now);
            }
            for (p, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                match self.transport.recv_timeout(p, slice) {
                    Ok(frame) if frame.kind == FrameKind::Bye => *d = true,
                    Ok(frame) => {
                        // Serve resends; stale data/heartbeats are no-ops.
                        let _ = self.absorb(&mut st, p, frame, opn + 1, true);
                    }
                    Err(TransportError::Disconnected { .. }) => *d = true,
                    Err(_) => {}
                }
            }
        }
    }

    /// Reduces (sums) full-length buffers and returns this rank's 1/world
    /// chunk (ZeRO's gradient partitioning primitive).
    ///
    /// # Errors
    ///
    /// Returns [`CollectiveError::UnevenPartition`] if the length is not a
    /// multiple of the world size, [`CollectiveError::LengthMismatch`] if
    /// ranks disagree on length, or a robustness error as for
    /// [`Communicator::all_reduce_sum`].
    pub fn reduce_scatter_sum(&self, data: &[f32]) -> Result<Vec<f32>, CollectiveError> {
        let world = self.world_size();
        if !data.len().is_multiple_of(world) {
            return Err(CollectiveError::UnevenPartition { len: data.len(), world });
        }
        let all = self.exchange("reduce_scatter", data.to_vec())?;
        if all.iter().any(|c| c.len() != data.len()) {
            return Err(CollectiveError::LengthMismatch {
                lengths: all.iter().map(Vec::len).collect(),
            });
        }
        let chunk = data.len() / world;
        let start = self.rank() * chunk;
        let mut out = vec![0.0; chunk];
        for contribution in all.iter() {
            for (o, c) in out.iter_mut().zip(contribution[start..start + chunk].iter()) {
                *o += c;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{DisconnectPoint, DisconnectRule, FaultyTransport, TransportFaultPlan};
    use std::thread;

    fn run_world<F, T>(world: usize, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        run_comms(Communicator::world(world), f)
    }

    fn run_comms<F, T>(comms: Vec<Communicator>, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + Clone + 'static,
        T: Send + 'static,
    {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    }

    /// An in-process world where each rank's transport is wrapped in the
    /// given fault plan.
    fn faulty_world(world: usize, plan: &TransportFaultPlan, cfg: CollectiveConfig) -> Vec<Communicator> {
        InProcTransport::world(world)
            .into_iter()
            .map(|t| {
                Communicator::new(
                    Box::new(FaultyTransport::new(Box::new(t), plan.clone())),
                    cfg.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let results = run_world(4, |c| {
            let mut data = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_sum(&mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![10.0; 3]); // 1+2+3+4
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let results = run_world(3, |c| c.all_gather(&[c.rank() as f32]).unwrap());
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn all_gather_var_handles_uneven_shards() {
        let results = run_world(3, |c| {
            let data: Vec<f32> = (0..=c.rank()).map(|i| i as f32).collect();
            c.all_gather_var(&data).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![0.0, 0.0, 1.0, 0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn reduce_scatter_returns_own_chunk() {
        let results = run_world(2, |c| {
            let data: Vec<f32> = (0..4).map(|i| (i + 1) as f32 * (c.rank() + 1) as f32).collect();
            (c.rank(), c.reduce_scatter_sum(&data).unwrap())
        });
        // Sum over ranks: [1,2,3,4] + [2,4,6,8] = [3,6,9,12].
        for (rank, chunk) in results {
            if rank == 0 {
                assert_eq!(chunk, vec![3.0, 6.0]);
            } else {
                assert_eq!(chunk, vec![9.0, 12.0]);
            }
        }
    }

    #[test]
    fn repeated_collectives_advance_op_numbers() {
        let results = run_world(3, |c| {
            let mut acc = 0.0;
            for round in 0..10 {
                let mut data = vec![round as f32 + c.rank() as f32];
                c.all_reduce_sum(&mut data).unwrap();
                acc += data[0];
            }
            acc
        });
        // Each round: sum over ranks of (round + rank) = 3*round + 3.
        let expected: f32 = (0..10).map(|r| 3.0 * r as f32 + 3.0).sum();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn uneven_reduce_scatter_is_rejected() {
        let results = run_world(2, |c| c.reduce_scatter_sum(&[1.0, 2.0, 3.0]));
        for r in results {
            assert!(matches!(r, Err(CollectiveError::UnevenPartition { len: 3, world: 2 })));
        }
    }

    #[test]
    fn barrier_synchronizes() {
        // All ranks must pass; hang = failure by test timeout.
        let results = run_world(4, |c| {
            c.barrier().unwrap();
            c.rank()
        });
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn single_rank_world_is_identity() {
        let comms = Communicator::world(1);
        let c = &comms[0];
        let mut d = vec![1.0, 2.0];
        c.all_reduce_sum(&mut d).unwrap();
        assert_eq!(d, vec![1.0, 2.0]);
        assert_eq!(c.all_gather(&d).unwrap(), d);
        assert_eq!(c.reduce_scatter_sum(&d).unwrap(), d);
    }

    #[test]
    fn barrier_poisoning_a_panicked_rank_errors_waiters_instead_of_hanging() {
        // Satellite fix: rank 2 "panics before arriving" — modeled by its
        // communicator being dropped during unwind. Survivors must get
        // RankFailed, not block forever.
        let mut comms = Communicator::world(3);
        let dead = comms.remove(2);
        drop(dead);
        let results = run_comms(comms, |c| c.barrier());
        // Attribution under cascading teardown is racy (the first survivor
        // to error drops its own links, and the second may observe *that*
        // death first), but the liveness contract is exact: every survivor
        // errors with RankFailed rather than hanging, and the survivor that
        // failed first can only have been failed by the poisoned rank 2.
        assert!(
            results
                .iter()
                .all(|r| matches!(r, Err(CollectiveError::RankFailed { op: "barrier", .. }))),
            "survivors must all see RankFailed: {results:?}"
        );
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(CollectiveError::RankFailed { rank: 2, .. }))),
            "the first failure must name the poisoned rank: {results:?}"
        );
    }

    #[test]
    fn deadline_mode_matches_blocking_numerics() {
        let cfg = CollectiveConfig::with_timeout(Duration::from_secs(5));
        let results = run_comms(Communicator::world_with(4, cfg), |c| {
            let mut data = vec![(c.rank() + 1) as f32; 5];
            c.all_reduce_sum(&mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![10.0; 5]);
        }
    }

    #[test]
    fn lossy_transport_is_bitwise_invisible_with_retransmits() {
        // Drops + delays + dups, no permanent failures: every collective
        // must converge to exactly the loss-free answer.
        let plan = TransportFaultPlan {
            drop_p: 0.2,
            dup_p: 0.1,
            delay_ticks: Some((0, 2)),
            ..TransportFaultPlan::none(42)
        };
        let mut cfg = CollectiveConfig::with_timeout(Duration::from_secs(10));
        cfg.heartbeat = Duration::from_millis(5);
        // Enough retransmit attempts that a 0.2 drop rate cannot plausibly
        // eat every copy of a contribution before the deadline.
        cfg.retry.max_retries = 12;
        let results = run_comms(faulty_world(3, &plan, cfg), |c| {
            let mut acc = Vec::new();
            for round in 0..6 {
                let mut data: Vec<f32> =
                    (0..4).map(|i| (round * 7 + i + c.rank() * 3) as f32 * 0.25).collect();
                c.all_reduce_sum(&mut data).unwrap();
                acc.extend(data);
            }
            // A fast rank must not vanish while a slower peer may still
            // need a retransmission of its round-6 contribution.
            c.shutdown(Duration::from_secs(10));
            acc
        });
        let expected: Vec<f32> = (0..6)
            .flat_map(|round| {
                (0..4).map(move |i| {
                    (0..3).map(|rank| (round * 7 + i + rank * 3) as f32 * 0.25).sum::<f32>()
                })
            })
            .collect();
        for r in results {
            assert_eq!(r, expected, "lossy run diverged from loss-free numerics");
        }
    }

    #[test]
    fn mid_collective_disconnect_is_reported_within_the_deadline() {
        // Rank 1's endpoint dies after 3 frames — inside the second
        // all_reduce's send fan-out for world=3 (2 frames per op). The
        // survivors must observe RankFailed (never hang), and rank 1 sees
        // its own endpoint die.
        let plan = TransportFaultPlan {
            disconnects: vec![DisconnectRule { rank: 1, at: DisconnectPoint::Frame(3) }],
            ..TransportFaultPlan::none(0)
        };
        let mut cfg = CollectiveConfig::with_timeout(Duration::from_millis(400));
        cfg.heartbeat = Duration::from_millis(10);
        let started = Instant::now();
        let results = run_comms(faulty_world(3, &plan, cfg), |c| {
            for round in 0..4 {
                let mut data = vec![round as f32; 2];
                c.all_reduce_sum(&mut data)?;
            }
            Ok(())
        });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "failure detection must not hang"
        );
        // The injected victim must see its own endpoint die; survivors
        // must all fail (RankFailed or, if they raced the teardown,
        // Timeout) — exact attribution is racy under cascading link
        // deaths, but nobody may succeed or hang.
        let mut failed_ranks = 0;
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Err(CollectiveError::RankFailed { rank: dead, .. }) => {
                    failed_ranks += 1;
                    if rank == 1 {
                        assert_eq!(dead, 1, "the victim must blame its own endpoint");
                    }
                }
                Err(CollectiveError::Timeout { .. }) if rank != 1 => failed_ranks += 1,
                other => panic!("rank {rank}: expected failure, got {other:?}"),
            }
        }
        assert_eq!(failed_ranks, 3);
    }

    #[test]
    fn slow_peer_is_a_timeout_not_a_rank_failure() {
        // Rank 1 heartbeats diligently but never contributes: provably
        // alive, just slow. The detector must classify that as Timeout
        // (retry territory), not RankFailed (eviction territory).
        let mut world = InProcTransport::world(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        let mut cfg = CollectiveConfig::with_timeout(Duration::from_millis(80));
        cfg.heartbeat = Duration::from_millis(10);
        let c0 = Communicator::new(Box::new(t0), cfg);
        let beater = thread::spawn(move || {
            let stop_at = Instant::now() + Duration::from_millis(400);
            let mut wire = 0;
            while Instant::now() < stop_at {
                wire += 1;
                if t1.send(0, Frame::heartbeat(wire)).is_err() {
                    break;
                }
                // Drain inbound traffic so rank 0's nudges don't pile up.
                while t1.recv_timeout(0, Duration::from_millis(1)).is_ok() {}
                thread::sleep(Duration::from_millis(5));
            }
        });
        let err = {
            let mut d = vec![1.0];
            c0.all_reduce_sum(&mut d).unwrap_err()
        };
        drop(c0);
        beater.join().unwrap();
        match err {
            CollectiveError::Timeout { op, rank, elapsed } => {
                assert_eq!(op, "all_reduce");
                assert_eq!(rank, 1);
                assert!(elapsed >= Duration::from_millis(80));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_the_failing_op_and_rank() {
        let t = CollectiveError::Timeout {
            op: "all_reduce",
            rank: 2,
            elapsed: Duration::from_millis(150),
        };
        assert!(t.to_string().contains("all_reduce"));
        assert!(t.to_string().contains("rank 2"));
        let f = CollectiveError::RankFailed { rank: 1, op: "barrier" };
        assert_eq!(f.to_string(), "rank 1 failed during barrier");
    }
}
