//! In-process transport: one facade channel per directed rank pair.
//!
//! The original `Communicator` was a condvar rendezvous; this replaces it
//! with the same mesh message-passing shape the socket backend uses, but
//! over [`dos_sync`] channels. Because those channels virtualize under the
//! cooperative scheduler, a world built inside a `dos-check` run has every
//! send/recv as an explorable yield point — and because each rank *owns*
//! its outgoing senders, a rank that panics (unwinding its stack and
//! dropping its transport) disconnects its links, so peers blocked on it
//! observe [`TransportError::Disconnected`] instead of hanging forever.

use std::time::Duration;

use dos_sync as sync;

use crate::transport::{Frame, Transport, TransportError};

/// In-process [`Transport`]: unbounded facade channels between every
/// ordered pair of ranks.
pub struct InProcTransport {
    rank: usize,
    world: usize,
    /// `to_peer[p]` carries frames from this rank to rank `p` (`None` at
    /// `p == rank`).
    to_peer: Vec<Option<sync::Sender<Frame>>>,
    /// `from_peer[p]` yields frames sent by rank `p` to this rank.
    from_peer: Vec<Option<sync::Receiver<Frame>>>,
}

impl std::fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

impl InProcTransport {
    /// Builds the full mesh for a world of `world` ranks, one transport
    /// per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn world(world: usize) -> Vec<InProcTransport> {
        assert!(world > 0, "world must be positive");
        // links[i][j]: channel carrying i -> j traffic.
        let mut senders: Vec<Vec<Option<sync::Sender<Frame>>>> = Vec::with_capacity(world);
        let mut receivers: Vec<Vec<Option<sync::Receiver<Frame>>>> = Vec::with_capacity(world);
        for _ in 0..world {
            senders.push((0..world).map(|_| None).collect());
            receivers.push((0..world).map(|_| None).collect());
        }
        for i in 0..world {
            for j in 0..world {
                if i == j {
                    continue;
                }
                let (tx, rx) = sync::unbounded();
                senders[i][j] = Some(tx);
                // Receiver lives with rank j, indexed by source i.
                receivers[j][i] = Some(rx);
            }
        }
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (to_peer, from_peer))| InProcTransport { rank, world, to_peer, from_peer })
            .collect()
    }

    fn sender(&self, to: usize) -> Result<&sync::Sender<Frame>, TransportError> {
        self.to_peer
            .get(to)
            .and_then(Option::as_ref)
            .ok_or(TransportError::Disconnected { peer: to })
    }

    fn receiver(&self, from: usize) -> Result<&sync::Receiver<Frame>, TransportError> {
        self.from_peer
            .get(from)
            .and_then(Option::as_ref)
            .ok_or(TransportError::Disconnected { peer: from })
    }
}

impl Transport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, frame: Frame) -> Result<(), TransportError> {
        self.sender(to)?
            .send(frame)
            .map_err(|_| TransportError::Disconnected { peer: to })
    }

    fn recv(&self, from: usize) -> Result<Frame, TransportError> {
        self.receiver(from)?
            .recv()
            .map_err(|_| TransportError::Disconnected { peer: from })
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Frame, TransportError> {
        match self.receiver(from)?.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(sync::RecvTimeoutError::Timeout) => Err(TransportError::Timeout { peer: from }),
            Err(sync::RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected { peer: from })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_ranks() {
        let mut world = InProcTransport::world(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        t0.send(1, Frame::data(0, 1, vec![9])).unwrap();
        let got = t1.recv(0).unwrap();
        assert_eq!(got.payload, vec![9]);
        assert_eq!(t1.recv_timeout(0, Duration::from_millis(5)), Err(TransportError::Timeout { peer: 0 }));
    }

    #[test]
    fn dropping_a_rank_disconnects_its_links() {
        let mut world = InProcTransport::world(2);
        let t1 = world.pop().unwrap();
        let t0 = world.pop().unwrap();
        drop(t1);
        assert_eq!(
            t0.send(1, Frame::heartbeat(0)),
            Err(TransportError::Disconnected { peer: 1 })
        );
        assert_eq!(t0.recv(1), Err(TransportError::Disconnected { peer: 1 }));
    }
}
