//! Socket transport: UDS or TCP between real processes.
//!
//! Frames travel length-prefixed and checksummed ([`Frame::encode`]); a
//! torn or bit-flipped frame surfaces as [`TransportError::Corrupt`]
//! rather than silently corrupting a reduction. The mesh is full: every
//! rank pair holds one duplex connection, established deterministically
//! (rank `i` listens; every rank `j > i` dials `i` and introduces itself
//! with an 8-byte hello). Reader and writer halves are split with
//! `try_clone`, so a blocked `recv` never stalls a concurrent `send` on
//! the same link.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::transport::{Frame, Transport, TransportError};

/// One duplex stream, TCP or UDS.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.write_all(bytes),
            #[cfg(unix)]
            Conn::Uds(s) => s.write_all(bytes),
        }
    }
}

/// Reader half of a link plus its partial-frame accumulation buffer (a
/// poll slice may end mid-frame; the bytes carry over to the next call).
struct FrameReader {
    conn: Conn,
    buf: Vec<u8>,
}

/// Header length of the wire encoding (everything before the payload).
const HEADER: usize = 25;
/// Trailing checksum length.
const CHECKSUM: usize = 8;

impl FrameReader {
    /// Total frame size once the header is buffered, if it is.
    fn frame_len(&self) -> Option<usize> {
        if self.buf.len() < HEADER {
            return None;
        }
        let mut l = [0u8; 4];
        l.copy_from_slice(&self.buf[21..25]);
        Some(HEADER + u32::from_le_bytes(l) as usize + CHECKSUM)
    }

    fn read_frame(&mut self, peer: usize, timeout: Option<Duration>) -> Result<Frame, TransportError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(total) = self.frame_len() {
                if self.buf.len() >= total {
                    let frame = Frame::decode(&self.buf[..total])
                        .map_err(|detail| TransportError::Corrupt { peer, detail })?;
                    self.buf.drain(..total);
                    return Ok(frame);
                }
            }
            let slice = match deadline {
                None => None,
                Some(d) => {
                    let Some(remaining) =
                        d.checked_duration_since(Instant::now()).filter(|r| !r.is_zero())
                    else {
                        return Err(TransportError::Timeout { peer });
                    };
                    // Zero would mean "no timeout" to the socket API.
                    Some(remaining.max(Duration::from_millis(1)))
                }
            };
            self.conn
                .set_read_timeout(slice)
                .map_err(|e| TransportError::Io { peer, detail: e.to_string() })?;
            let mut tmp = [0u8; 8192];
            match self.conn.read_some(&mut tmp) {
                Ok(0) => return Err(TransportError::Disconnected { peer }),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if deadline.is_none() {
                        continue;
                    }
                    return Err(TransportError::Timeout { peer });
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::BrokenPipe
                        || e.kind() == std::io::ErrorKind::UnexpectedEof =>
                {
                    return Err(TransportError::Disconnected { peer });
                }
                Err(e) => return Err(TransportError::Io { peer, detail: e.to_string() }),
            }
        }
    }
}

/// Socket-backed [`Transport`] (one process per rank).
pub struct SocketTransport {
    rank: usize,
    world: usize,
    readers: Vec<Option<Mutex<FrameReader>>>,
    writers: Vec<Option<Mutex<Conn>>>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .finish()
    }
}

fn io_err(peer: usize, e: std::io::Error) -> TransportError {
    TransportError::Io { peer, detail: e.to_string() }
}

impl SocketTransport {
    /// The UDS path rank `rank` listens on under `dir`.
    #[cfg(unix)]
    pub fn uds_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank{rank}.sock"))
    }

    /// Joins a UDS mesh: binds `dir/rank<r>.sock`, dials every lower rank,
    /// accepts every higher one. All ranks must call this within
    /// `handshake_timeout` of each other.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the mesh cannot be established in time.
    #[cfg(unix)]
    pub fn connect_uds(
        rank: usize,
        world: usize,
        dir: &Path,
        handshake_timeout: Duration,
    ) -> Result<SocketTransport, TransportError> {
        assert!(rank < world, "rank out of range");
        let path = SocketTransport::uds_path(dir, rank);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(|e| io_err(rank, e))?;
        listener.set_nonblocking(true).map_err(|e| io_err(rank, e))?;
        let deadline = Instant::now() + handshake_timeout;
        let dial = |peer: usize| -> Result<Conn, TransportError> {
            let target = SocketTransport::uds_path(dir, peer);
            loop {
                match UnixStream::connect(&target) {
                    Ok(s) => return Ok(Conn::Uds(s)),
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io_err(peer, e));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        };
        let accept = || -> Result<Conn, TransportError> {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false).map_err(|e| io_err(rank, e))?;
                        return Ok(Conn::Uds(s));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io_err(rank, e));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(io_err(rank, e)),
                }
            }
        };
        SocketTransport::mesh(rank, world, dial, accept)
    }

    /// Joins a TCP mesh; `addrs[r]` is the address rank `r` listens on.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the mesh cannot be established in time.
    pub fn connect_tcp(
        rank: usize,
        world: usize,
        addrs: &[SocketAddr],
        handshake_timeout: Duration,
    ) -> Result<SocketTransport, TransportError> {
        assert!(rank < world, "rank out of range");
        assert_eq!(addrs.len(), world, "one address per rank");
        let listener = TcpListener::bind(addrs[rank]).map_err(|e| io_err(rank, e))?;
        listener.set_nonblocking(true).map_err(|e| io_err(rank, e))?;
        let deadline = Instant::now() + handshake_timeout;
        let dial = |peer: usize| -> Result<Conn, TransportError> {
            loop {
                match TcpStream::connect(addrs[peer]) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        return Ok(Conn::Tcp(s));
                    }
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io_err(peer, e));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        };
        let accept = || -> Result<Conn, TransportError> {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false).map_err(|e| io_err(rank, e))?;
                        let _ = s.set_nodelay(true);
                        return Ok(Conn::Tcp(s));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io_err(rank, e));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(io_err(rank, e)),
                }
            }
        };
        SocketTransport::mesh(rank, world, dial, accept)
    }

    /// Common mesh establishment: dial lower ranks (sending an 8-byte
    /// rank hello), accept higher ranks (reading theirs).
    fn mesh(
        rank: usize,
        world: usize,
        dial: impl Fn(usize) -> Result<Conn, TransportError>,
        accept: impl Fn() -> Result<Conn, TransportError>,
    ) -> Result<SocketTransport, TransportError> {
        let mut conns: Vec<Option<Conn>> = (0..world).map(|_| None).collect();
        for (peer, slot) in conns.iter_mut().enumerate().take(rank) {
            let mut conn = dial(peer)?;
            conn.write_all_bytes(&(rank as u64).to_le_bytes())
                .map_err(|e| io_err(peer, e))?;
            *slot = Some(conn);
        }
        for _ in rank + 1..world {
            let mut conn = accept()?;
            let mut hello = [0u8; 8];
            let mut filled = 0;
            while filled < hello.len() {
                let n = conn.read_some(&mut hello[filled..]).map_err(|e| io_err(rank, e))?;
                if n == 0 {
                    return Err(TransportError::Disconnected { peer: rank });
                }
                filled += n;
            }
            let peer = u64::from_le_bytes(hello) as usize;
            if peer >= world || conns[peer].is_some() || peer == rank {
                return Err(TransportError::Corrupt {
                    peer,
                    detail: format!("bad hello from rank {peer}"),
                });
            }
            conns[peer] = Some(conn);
        }
        let mut readers = Vec::with_capacity(world);
        let mut writers = Vec::with_capacity(world);
        for (peer, conn) in conns.into_iter().enumerate() {
            match conn {
                None => {
                    readers.push(None);
                    writers.push(None);
                }
                Some(conn) => {
                    let write_half = conn.try_clone().map_err(|e| io_err(peer, e))?;
                    readers.push(Some(Mutex::new(FrameReader { conn, buf: Vec::new() })));
                    writers.push(Some(Mutex::new(write_half)));
                }
            }
        }
        Ok(SocketTransport { rank, world, readers, writers })
    }

    fn reader(&self, from: usize) -> Result<&Mutex<FrameReader>, TransportError> {
        self.readers
            .get(from)
            .and_then(Option::as_ref)
            .ok_or(TransportError::Disconnected { peer: from })
    }
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn send(&self, to: usize, frame: Frame) -> Result<(), TransportError> {
        let writer = self
            .writers
            .get(to)
            .and_then(Option::as_ref)
            .ok_or(TransportError::Disconnected { peer: to })?;
        let bytes = frame.encode();
        writer.lock().write_all_bytes(&bytes).map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted => TransportError::Disconnected { peer: to },
            _ => io_err(to, e),
        })
    }

    fn recv(&self, from: usize) -> Result<Frame, TransportError> {
        self.reader(from)?.lock().read_frame(from, None)
    }

    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Frame, TransportError> {
        self.reader(from)?.lock().read_frame(from, Some(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectiveConfig, Communicator};
    use std::thread;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dos-sock-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[cfg(unix)]
    #[test]
    fn uds_mesh_runs_collectives() {
        let dir = scratch_dir("uds");
        let world = 3;
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let dir = dir.clone();
                thread::spawn(move || {
                    let t =
                        SocketTransport::connect_uds(rank, world, &dir, Duration::from_secs(5))
                            .unwrap();
                    let comm = Communicator::new(
                        Box::new(t),
                        CollectiveConfig::with_timeout(Duration::from_secs(5)),
                    );
                    let mut data = vec![(rank + 1) as f32; 4];
                    comm.all_reduce_sum(&mut data).unwrap();
                    let gathered = comm.all_gather(&[rank as f32]).unwrap();
                    (data, gathered)
                })
            })
            .collect();
        for h in handles {
            let (reduced, gathered) = h.join().unwrap();
            assert_eq!(reduced, vec![6.0; 4]);
            assert_eq!(gathered, vec![0.0, 1.0, 2.0]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_mesh_runs_collectives() {
        // Reserve two loopback ports, then race-free enough for a test:
        // rebind immediately after dropping the probes.
        let probes: Vec<TcpListener> =
            (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = probes.iter().map(|l| l.local_addr().unwrap()).collect();
        drop(probes);
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let addrs = addrs.clone();
                thread::spawn(move || {
                    let t = SocketTransport::connect_tcp(rank, 2, &addrs, Duration::from_secs(5))
                        .unwrap();
                    let comm = Communicator::new(
                        Box::new(t),
                        CollectiveConfig::with_timeout(Duration::from_secs(5)),
                    );
                    let mut data = vec![rank as f32 + 1.0; 2];
                    comm.all_reduce_sum(&mut data).unwrap();
                    data
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![3.0; 2]);
        }
    }

    #[cfg(unix)]
    #[test]
    fn peer_process_death_is_a_disconnect() {
        let dir = scratch_dir("death");
        let t0 = thread::spawn({
            let dir = dir.clone();
            move || SocketTransport::connect_uds(0, 2, &dir, Duration::from_secs(5)).unwrap()
        });
        let t1 = SocketTransport::connect_uds(1, 2, &dir, Duration::from_secs(5)).unwrap();
        let t0 = t0.join().unwrap();
        drop(t1); // rank 1 "process" exits
        match t0.recv_timeout(1, Duration::from_secs(2)) {
            Err(TransportError::Disconnected { peer: 1 }) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
