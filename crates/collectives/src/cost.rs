//! Analytic cost models for ring collectives.
//!
//! The simulator charges forward/backward communication with the standard
//! ring-algorithm costs: for a payload of `S` bytes across `N` ranks over
//! links of bandwidth `B` bytes/s with per-step latency `α`,
//!
//! * `all_gather` / `reduce_scatter`: `(N-1)·α + (N-1)/N · S / B`
//! * `all_reduce`: `2(N-1)·α + 2(N-1)/N · S / B`
//!
//! These costs are what erodes Deep Optimizer States' end-to-end speedup at
//! high data-parallel degrees (Figure 17): the update phase stays
//! communication-free, but the ZeRO-3 all-gathers in forward/backward grow
//! with the DP degree.

use serde::{Deserialize, Serialize};

/// Parameters of a collective cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingCost {
    /// Number of participating ranks.
    pub world: usize,
    /// Per-rank link bandwidth, bytes/s (NVLink within a node).
    pub link_bw: f64,
    /// Per-step latency, seconds (launch + synchronization overhead).
    pub latency: f64,
}

impl RingCost {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero or `link_bw` is not positive.
    pub fn new(world: usize, link_bw: f64, latency: f64) -> RingCost {
        assert!(world > 0, "world must be positive");
        assert!(link_bw > 0.0, "bandwidth must be positive");
        RingCost { world, link_bw, latency }
    }

    fn steps(&self) -> f64 {
        (self.world - 1) as f64
    }

    fn ring_fraction(&self) -> f64 {
        if self.world == 1 {
            0.0
        } else {
            (self.world - 1) as f64 / self.world as f64
        }
    }

    /// Seconds for an all-gather whose *total* (gathered) payload is
    /// `total_bytes`.
    pub fn all_gather(&self, total_bytes: f64) -> f64 {
        self.steps() * self.latency + self.ring_fraction() * total_bytes / self.link_bw
    }

    /// Seconds for a reduce-scatter over `total_bytes` of input per rank.
    pub fn reduce_scatter(&self, total_bytes: f64) -> f64 {
        self.all_gather(total_bytes)
    }

    /// Seconds for an all-reduce over `total_bytes` per rank
    /// (reduce-scatter followed by all-gather).
    pub fn all_reduce(&self, total_bytes: f64) -> f64 {
        2.0 * self.all_gather(total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_costs_nothing() {
        let c = RingCost::new(1, 1e9, 1e-5);
        assert_eq!(c.all_gather(1e9), 0.0);
        assert_eq!(c.all_reduce(1e9), 0.0);
    }

    #[test]
    fn large_world_approaches_bandwidth_bound() {
        let c = RingCost::new(64, 1e9, 0.0);
        let t = c.all_gather(1e9);
        assert!((t - 63.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn all_reduce_is_twice_all_gather() {
        let c = RingCost::new(4, 100e9, 1e-5);
        assert!((c.all_reduce(1e8) - 2.0 * c.all_gather(1e8)).abs() < 1e-12);
        assert_eq!(c.reduce_scatter(1e8), c.all_gather(1e8));
    }

    #[test]
    fn cost_is_monotone_in_size_and_world() {
        let c = RingCost::new(4, 100e9, 1e-5);
        assert!(c.all_gather(2e9) > c.all_gather(1e9));
        let c8 = RingCost::new(8, 100e9, 1e-5);
        assert!(c8.all_gather(1e9) > c.all_gather(1e9));
    }

    #[test]
    fn latency_term_scales_with_steps() {
        let c = RingCost::new(5, 1e12, 1e-3);
        // Tiny payload: cost dominated by (N-1) * latency.
        let t = c.all_gather(1.0);
        assert!((t - 4e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_world_rejected() {
        let _ = RingCost::new(0, 1e9, 0.0);
    }
}
