//! The pluggable point-to-point substrate collectives are built on.
//!
//! A [`Transport`] moves opaque [`Frame`]s between the ranks of a world.
//! Everything above it — the mesh exchange, retry/backoff, sequence-number
//! dedupe, heartbeat failure detection (`functional.rs`) — is written once
//! against this trait, so the same collective code runs over in-process
//! channels ([`crate::InProcTransport`]), real sockets
//! ([`crate::SocketTransport`]), or a fault-injecting wrapper
//! ([`crate::FaultyTransport`]).

use std::time::Duration;

/// Leading magic of every wire-encoded frame (`"DOSF"`).
pub const FRAME_MAGIC: u32 = 0x444F_5346;

/// What a [`Frame`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A collective contribution: `op_seq` identifies the collective
    /// operation, the payload is the sender's buffer.
    Data,
    /// Liveness beacon; `op_seq` and payload are ignored.
    Heartbeat,
    /// Request to retransmit the `op_seq` contribution (sent when the
    /// requester suspects its copy was lost in flight).
    Resend,
    /// Graceful-teardown announcement: the sender has completed its final
    /// collective and is only lingering to serve resend requests. Peers
    /// that have heard a `Bye` (re-broadcast periodically, since it can be
    /// lost like any frame) from everyone may tear down immediately.
    Bye,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Heartbeat => 1,
            FrameKind::Resend => 2,
            FrameKind::Bye => 3,
        }
    }

    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Heartbeat),
            2 => Some(FrameKind::Resend),
            3 => Some(FrameKind::Bye),
            _ => None,
        }
    }
}

/// One transport message.
///
/// `wire_seq` is a per-link transmission counter: every transmission —
/// including a retransmission of the *same* logical contribution — gets a
/// fresh value, so fault injection keyed on it re-rolls the dice for
/// retries instead of deterministically re-dropping them. `op_seq` is the
/// logical collective-operation number used for idempotent dedupe: a rank
/// that receives the same `(peer, op_seq)` contribution twice discards the
/// second copy, which is what makes retransmits bitwise-safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Per-link transmission sequence number (fresh on every send).
    pub wire_seq: u64,
    /// Logical collective operation number (stable across retransmits).
    pub op_seq: u64,
    /// Message discriminator.
    pub kind: FrameKind,
    /// Opaque payload (little-endian `f32`s for the collectives here).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A data frame.
    pub fn data(wire_seq: u64, op_seq: u64, payload: Vec<u8>) -> Frame {
        Frame { wire_seq, op_seq, kind: FrameKind::Data, payload }
    }

    /// A heartbeat frame.
    pub fn heartbeat(wire_seq: u64) -> Frame {
        Frame { wire_seq, op_seq: 0, kind: FrameKind::Heartbeat, payload: Vec::new() }
    }

    /// A resend request for `op_seq`.
    pub fn resend(wire_seq: u64, op_seq: u64) -> Frame {
        Frame { wire_seq, op_seq, kind: FrameKind::Resend, payload: Vec::new() }
    }

    /// A graceful-teardown announcement.
    pub fn bye(wire_seq: u64) -> Frame {
        Frame { wire_seq, op_seq: 0, kind: FrameKind::Bye, payload: Vec::new() }
    }

    /// Wire encoding: `magic u32 | kind u8 | wire_seq u64 | op_seq u64 |
    /// len u32 | payload | fnv1a-64 checksum` (all little-endian, checksum
    /// over everything before it).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(29 + self.payload.len() + 8);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.push(self.kind.as_u8());
        out.extend_from_slice(&self.wire_seq.to_le_bytes());
        out.extend_from_slice(&self.op_seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a frame previously produced by [`Frame::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field (bad magic,
    /// unknown kind, truncation, checksum mismatch).
    pub fn decode(bytes: &[u8]) -> Result<Frame, String> {
        if bytes.len() < 25 + 8 {
            return Err(format!("frame truncated: {} bytes", bytes.len()));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        let expected = u64::from_le_bytes(sum);
        let actual = fnv1a64(body);
        if expected != actual {
            return Err(format!("checksum mismatch: stored {expected:#x}, computed {actual:#x}"));
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&body[0..4]);
        if u32::from_le_bytes(magic) != FRAME_MAGIC {
            return Err("bad frame magic".to_string());
        }
        let kind = FrameKind::from_u8(body[4]).ok_or_else(|| format!("unknown kind {}", body[4]))?;
        let mut w = [0u8; 8];
        w.copy_from_slice(&body[5..13]);
        let mut o = [0u8; 8];
        o.copy_from_slice(&body[13..21]);
        let mut l = [0u8; 4];
        l.copy_from_slice(&body[21..25]);
        let len = u32::from_le_bytes(l) as usize;
        if body.len() != 25 + len {
            return Err(format!("length field {} disagrees with frame size", len));
        }
        Ok(Frame {
            wire_seq: u64::from_le_bytes(w),
            op_seq: u64::from_le_bytes(o),
            kind,
            payload: body[25..].to_vec(),
        })
    }
}

/// FNV-1a 64-bit over `bytes` (the frame checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Transport-level failures, attributed to a peer where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The link to `peer` is gone (process exit, socket close, channel
    /// endpoints dropped). Permanent for that link.
    Disconnected {
        /// The unreachable peer (the local rank itself when the local
        /// endpoint was torn down, e.g. by an injected disconnect).
        peer: usize,
    },
    /// Nothing arrived from `peer` before the deadline. Transient.
    Timeout {
        /// The silent peer.
        peer: usize,
    },
    /// A frame from `peer` failed validation (checksum, framing).
    Corrupt {
        /// The offending peer.
        peer: usize,
        /// What was wrong.
        detail: String,
    },
    /// An I/O error on the link to `peer`.
    Io {
        /// The peer on the failing link.
        peer: usize,
        /// Stringified error.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { peer } => write!(f, "link to rank {peer} disconnected"),
            TransportError::Timeout { peer } => write!(f, "timed out waiting on rank {peer}"),
            TransportError::Corrupt { peer, detail } => {
                write!(f, "corrupt frame from rank {peer}: {detail}")
            }
            TransportError::Io { peer, detail } => write!(f, "i/o error on link to rank {peer}: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Point-to-point frame delivery between the ranks of a world.
///
/// Implementations must deliver frames from a given peer in send order
/// (per-link FIFO) but are free to lose, duplicate, or arbitrarily delay
/// them — the collectives above recover via sequence numbers, resend
/// requests, and heartbeats. `recv`/`recv_timeout` take the *source* rank:
/// reception is per-peer, which is what lets the mesh exchange reduce in
/// rank order regardless of arrival order.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn world_size(&self) -> usize;

    /// Sends a frame to `to`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is permanently gone,
    /// [`TransportError::Io`] for transient link errors.
    fn send(&self, to: usize, frame: Frame) -> Result<(), TransportError>;

    /// Blocks until a frame from `from` arrives (or the link dies). Used
    /// by the deadline-free blocking mode, where `dos-check`'s deadlock
    /// detector stands in for timeouts.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the link is permanently gone.
    fn recv(&self, from: usize) -> Result<Frame, TransportError>;

    /// Waits up to `timeout` for a frame from `from`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing arrived in time; the other
    /// variants as for [`Transport::recv`].
    fn recv_timeout(&self, from: usize, timeout: Duration) -> Result<Frame, TransportError>;

    /// Advances the transport's notion of the training epoch (iteration).
    /// Fault-injecting transports key scheduled faults (disconnects,
    /// partition windows) off this; real transports ignore it.
    fn set_epoch(&self, _epoch: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_wire_encoding() {
        let f = Frame::data(7, 3, vec![1, 2, 3, 250]);
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        let hb = Frame::heartbeat(9);
        assert_eq!(Frame::decode(&hb.encode()).unwrap(), hb);
        let rs = Frame::resend(10, 4);
        assert_eq!(Frame::decode(&rs.encode()).unwrap(), rs);
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let mut bytes = Frame::data(1, 1, vec![42; 16]).encode();
        bytes[10] ^= 0xff;
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        assert!(Frame::decode(&bytes[..10]).unwrap_err().contains("truncated"));
    }
}
