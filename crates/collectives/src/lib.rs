//! # dos-collectives — collectives for data-parallel training
//!
//! Communication substrate of the *Deep Optimizer States* reproduction, in
//! two flavors:
//!
//! * [`Communicator`] — *functional* collectives over OS threads (sum
//!   all-reduce, all-gather, reduce-scatter, barrier) used by the functional
//!   data-parallel trainer to really average gradients across ranks;
//! * [`RingCost`] — *analytic* ring-collective cost models the simulator
//!   charges for ZeRO-3's forward/backward all-gathers, which is what limits
//!   the paper's speedup at high data-parallel degree (Figure 17).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod functional;

pub use cost::RingCost;
pub use functional::{CollectiveError, Communicator};
