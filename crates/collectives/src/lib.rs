//! # dos-collectives — collectives for data-parallel training
//!
//! Communication substrate of the *Deep Optimizer States* reproduction, in
//! two flavors:
//!
//! * [`Communicator`] — *functional* collectives (sum all-reduce,
//!   all-gather, reduce-scatter, barrier) over a pluggable [`Transport`]:
//!   in-process facade channels ([`InProcTransport`], explorable by
//!   `dos-check`), real UDS/TCP sockets between processes
//!   ([`SocketTransport`]), or a seeded fault-injecting wrapper
//!   ([`FaultyTransport`]). The collective layer adds per-op deadlines,
//!   retry/backoff, sequence-numbered idempotent retransmits, heartbeat
//!   rank-failure detection, and typed failure attribution
//!   ([`CollectiveError::Timeout`] vs [`CollectiveError::RankFailed`]);
//! * [`RingCost`] — *analytic* ring-collective cost models the simulator
//!   charges for ZeRO-3's forward/backward all-gathers, which is what limits
//!   the paper's speedup at high data-parallel degree (Figure 17).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code on the fault-tolerant collective path must surface failures
// as typed errors, never die on a stray unwrap; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod cost;
mod faulty;
mod functional;
mod inproc;
mod socket;
mod transport;

pub use cost::RingCost;
pub use faulty::{
    DisconnectPoint, DisconnectRule, FaultyTransport, PartitionWindow, TransportFaultPlan,
};
pub use functional::{CollectiveConfig, CollectiveError, Communicator};
pub use inproc::InProcTransport;
pub use socket::SocketTransport;
pub use transport::{Frame, FrameKind, Transport, TransportError};
