//! Property tests: thread-based collectives match naive reference reductions.

use dos_collectives::Communicator;
use proptest::prelude::*;
use std::thread;

fn run_collective(
    inputs: Vec<Vec<f32>>,
    op: impl Fn(Communicator, Vec<f32>) -> Vec<f32> + Send + Sync + Clone + 'static,
) -> Vec<Vec<f32>> {
    let world = inputs.len();
    let comms = Communicator::world(world);
    let handles: Vec<_> = comms
        .into_iter()
        .zip(inputs)
        .map(|(c, data)| {
            let op = op.clone();
            thread::spawn(move || op(c, data))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_matches_reference(
        world in 1usize..5,
        len in 1usize..16,
        seed in any::<u32>(),
    ) {
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| (0..len).map(|i| ((seed as usize + r * 31 + i * 7) % 100) as f32 / 10.0).collect())
            .collect();
        let mut expected = vec![0.0f32; len];
        for input in &inputs {
            for (e, x) in expected.iter_mut().zip(input.iter()) {
                *e += x;
            }
        }
        let results = run_collective(inputs, |c, mut d| {
            c.all_reduce_sum(&mut d).unwrap();
            d
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn all_gather_matches_reference(
        world in 1usize..5,
        len in 1usize..8,
    ) {
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| (0..len).map(|i| (r * 100 + i) as f32).collect())
            .collect();
        let expected: Vec<f32> = inputs.concat();
        let results = run_collective(inputs, |c, d| c.all_gather(&d).unwrap());
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn reduce_scatter_shards_the_reduction(
        world in 1usize..5,
        chunks in 1usize..6,
    ) {
        let len = world * chunks;
        let inputs: Vec<Vec<f32>> = (0..world)
            .map(|r| (0..len).map(|i| (r + 1) as f32 * (i + 1) as f32).collect())
            .collect();
        let mut total = vec![0.0f32; len];
        for input in &inputs {
            for (t, x) in total.iter_mut().zip(input.iter()) {
                *t += x;
            }
        }
        let results = run_collective(inputs, |c, d| {
            let rank = c.rank();
            let mut out = c.reduce_scatter_sum(&d).unwrap();
            out.insert(0, rank as f32); // carry rank for the assertion
            out
        });
        for r in results {
            let rank = r[0] as usize;
            prop_assert_eq!(&r[1..], &total[rank * chunks..(rank + 1) * chunks]);
        }
    }
}
