//! Metrics exposition: Prometheus text format, JSON, and a minimal
//! `std::net` HTTP server.
//!
//! [`prometheus_text`] renders a [`MetricsSnapshot`] in the Prometheus
//! text exposition format (version 0.0.4). Metric names in this workspace
//! are dotted (`arena.in_use_bytes`), which Prometheus identifiers do not
//! allow, so the dotted name becomes a `name` label on three stable
//! metric families:
//!
//! ```text
//! dos_counter{name="pipeline.h2d.bytes"} 4096
//! dos_gauge{name="arena.in_use_bytes"} 524288
//! dos_histogram_bucket{name="stall.secs",le="0.001"} 12
//! dos_histogram_bucket{name="stall.secs",le="+Inf"} 14
//! dos_histogram_sum{name="stall.secs"} 0.42
//! dos_histogram_count{name="stall.secs"} 14
//! ```
//!
//! [`MetricsServer`] serves that payload live from a background thread
//! over plain `std::net` (shims-only policy: no HTTP framework), with
//! three routes: `/metrics` (Prometheus text), `/metrics.json` (the
//! snapshot as JSON), and `/health` (the [`HealthBoard`] snapshot).
//! [`http_get`] is the matching one-call client used by self-scrapes and
//! CI smoke tests, and [`parse_prometheus`] is a strict-enough parser to
//! validate a scraped payload without a real Prometheus around.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::health::HealthBoard;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Splits a registry metric name into its base name and any extra label
/// pairs encoded after `|` separators (`serve.tenant.pps|tenant=acme` →
/// base `serve.tenant.pps`, labels `[("tenant", "acme")]`). Multi-tenant
/// producers use this convention so one dotted registry stays flat while
/// the Prometheus rendering grows real per-tenant label dimensions. A
/// segment without `=` is kept verbatim in the base name.
pub fn split_name_labels(name: &str) -> (String, Vec<(String, String)>) {
    let mut parts = name.split('|');
    let mut base = parts.next().unwrap_or_default().to_string();
    let mut labels = Vec::new();
    for seg in parts {
        match seg.split_once('=') {
            Some((k, v)) if !k.is_empty() => labels.push((k.to_string(), v.to_string())),
            _ => {
                base.push('|');
                base.push_str(seg);
            }
        }
    }
    (base, labels)
}

/// Renders the `{name="...",extra="..."}` label block for a registry name.
fn label_block(name: &str) -> String {
    let (base, labels) = split_name_labels(name);
    let mut out = format!("name=\"{}\"", escape_label(&base));
    for (k, v) in &labels {
        out.push_str(&format!(",{}=\"{}\"", k, escape_label(v)));
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format. Dotted
/// workspace metric names ride in the `name` label (see module docs);
/// `|key=value` suffixes on a registry name become additional labels
/// (see [`split_name_labels`]).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("# TYPE dos_counter counter\n");
        for c in &snap.counters {
            out.push_str(&format!("dos_counter{{{}}} {}\n", label_block(&c.name), c.value));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("# TYPE dos_gauge gauge\n");
        for g in &snap.gauges {
            out.push_str(&format!("dos_gauge{{{}}} {}\n", label_block(&g.name), g.value));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("# TYPE dos_histogram histogram\n");
        for h in &snap.histograms {
            let labels = label_block(&h.name);
            let mut cumulative = 0u64;
            for (i, &count) in h.histogram.counts().iter().enumerate() {
                cumulative += count;
                let le = match h.histogram.bounds().get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "dos_histogram_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("dos_histogram_sum{{{labels}}} {}\n", h.histogram.sum()));
            out.push_str(&format!(
                "dos_histogram_count{{{labels}}} {}\n",
                h.histogram.count()
            ));
        }
    }
    out
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric family name (`dos_gauge`, ...).
    pub metric: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of the named label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text payload into samples, validating the basic
/// grammar (comment/blank lines skipped; every sample line must be
/// `name{labels} value` or `name value` with a parseable float).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value: {line:?}", lineno + 1))?;
        let (metric, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {line:?}", lineno + 1))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| {
                        format!("line {}: malformed label {pair:?}", lineno + 1)
                    })?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| {
                            format!("line {}: unquoted label value {pair:?}", lineno + 1)
                        })?;
                    labels.push((
                        k.to_string(),
                        v.replace("\\\"", "\"").replace("\\n", "\n").replace("\\\\", "\\"),
                    ));
                }
                (name.to_string(), labels)
            }
        };
        if metric.is_empty()
            || !metric.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: illegal metric name {metric:?}", lineno + 1));
        }
        samples.push(PromSample { metric, labels, value });
    }
    Ok(samples)
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Best effort: a scraper hanging up mid-response must not kill the
    // serving thread.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// A dynamic JSON route handler: called per request, returns the body.
pub type JsonRouteFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A shared, replaceable JSON document — the bridge between a producer
/// that periodically re-publishes a payload (the serving control plane's
/// tenant table) and a [`MetricsServer`] route that must read it from the
/// serving thread. Lives here rather than in the producer because
/// producers under `dos-check` exploration may not hold raw `std::sync`
/// primitives; this crate is outside the checked set.
#[derive(Debug, Clone, Default)]
pub struct SharedDoc {
    body: Arc<std::sync::Mutex<String>>,
}

impl SharedDoc {
    /// An empty document (`{}` until first publish).
    pub fn new() -> SharedDoc {
        SharedDoc { body: Arc::new(std::sync::Mutex::new("{}".to_string())) }
    }

    /// Replaces the document body.
    pub fn publish(&self, body: String) {
        match self.body.lock() {
            Ok(mut slot) => *slot = body,
            Err(poisoned) => *poisoned.into_inner() = body,
        }
    }

    /// The current body.
    pub fn snapshot(&self) -> String {
        match self.body.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// A route handler serving the current body, for
    /// [`MetricsServer::start_with_routes`].
    pub fn route(&self) -> JsonRouteFn {
        let doc = self.clone();
        Arc::new(move || doc.snapshot())
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    metrics: &MetricsRegistry,
    health: Option<&HealthBoard>,
    routes: &[(String, JsonRouteFn)],
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/")
        .to_string();
    match path.as_str() {
        "/metrics" => {
            let body = prometheus_text(&metrics.snapshot());
            respond(stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/metrics.json" => {
            let body = serde_json::to_string_pretty(&metrics.snapshot())
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            respond(stream, "200 OK", "application/json", &body);
        }
        "/health" => {
            let body = match health {
                Some(board) => serde_json::to_string_pretty(&board.snapshot())
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                None => "{}".to_string(),
            };
            respond(stream, "200 OK", "application/json", &body);
        }
        "/" => {
            let mut index =
                "dos metrics endpoint: /metrics (Prometheus), /metrics.json, /health".to_string();
            for (path, _) in routes {
                index.push_str(&format!(", {path}"));
            }
            index.push('\n');
            respond(stream, "200 OK", "text/plain; charset=utf-8", &index);
        }
        other => match routes.iter().find(|(path, _)| path == other) {
            Some((_, handler)) => {
                respond(stream, "200 OK", "application/json", &handler());
            }
            None => respond(stream, "404 Not Found", "text/plain; charset=utf-8", "not found\n"),
        },
    }
}

/// A minimal metrics HTTP server on a background thread.
///
/// Serves the live [`MetricsRegistry`] (every scrape takes a fresh
/// snapshot) and optionally a [`HealthBoard`]. Dropping the server stops
/// the thread and releases the port.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `listen` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Returns a description when the address cannot be bound.
    pub fn start(
        listen: &str,
        metrics: MetricsRegistry,
        health: Option<HealthBoard>,
    ) -> Result<MetricsServer, String> {
        MetricsServer::start_with_routes(listen, metrics, health, Vec::new())
    }

    /// Like [`MetricsServer::start`], plus extra JSON routes: each
    /// `(path, handler)` pair is served at `path` with the handler invoked
    /// per request (the serving control plane mounts `/tenants` this way).
    ///
    /// # Errors
    ///
    /// Returns a description when the address cannot be bound.
    pub fn start_with_routes(
        listen: &str,
        metrics: MetricsRegistry,
        health: Option<HealthBoard>,
        routes: Vec<(String, JsonRouteFn)>,
    ) -> Result<MetricsServer, String> {
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dos-metrics-server".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            let _ = stream.set_nonblocking(false);
                            handle_connection(&mut stream, &metrics, health.as_ref(), &routes);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .map_err(|e| format!("spawn server thread: {e}"))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread (also happens on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Minimal HTTP/1.1 GET, returning `(status_code, body)`. The one-call
/// client behind `dos-cli monitor`'s self-scrape and the CI smoke test.
///
/// # Errors
///
/// Returns a description on connection, I/O, or HTTP framing failure.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<(u16, String), String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve: {e}"))?
        .next()
        .ok_or_else(|| "resolve: no address".to_string())?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {response:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthBoard, HealthMonitor, IterationReport};

    fn sample_registry() -> MetricsRegistry {
        let m = MetricsRegistry::new();
        m.inc_counter("pipeline.h2d.bytes", 4096);
        m.set_gauge("arena.in_use_bytes", 524_288.0);
        m.set_gauge("arena.high_water_bytes", 1_048_576.0);
        m.observe("stall.secs", &[0.001, 0.1], 0.05);
        m.observe("stall.secs", &[0.001, 0.1], 0.0005);
        m
    }

    #[test]
    fn prometheus_text_renders_all_families_and_parses_back() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("dos_counter{name=\"pipeline.h2d.bytes\"} 4096\n"), "{text}");
        assert!(text.contains("dos_gauge{name=\"arena.in_use_bytes\"} 524288\n"), "{text}");
        assert!(text.contains("le=\"+Inf\"}} 2") || text.contains("le=\"+Inf\"} 2"), "{text}");
        let samples = parse_prometheus(&text).expect("payload parses");
        let gauge = samples
            .iter()
            .find(|s| s.metric == "dos_gauge" && s.label("name") == Some("arena.in_use_bytes"))
            .expect("arena gauge present");
        assert_eq!(gauge.value, 524_288.0);
        // Histogram buckets are cumulative and end at +Inf == count.
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.metric == "dos_histogram_bucket")
            .collect();
        assert_eq!(buckets.last().and_then(|b| b.label("le")), Some("+Inf"));
        assert_eq!(buckets.last().map(|b| b.value), Some(2.0));
        assert!(
            buckets.windows(2).all(|w| w[0].value <= w[1].value),
            "buckets must be cumulative: {buckets:?}"
        );
    }

    #[test]
    fn tenant_label_segments_become_real_labels() {
        let m = MetricsRegistry::new();
        m.set_gauge("serve.tenant.pps|tenant=acme", 123.0);
        m.inc_counter("serve.tenant.preemptions|tenant=acme|gpu=2", 4);
        let text = prometheus_text(&m.snapshot());
        assert!(
            text.contains("dos_gauge{name=\"serve.tenant.pps\",tenant=\"acme\"} 123"),
            "{text}"
        );
        let samples = parse_prometheus(&text).expect("payload parses");
        let c = samples
            .iter()
            .find(|s| s.metric == "dos_counter")
            .expect("counter present");
        assert_eq!(c.label("name"), Some("serve.tenant.preemptions"));
        assert_eq!(c.label("tenant"), Some("acme"));
        assert_eq!(c.label("gpu"), Some("2"));
        // A `|` segment without `=` stays part of the base name.
        let (base, labels) = split_name_labels("odd|segment");
        assert_eq!(base, "odd|segment");
        assert!(labels.is_empty());
    }

    #[test]
    fn custom_json_routes_are_served_and_indexed() {
        let server = MetricsServer::start_with_routes(
            "127.0.0.1:0",
            MetricsRegistry::new(),
            None,
            vec![("/tenants".to_string(), Arc::new(|| "{\"tenants\":[]}".to_string()) as _)],
        )
        .expect("server starts");
        let addr = server.addr();
        let (status, body) = http_get(addr, "/tenants").expect("tenants scrape");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"tenants\":[]}");
        let (_, index) = http_get(addr, "/").expect("index");
        assert!(index.contains("/tenants"), "{index}");
        let (status, _) = http_get(addr, "/nope").expect("404 route");
        assert_eq!(status, 404);
    }

    #[test]
    fn shared_doc_publishes_through_its_route() {
        let doc = SharedDoc::new();
        let route = doc.route();
        assert_eq!(route(), "{}");
        doc.publish("{\"tenants\":[\"acme\"]}".to_string());
        assert_eq!(route(), "{\"tenants\":[\"acme\"]}");
        // Clones share the same body.
        doc.clone().publish("{}".to_string());
        assert_eq!(doc.snapshot(), "{}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("dos_gauge{name=\"x\"} not_a_number").is_err());
        assert!(parse_prometheus("no-value-here").is_err());
        assert!(parse_prometheus("bad{name=\"x\" 1").is_err());
        assert!(parse_prometheus("bad name{a=\"b\"} 1").is_err());
        assert!(parse_prometheus("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn label_escaping_round_trips() {
        let m = MetricsRegistry::new();
        m.set_gauge("weird\"name\\with\nstuff", 1.0);
        let text = prometheus_text(&m.snapshot());
        let samples = parse_prometheus(&text).expect("parses");
        assert_eq!(samples[0].label("name"), Some("weird\"name\\with\nstuff"));
    }

    #[test]
    fn server_serves_metrics_json_and_health() {
        let metrics = sample_registry();
        let board = HealthBoard::new();
        let mut mon = HealthMonitor::default();
        let report = IterationReport {
            iteration: 0,
            iter_secs: 0.01,
            params: 1024,
            pps: 102_400.0,
            stall_fraction: 0.1,
            overlap_efficiency: 0.8,
            device_subgroups: 2,
            cpu_subgroups: 2,
            arena_reuse_hits: 4,
            arena_allocation_misses: 1,
            arena_high_water_bytes: 4096,
            degraded: false,
        };
        let events = mon.observe(&report);
        board.publish(report, &events, &mon);
        let server = MetricsServer::start("127.0.0.1:0", metrics.clone(), Some(board))
            .expect("server starts");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(body.contains("arena.in_use_bytes"), "{body}");
        assert!(parse_prometheus(&body).is_ok());

        // The payload is live: a later scrape sees newer values.
        metrics.inc_counter("pipeline.h2d.bytes", 1);
        let (_, body2) = http_get(addr, "/metrics").expect("second scrape");
        assert!(body2.contains("dos_counter{name=\"pipeline.h2d.bytes\"} 4097"), "{body2}");

        let (status, json) = http_get(addr, "/metrics.json").expect("json scrape");
        assert_eq!(status, 200);
        let snap: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(snap.gauges.len(), 2);

        let (status, health) = http_get(addr, "/health").expect("health scrape");
        assert_eq!(status, 200);
        let snap: crate::health::HealthSnapshot =
            serde_json::from_str(&health).expect("health parses");
        assert_eq!(snap.iterations, 1);

        let (status, _) = http_get(addr, "/nope").expect("404 route");
        assert_eq!(status, 404);
    }
}
