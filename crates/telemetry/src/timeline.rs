//! Span timelines and windowed utilization.
//!
//! The paper instruments training with NVML (§3, §5.4) to plot GPU memory,
//! PCIe traffic, and compute utilization over time (Figures 3, 4, 15). This
//! module is the reproduction's NVML: simulators and pipelines record
//! [`Span`]s, and [`Timeline`] derives windowed utilization and throughput
//! series from them.

use serde::{Deserialize, Serialize};

/// One busy interval on a named resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Resource name (e.g. `"pcie.h2d"`, `"gpu"`, `"cpu"`).
    pub resource: String,
    /// Free-form label (e.g. `"prefetch:sg3"`).
    pub label: String,
    /// Training phase (e.g. `"forward"`, `"update"`).
    pub phase: String,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Work performed (bytes for links, device-seconds for compute).
    pub work: f64,
}

impl Span {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Seconds of overlap with the window `[a, b)`.
    pub fn overlap(&self, a: f64, b: f64) -> f64 {
        (self.end.min(b) - self.start.max(a)).max(0.0)
    }
}

/// A point in a sampled utilization or throughput series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Window midpoint, seconds.
    pub time: f64,
    /// The sampled value (utilization in `[0,1]`, or units/s).
    pub value: f64,
}

/// An append-only collection of spans with derived views.
///
/// # Examples
///
/// ```
/// use dos_telemetry::Timeline;
/// let mut tl = Timeline::new();
/// tl.record("gpu", "update:sg0", "update", 0.0, 1.0, 1.0);
/// tl.record("gpu", "update:sg1", "update", 1.5, 2.0, 0.5);
/// let util = tl.utilization("gpu", 0.0, 2.0, 4);
/// assert_eq!(util.len(), 4);
/// assert_eq!(util[0].value, 1.0); // [0, 0.5): fully busy
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Records a span.
    pub fn record(
        &mut self,
        resource: impl Into<String>,
        label: impl Into<String>,
        phase: impl Into<String>,
        start: f64,
        end: f64,
        work: f64,
    ) {
        self.spans.push(Span {
            resource: resource.into(),
            label: label.into(),
            phase: phase.into(),
            start,
            end,
            work,
        });
    }

    /// Appends an already-built span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on one resource.
    pub fn for_resource<'a>(&'a self, resource: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.resource == resource)
    }

    /// Spans in one phase.
    pub fn for_phase<'a>(&'a self, phase: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Distinct resource names in first-seen order.
    pub fn resources(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.resource) {
                out.push(s.resource.clone());
            }
        }
        out
    }

    /// Latest span end (the makespan), or 0 when empty.
    pub fn end_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Busy fraction of `resource` in each of `windows` equal windows over
    /// `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or `end <= start`.
    pub fn utilization(&self, resource: &str, start: f64, end: f64, windows: usize) -> Vec<Sample> {
        assert!(windows > 0, "windows must be positive");
        assert!(end > start, "end must exceed start");
        let w = (end - start) / windows as f64;
        (0..windows)
            .map(|i| {
                let a = start + i as f64 * w;
                let b = a + w;
                let busy: f64 = self.for_resource(resource).map(|s| s.overlap(a, b)).sum();
                Sample { time: (a + b) / 2.0, value: (busy / w).min(1.0) }
            })
            .collect()
    }

    /// Work throughput (work units per second, e.g. bytes/s on a link) of
    /// `resource` over equal windows — the PCIe-traffic view of Figure 4.
    ///
    /// Work is attributed uniformly over each span's duration.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or `end <= start`.
    pub fn throughput(&self, resource: &str, start: f64, end: f64, windows: usize) -> Vec<Sample> {
        assert!(windows > 0, "windows must be positive");
        assert!(end > start, "end must exceed start");
        let w = (end - start) / windows as f64;
        (0..windows)
            .map(|i| {
                let a = start + i as f64 * w;
                let b = a + w;
                let work: f64 = self
                    .for_resource(resource)
                    .map(|s| {
                        let d = s.duration();
                        if d == 0.0 {
                            0.0
                        } else {
                            s.work * s.overlap(a, b) / d
                        }
                    })
                    .sum();
                Sample { time: (a + b) / 2.0, value: work / w }
            })
            .collect()
    }

    /// Total busy seconds of a resource across all spans.
    pub fn busy_time(&self, resource: &str) -> f64 {
        self.for_resource(resource).map(Span::duration).sum()
    }

    /// Overall busy fraction of a resource over `[0, end_time]`.
    pub fn overall_utilization(&self, resource: &str) -> f64 {
        let total = self.end_time();
        if total == 0.0 {
            0.0
        } else {
            (self.busy_time(resource) / total).min(1.0)
        }
    }

    /// The span of a phase: `(earliest start, latest end)`, if any span has
    /// that phase.
    pub fn phase_bounds(&self, phase: &str) -> Option<(f64, f64)> {
        let mut bounds: Option<(f64, f64)> = None;
        for s in self.for_phase(phase) {
            bounds = Some(match bounds {
                None => (s.start, s.end),
                Some((a, b)) => (a.min(s.start), b.max(s.end)),
            });
        }
        bounds
    }

    /// Merges another timeline's spans into this one.
    pub fn extend_from(&mut self, other: &Timeline) {
        self.spans.extend_from_slice(&other.spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new();
        tl.record("gpu", "fwd", "forward", 0.0, 1.0, 1.0);
        tl.record("pcie.h2d", "fetch", "forward", 0.5, 1.5, 100.0);
        tl.record("gpu", "upd", "update", 2.0, 3.0, 1.0);
        tl
    }

    #[test]
    fn span_overlap_math() {
        let s = Span {
            resource: "r".into(),
            label: "l".into(),
            phase: "p".into(),
            start: 1.0,
            end: 3.0,
            work: 10.0,
        };
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.overlap(0.0, 2.0), 1.0);
        assert_eq!(s.overlap(1.5, 2.5), 1.0);
        assert_eq!(s.overlap(3.0, 4.0), 0.0);
        assert_eq!(s.overlap(0.0, 10.0), 2.0);
    }

    #[test]
    fn utilization_windows() {
        let tl = sample_timeline();
        let u = tl.utilization("gpu", 0.0, 3.0, 3);
        assert_eq!(u[0].value, 1.0);
        assert_eq!(u[1].value, 0.0);
        assert_eq!(u[2].value, 1.0);
    }

    #[test]
    fn throughput_attributes_work_uniformly() {
        let tl = sample_timeline();
        // pcie span: 100 units over [0.5, 1.5] = 100 units/s while active.
        let t = tl.throughput("pcie.h2d", 0.0, 2.0, 4);
        assert_eq!(t[0].value, 0.0); // [0, 0.5)
        assert!((t[1].value - 100.0).abs() < 1e-9); // [0.5, 1.0)
        assert!((t[2].value - 100.0).abs() < 1e-9);
        assert_eq!(t[3].value, 0.0);
    }

    #[test]
    fn aggregates() {
        let tl = sample_timeline();
        assert_eq!(tl.busy_time("gpu"), 2.0);
        assert_eq!(tl.end_time(), 3.0);
        assert!((tl.overall_utilization("gpu") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(tl.resources(), vec!["gpu".to_string(), "pcie.h2d".to_string()]);
        assert_eq!(tl.phase_bounds("forward"), Some((0.0, 1.5)));
        assert_eq!(tl.phase_bounds("missing"), None);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = sample_timeline();
        let b = sample_timeline();
        a.extend_from(&b);
        assert_eq!(a.spans().len(), 6);
    }

    #[test]
    fn empty_timeline_is_safe() {
        let tl = Timeline::new();
        assert_eq!(tl.end_time(), 0.0);
        assert_eq!(tl.overall_utilization("gpu"), 0.0);
    }

    #[test]
    fn utilization_spans_exactly_on_window_boundaries() {
        let mut tl = Timeline::new();
        tl.record("gpu", "a", "update", 1.0, 2.0, 1.0);
        // Three unit windows over [0, 3): the span fills exactly the middle
        // one; its endpoints must not bleed into the neighbours.
        let u = tl.utilization("gpu", 0.0, 3.0, 3);
        assert_eq!(u[0].value, 0.0);
        assert_eq!(u[1].value, 1.0);
        assert_eq!(u[2].value, 0.0);
        // A window whose edge bisects the span sees exactly half.
        let half = tl.utilization("gpu", 0.5, 2.5, 2);
        assert!((half[0].value - 0.5).abs() < 1e-12);
        assert!((half[1].value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_absent_resource_is_zero() {
        let tl = sample_timeline();
        let u = tl.utilization("nvme", 0.0, 3.0, 6);
        assert_eq!(u.len(), 6);
        assert!(u.iter().all(|s| s.value == 0.0));
    }

    #[test]
    fn utilization_window_past_end_time_reads_idle() {
        let tl = sample_timeline(); // gpu spans end at 3.0
        let u = tl.utilization("gpu", 0.0, 6.0, 6);
        assert_eq!(u.len(), 6);
        // Busy windows up to the makespan, strictly idle past it.
        assert!(u[5].value == 0.0 && u[4].value == 0.0 && u[3].value == 0.0);
        assert_eq!(u[2].value, 1.0); // [2, 3): the update span
        // Sample midpoints keep marching past end_time.
        assert!((u[5].time - 5.5).abs() < 1e-12);
    }

    proptest::proptest! {
        /// Windowed utilization is a density: integrated over any window
        /// partition that covers all spans, it recovers the total busy
        /// time. (Spans are laid out gap-separated so they never overlap —
        /// overlapping spans saturate at 1.0 by design.)
        #[test]
        fn windowed_utilization_integrates_to_busy_time(
            layout in proptest::collection::vec((0.0f64..1.0, 0.01f64..1.0), 1..8),
            windows in 1usize..50,
        ) {
            let mut tl = Timeline::new();
            let mut t = 0.0;
            for (gap, dur) in &layout {
                t += gap;
                tl.record("gpu", "w", "update", t, t + dur, 1.0);
                t += dur;
            }
            let end = tl.end_time() + 0.5;
            let w = end / windows as f64;
            let integral: f64 =
                tl.utilization("gpu", 0.0, end, windows).iter().map(|s| s.value * w).sum();
            proptest::prop_assert!(
                (integral - tl.busy_time("gpu")).abs() < 1e-9 * (1.0 + tl.busy_time("gpu")),
                "integral {} != busy {}",
                integral,
                tl.busy_time("gpu")
            );
        }
    }
}

/// CSV export of spans and sampled series (for external plotting).
impl Timeline {
    /// Renders all spans as CSV with a header row
    /// (`resource,label,phase,start,end,work`).
    pub fn spans_to_csv(&self) -> String {
        let mut out = String::from("resource,label,phase,start,end,work\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                csv_escape(&s.resource),
                csv_escape(&s.label),
                csv_escape(&s.phase),
                s.start,
                s.end,
                s.work
            ));
        }
        out
    }

    /// Renders a sampled utilization series for `resources` as CSV: one
    /// `time` column plus one utilization column per resource.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or `end <= start`.
    pub fn utilization_to_csv(
        &self,
        resources: &[&str],
        start: f64,
        end: f64,
        windows: usize,
    ) -> String {
        let series: Vec<Vec<Sample>> =
            resources.iter().map(|r| self.utilization(r, start, end, windows)).collect();
        let mut out = String::from("time");
        for r in resources {
            out.push(',');
            out.push_str(&csv_escape(r));
        }
        out.push('\n');
        for i in 0..windows {
            out.push_str(&format!("{}", series[0][i].time));
            for s in &series {
                out.push_str(&format!(",{}", s[i].value));
            }
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    fn tl() -> Timeline {
        let mut tl = Timeline::new();
        tl.record("gpu", "fwd,part", "forward", 0.0, 1.0, 1.0);
        tl.record("pcie.h2d", "fetch", "update", 1.0, 2.0, 100.0);
        tl
    }

    #[test]
    fn spans_csv_has_header_and_escaping() {
        let csv = tl().spans_to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "resource,label,phase,start,end,work");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"fwd,part\""), "{}", lines[1]);
    }

    #[test]
    fn utilization_csv_is_rectangular() {
        let csv = tl().utilization_to_csv(&["gpu", "pcie.h2d"], 0.0, 2.0, 4);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "time,gpu,pcie.h2d");
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 3);
        }
        // First window: gpu fully busy, link idle.
        let first: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(first[1], "1");
        assert_eq!(first[2], "0");
    }
}
