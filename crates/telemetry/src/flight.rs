//! Always-on flight recorder: a bounded ring of recent trace events.
//!
//! Post-hoc tracing ([`crate::Tracer`]) stores every event forever, which
//! is fine for a 12-iteration experiment and fatal for a production job.
//! The [`FlightRecorder`] keeps only the newest `capacity` events in a
//! fixed ring of interned, `Copy` [`RawEvent`]s — recording is one mutex
//! acquisition and one 64-byte write, cheap enough to leave on for the
//! life of a job (the `dos-bench` overhead arm gates it at ≤3% end to
//! end).
//!
//! When an incident happens — a `fault:*` instant from the pipeline or
//! the chaos harness, a checkpoint fallback, a `health:degraded`
//! detection, a panic (see [`install_flight_panic_hook`]) — the recorder
//! [`FlightRecorder::dump`]s the ring: the last N events, materialized to
//! strings, kept in memory ([`FlightRecorder::last_dump`]) and written as
//! JSON into the configured dump directory. Every incident ships its
//! context.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use serde::{Deserialize, Serialize};

use crate::intern::{RawEvent, SymbolTable};
use crate::tracer::{EventKind, TraceEvent};

#[derive(Debug)]
struct Ring {
    buf: Vec<RawEvent>,
    /// Next write position (`total % capacity` once full).
    next: usize,
    /// Events ever recorded, including overwritten ones.
    total: u64,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    symbols: Arc<SymbolTable>,
    ring: Mutex<Ring>,
    dump_dir: Mutex<Option<PathBuf>>,
    last_dump: Mutex<Option<FlightDump>>,
    dump_seq: AtomicU64,
}

/// Bounded ring buffer of recent trace events. Cloning shares the ring,
/// so the same recorder can serve the tracer, the panic hook, and a
/// monitoring endpoint.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A standalone recorder with its own symbol table. Prefer
    /// [`crate::Tracer::with_flight`] / [`crate::Tracer::flight_only`]
    /// when a tracer exists — an attached ring shares the tracer's
    /// symbols and receives events without re-interning.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_symbols(capacity, Arc::new(SymbolTable::new()))
    }

    pub(crate) fn with_symbols(capacity: usize, symbols: Arc<SymbolTable>) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                capacity,
                symbols,
                ring: Mutex::new(Ring { buf: Vec::with_capacity(capacity), next: 0, total: 0 }),
                dump_dir: Mutex::new(None),
                last_dump: Mutex::new(None),
                dump_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Zero-materialization record path used by an attached tracer (the
    /// event's ids must come from the shared symbol table).
    pub(crate) fn record_raw(&self, ev: RawEvent) {
        let mut ring = self.inner.ring.lock();
        if ring.buf.len() < self.inner.capacity {
            ring.buf.push(ev);
        } else {
            let at = ring.next;
            ring.buf[at] = ev;
        }
        ring.next = (ring.next + 1) % self.inner.capacity;
        ring.total += 1;
    }

    /// Records an already-materialized event (standalone use; interns the
    /// four strings).
    pub fn record(&self, ev: &TraceEvent) {
        let sym = &self.inner.symbols;
        self.record_raw(RawEvent {
            track: sym.intern(&ev.track),
            name: sym.intern(&ev.name),
            phase: sym.intern(&ev.phase),
            resource: sym.intern(&ev.resource),
            start: ev.start,
            dur: ev.dur,
            work: ev.work,
            depth: ev.depth as u32,
            kind: ev.kind,
        });
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Events currently retained (`min(total_recorded, capacity)`).
    pub fn len(&self) -> usize {
        self.inner.ring.lock().buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded, including ones the ring has overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.inner.ring.lock().total
    }

    /// The retained events, oldest first, materialized to strings.
    pub fn events(&self) -> Vec<TraceEvent> {
        let (buf, next) = {
            let ring = self.inner.ring.lock();
            (ring.buf.clone(), ring.next)
        };
        let sym = &self.inner.symbols;
        let ordered = if buf.len() < self.inner.capacity {
            buf
        } else {
            // Full ring: `next` points at the oldest event.
            let mut v = Vec::with_capacity(buf.len());
            v.extend_from_slice(&buf[next..]);
            v.extend_from_slice(&buf[..next]);
            v
        };
        ordered
            .iter()
            .map(|ev| TraceEvent {
                track: sym.resolve(ev.track).to_string(),
                name: sym.resolve(ev.name).to_string(),
                phase: sym.resolve(ev.phase).to_string(),
                resource: sym.resolve(ev.resource).to_string(),
                start: ev.start,
                dur: ev.dur,
                work: ev.work,
                depth: ev.depth as usize,
                kind: ev.kind,
            })
            .collect()
    }

    /// Directory automatic dumps are written into as
    /// `flight-<seq>.json`. Unset by default (dumps then stay in memory
    /// only, readable via [`FlightRecorder::last_dump`]).
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        *self.inner.dump_dir.lock() = Some(dir.into());
    }

    /// Snapshots the ring into a [`FlightDump`], remembers it as the
    /// latest dump, and best-effort writes it to the dump directory when
    /// one is set (I/O failure never takes down the traced job).
    pub fn dump(&self, reason: &str) -> FlightDump {
        let events: Vec<FlightEvent> = self.events().iter().map(FlightEvent::from_event).collect();
        let total = self.total_recorded();
        let dump = FlightDump {
            reason: reason.to_string(),
            total_recorded: total,
            dropped: total.saturating_sub(events.len() as u64),
            events,
        };
        *self.inner.last_dump.lock() = Some(dump.clone());
        if let Some(dir) = self.inner.dump_dir.lock().clone() {
            let seq = self.inner.dump_seq.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("flight-{seq}.json"));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(path, dump.to_json());
        }
        dump
    }

    /// The most recent dump, if any incident has triggered one.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.inner.last_dump.lock().clone()
    }
}

/// One event inside a [`FlightDump`] — the serializable flat form of a
/// [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Track the event belonged to.
    pub track: String,
    /// Event label.
    pub name: String,
    /// Training phase.
    pub phase: String,
    /// Hardware resource, or `""`.
    pub resource: String,
    /// Start time, seconds.
    pub start: f64,
    /// Duration, seconds (0.0 for instants).
    pub dur: f64,
    /// Abstract work attributed to the event.
    pub work: f64,
    /// Nesting depth.
    pub depth: u64,
    /// `"span"` or `"instant"`.
    pub kind: String,
}

impl FlightEvent {
    fn from_event(ev: &TraceEvent) -> FlightEvent {
        FlightEvent {
            track: ev.track.clone(),
            name: ev.name.clone(),
            phase: ev.phase.clone(),
            resource: ev.resource.clone(),
            start: ev.start,
            dur: ev.dur,
            work: ev.work,
            depth: ev.depth as u64,
            kind: match ev.kind {
                EventKind::Span => "span".to_string(),
                EventKind::Instant => "instant".to_string(),
            },
        }
    }
}

/// A materialized snapshot of the flight ring at incident time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// What triggered the dump (the fault/health instant name, or
    /// `panic: <message>`).
    pub reason: String,
    /// Events ever recorded at dump time.
    pub total_recorded: u64,
    /// Events the ring had already overwritten (`total - retained`).
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Pretty JSON rendering (what the dump files contain).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"unserializable flight dump: {e}\"}}"))
    }

    /// Parses a dump back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns the parse error message when `json` is not a dump document.
    pub fn from_json(json: &str) -> Result<FlightDump, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Installs a panic hook that dumps `recorder` before delegating to the
/// previously-installed hook, so even a crash ships its last-N-events
/// context. Call once per process; repeated installs chain harmlessly.
pub fn install_flight_panic_hook(recorder: &FlightRecorder) {
    let rec = recorder.clone();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic payload".to_string());
        rec.dump(&format!("panic: {msg}"));
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, start: f64) -> TraceEvent {
        TraceEvent {
            track: "t".to_string(),
            name: name.to_string(),
            phase: "p".to_string(),
            resource: String::new(),
            start,
            dur: 0.1,
            work: 0.0,
            depth: 0,
            kind: EventKind::Span,
        }
    }

    #[test]
    fn ring_keeps_newest_events_in_order() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(&ev(&format!("e{i}"), i as f64));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        let names: Vec<String> = rec.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let rec = FlightRecorder::new(4);
        rec.record(&ev("a", 0.0));
        rec.record(&ev("b", 1.0));
        let dump = rec.dump("fault:test");
        assert_eq!(dump.reason, "fault:test");
        assert_eq!(dump.total_recorded, 2);
        assert_eq!(dump.dropped, 0);
        let back = FlightDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(back, dump);
        assert_eq!(rec.last_dump().unwrap(), dump);
    }

    #[test]
    fn dump_writes_into_the_dump_dir() {
        let local = 0u8;
        let dir = std::env::temp_dir()
            .join(format!("dos-flight-test-{}-{:p}", std::process::id(), &local));
        let rec = FlightRecorder::new(4);
        rec.set_dump_dir(&dir);
        rec.record(&ev("a", 0.0));
        rec.dump("fault:io");
        let file = dir.join("flight-0.json");
        let text = std::fs::read_to_string(&file).expect("dump file written");
        let dump = FlightDump::from_json(&text).unwrap();
        assert_eq!(dump.reason, "fault:io");
        assert_eq!(dump.events.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_hook_dumps_before_delegating() {
        let rec = FlightRecorder::new(8);
        rec.record(&ev("before-crash", 0.0));
        install_flight_panic_hook(&rec);
        let result = std::panic::catch_unwind(|| panic!("boom for flight"));
        // Restore the default hook so the rest of the suite is unaffected.
        drop(std::panic::take_hook());
        assert!(result.is_err());
        // Another test's expected panic may race in an extra dump; the
        // ring context survives regardless.
        let dump = rec.last_dump().expect("panic produced a dump");
        assert!(dump.reason.starts_with("panic:"), "reason: {}", dump.reason);
        assert!(dump.events.iter().any(|e| e.name == "before-crash"));
    }

    proptest::proptest! {
        /// Single-writer wraparound: the ring retains exactly the newest
        /// `min(n, capacity)` events, in record order.
        #[test]
        fn ring_preserves_the_newest_n_in_order(
            capacity in 1usize..16,
            n in 0usize..64,
        ) {
            let rec = FlightRecorder::new(capacity);
            for i in 0..n {
                rec.record(&ev(&format!("e{i}"), i as f64));
            }
            let kept = rec.events();
            proptest::prop_assert_eq!(kept.len(), n.min(capacity));
            proptest::prop_assert_eq!(rec.total_recorded(), n as u64);
            let first = n - kept.len();
            for (k, event) in kept.iter().enumerate() {
                proptest::prop_assert_eq!(&event.name, &format!("e{}", first + k));
            }
        }

        /// Arbitrary interleaved writers: whatever the global interleaving,
        /// each writer's retained events are an in-order suffix of what it
        /// emitted (the ring evicts strictly oldest-first).
        #[test]
        fn interleaved_writers_keep_per_writer_suffixes(
            capacity in 1usize..12,
            counts in proptest::collection::vec(1usize..20, 1..4),
        ) {
            let rec = FlightRecorder::new(capacity);
            std::thread::scope(|s| {
                for (w, &n) in counts.iter().enumerate() {
                    let rec = rec.clone();
                    s.spawn(move || {
                        for j in 0..n {
                            rec.record(&ev(&format!("w{w}:{j}"), j as f64));
                        }
                    });
                }
            });
            let total: usize = counts.iter().sum();
            proptest::prop_assert_eq!(rec.total_recorded(), total as u64);
            let kept = rec.events();
            proptest::prop_assert_eq!(kept.len(), total.min(capacity));
            for (w, &n) in counts.iter().enumerate() {
                let mine: Vec<usize> = kept
                    .iter()
                    .filter_map(|e| {
                        e.name
                            .strip_prefix(&format!("w{w}:"))
                            .and_then(|j| j.parse::<usize>().ok())
                    })
                    .collect();
                // In emission order...
                proptest::prop_assert!(
                    mine.windows(2).all(|p| p[0] < p[1]),
                    "writer {} out of order: {:?}", w, mine
                );
                // ...and a suffix: everything after the oldest retained
                // event of this writer is retained too.
                if let Some(&oldest) = mine.first() {
                    proptest::prop_assert_eq!(
                        mine.len(), n - oldest,
                        "writer {} retained a gap: {:?} of {}", w, &mine, n
                    );
                }
            }
        }
    }
}
