//! String interning for the tracer hot path.
//!
//! Every [`crate::TraceEvent`] used to carry four owned `String`s; at
//! pipeline rates that is four heap allocations per span. The tracer now
//! stores [`RawEvent`]s — four `u32` symbol ids plus the numeric fields —
//! and resolves them back to strings only when a consumer materializes
//! the stream ([`crate::Tracer::events`], flight-recorder dumps). The
//! symbol table is append-only and shared between a tracer and its
//! attached [`crate::FlightRecorder`], so forwarding an event into the
//! ring is a plain `memcpy` of a `Copy` struct.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::tracer::EventKind;

/// Symbol id of the empty string; [`SymbolTable::new`] pre-interns it so
/// "no resource" checks never need a string resolve.
pub(crate) const EMPTY_SYM: u32 = 0;

#[derive(Debug, Default)]
struct Symbols {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

/// Append-only map between strings and dense `u32` ids.
///
/// `intern` allocates only the first time a string is seen; afterwards it
/// is a single hash lookup, so a steady-state tracing hot path performs
/// no allocation at all.
#[derive(Debug)]
pub(crate) struct SymbolTable {
    inner: Mutex<Symbols>,
}

impl SymbolTable {
    pub(crate) fn new() -> SymbolTable {
        let table = SymbolTable { inner: Mutex::new(Symbols::default()) };
        let empty = table.intern("");
        debug_assert_eq!(empty, EMPTY_SYM);
        table
    }

    /// Returns the id for `name`, assigning the next dense id on first
    /// sight.
    pub(crate) fn intern(&self, name: &str) -> u32 {
        let mut inner = self.inner.lock();
        if let Some(&id) = inner.index.get(name) {
            return id;
        }
        let id = u32::try_from(inner.names.len()).unwrap_or_else(|_| {
            // 4 billion distinct labels means the emitter is embedding
            // unbounded data in names; crashing beats silent aliasing.
            panic!("symbol table overflow")
        });
        let arc: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&arc));
        inner.index.insert(arc, id);
        id
    }

    /// Resolves an id back to its string (cheap `Arc` clone).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never handed out by this table.
    pub(crate) fn resolve(&self, id: u32) -> Arc<str> {
        Arc::clone(&self.inner.lock().names[id as usize])
    }
}

/// The interned, `Copy` form of a trace event — what the tracer's event
/// vector and the flight-recorder ring actually store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RawEvent {
    pub(crate) track: u32,
    pub(crate) name: u32,
    pub(crate) phase: u32,
    pub(crate) resource: u32,
    pub(crate) start: f64,
    pub(crate) dur: f64,
    pub(crate) work: f64,
    pub(crate) depth: u32,
    pub(crate) kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dedupes() {
        let t = SymbolTable::new();
        let a = t.intern("cpu");
        let b = t.intern("gpu");
        assert_ne!(a, b);
        assert_eq!(t.intern("cpu"), a);
        assert_eq!(&*t.resolve(a), "cpu");
        assert_eq!(&*t.resolve(b), "gpu");
        assert_eq!(t.intern(""), EMPTY_SYM);
    }
}
