//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The numeric sibling of the [`crate::Tracer`]'s event stream: where spans
//! answer *when* something ran, metrics answer *how much* — bytes shipped
//! over PCIe, subgroups updated per device, stall durations binned into a
//! histogram. Every handle is cheap to clone and safe to update from any
//! thread (one short `parking_lot` lock per operation), so the simulated
//! schedulers and the real crossbeam pipeline feed the same registry.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.len()` buckets; one final overflow bucket catches the rest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Bucket upper bounds (the last, overflow bucket is unbounded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts; `counts().len() == bounds().len() + 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }
}

/// One counter reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Monotonic value.
    pub value: u64,
}

/// One gauge reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// One histogram reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// The histogram state (bounds, per-bucket counts, sum).
    pub histogram: Histogram,
}

/// A serializable point-in-time copy of a [`MetricsRegistry`], embedded in
/// exported traces (see [`crate::ChromeTrace::metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

#[derive(Debug, Default)]
struct Registers {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named counters, gauges, and histograms.
///
/// Clones share storage, so a registry handle can be passed into worker
/// threads alongside a [`crate::Tracer`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    regs: Arc<Mutex<Registers>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn inc_counter(&self, name: &str, delta: u64) {
        *self.regs.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.regs.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.regs.lock().gauges.insert(name.to_string(), value);
    }

    /// Last value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.regs.lock().gauges.get(name).copied()
    }

    /// Records `value` into the named histogram, creating it with `bounds`
    /// on first use (later calls ignore `bounds`).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        self.regs
            .lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A copy of the named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.regs.lock().histograms.get(name).cloned()
    }

    /// Serializable copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let regs = self.regs.lock();
        MetricsSnapshot {
            counters: regs
                .counters
                .iter()
                .map(|(name, &value)| CounterSample { name: name.clone(), value })
                .collect(),
            gauges: regs
                .gauges
                .iter()
                .map(|(name, &value)| GaugeSample { name: name.clone(), value })
                .collect(),
            histograms: regs
                .histograms
                .iter()
                .map(|(name, h)| HistogramSample { name: name.clone(), histogram: h.clone() })
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&[1.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.4).abs() < 1e-9);
        assert!((h.mean() - 26.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_boundary_is_inclusive() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.inc_counter("h2d.bytes", 100);
        m.inc_counter("h2d.bytes", 50);
        m.set_gauge("stride", 2.0);
        m.observe("gap", &[0.001, 0.1], 0.05);
        assert_eq!(m.counter("h2d.bytes"), 150);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("stride"), Some(2.0));
        assert_eq!(m.gauge("missing"), None);
        assert_eq!(m.histogram("gap").unwrap().count(), 1);
    }

    #[test]
    fn clones_share_storage_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.inc_counter("ops", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("ops"), 400);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = MetricsRegistry::new();
        m.inc_counter("b", 2);
        m.inc_counter("a", 1);
        m.set_gauge("g", 9.5);
        m.observe("h", &[1.0], 0.5);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms[0].histogram.count(), 1);
    }
}
