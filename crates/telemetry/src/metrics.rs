//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The numeric sibling of the [`crate::Tracer`]'s event stream: where spans
//! answer *when* something ran, metrics answer *how much* — bytes shipped
//! over PCIe, subgroups updated per device, stall durations binned into a
//! histogram. Every handle is cheap to clone and safe to update from any
//! thread (one short `parking_lot` lock per operation), so the simulated
//! schedulers and the real crossbeam pipeline feed the same registry.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Retained samples per gauge time series. When a series fills up it is
/// compacted by dropping every other sample (halving its resolution), so
/// memory stays bounded on arbitrarily long runs while the overall shape
/// survives for the Perfetto counter tracks.
pub const GAUGE_SERIES_CAP: usize = 512;

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first `bounds.len()` buckets; one final overflow bucket catches the rest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Bucket upper bounds (the last, overflow bucket is unbounded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts; `counts().len() == bounds().len() + 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` clamped into `[0, 1]`) from the
    /// bucketed counts by linear interpolation inside the bucket holding
    /// the target rank — the standard Prometheus `histogram_quantile`
    /// estimator. Observations landing in the overflow bucket clamp to the
    /// last finite bound (their true magnitude is unknown). Returns 0.0
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && cum as f64 >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: unbounded above, clamp.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower + frac * (upper - lower);
            }
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// One counter reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Monotonic value.
    pub value: u64,
}

/// One gauge reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// One histogram reading in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// The histogram state (bounds, per-bucket counts, sum).
    pub histogram: Histogram,
    /// Estimated median ([`Histogram::quantile`] at 0.50).
    #[serde(default)]
    pub p50: f64,
    /// Estimated 95th percentile.
    #[serde(default)]
    pub p95: f64,
    /// Estimated 99th percentile.
    #[serde(default)]
    pub p99: f64,
}

/// A serializable point-in-time copy of a [`MetricsRegistry`], embedded in
/// exported traces (see [`crate::ChromeTrace::metrics`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

#[derive(Debug, Default)]
struct Registers {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// Bounded per-gauge history of `(seconds-since-epoch, value)` pairs,
    /// the data behind the Perfetto counter tracks (`"ph":"C"` events).
    gauge_series: BTreeMap<String, Vec<(f64, f64)>>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named counters, gauges, and histograms.
///
/// Clones share storage, so a registry handle can be passed into worker
/// threads alongside a [`crate::Tracer`]. Every gauge write is also
/// timestamped against the registry's epoch into a bounded time series
/// ([`MetricsRegistry::gauge_series`]).
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    epoch: Instant,
    regs: Arc<Mutex<Registers>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry whose time-series epoch (t=0) is "now".
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_epoch(Instant::now())
    }

    /// Creates an empty registry with an explicit epoch, so gauge series
    /// timestamps line up with a [`crate::Tracer`] sharing the same epoch.
    pub fn with_epoch(epoch: Instant) -> MetricsRegistry {
        MetricsRegistry { epoch, regs: Arc::new(Mutex::new(Registers::default())) }
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn inc_counter(&self, name: &str, delta: u64) {
        *self.regs.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.regs.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value` and appends a timestamped sample to
    /// its bounded time series (see [`GAUGE_SERIES_CAP`]).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let at = self.epoch.elapsed().as_secs_f64();
        let mut regs = self.regs.lock();
        regs.gauges.insert(name.to_string(), value);
        let series = regs.gauge_series.entry(name.to_string()).or_default();
        if series.len() >= GAUGE_SERIES_CAP {
            // Halve resolution, keeping every other sample — the parity
            // that retains the most recent one, which sits at the end.
            let mut keep = series.len().is_multiple_of(2);
            series.retain(|_| {
                keep = !keep;
                keep
            });
        }
        series.push((at, value));
    }

    /// Last value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.regs.lock().gauges.get(name).copied()
    }

    /// The bounded `(seconds, value)` history of the named gauge, oldest
    /// first (empty if the gauge was never set).
    pub fn gauge_series(&self, name: &str) -> Vec<(f64, f64)> {
        self.regs.lock().gauge_series.get(name).cloned().unwrap_or_default()
    }

    /// Records `value` into the named histogram, creating it with `bounds`
    /// on first use (later calls ignore `bounds`).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        self.regs
            .lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A copy of the named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.regs.lock().histograms.get(name).cloned()
    }

    /// Serializable copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let regs = self.regs.lock();
        MetricsSnapshot {
            counters: regs
                .counters
                .iter()
                .map(|(name, &value)| CounterSample { name: name.clone(), value })
                .collect(),
            gauges: regs
                .gauges
                .iter()
                .map(|(name, &value)| GaugeSample { name: name.clone(), value })
                .collect(),
            histograms: regs
                .histograms
                .iter()
                .map(|(name, h)| HistogramSample {
                    name: name.clone(),
                    histogram: h.clone(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                })
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&[1.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.4).abs() < 1e-9);
        assert!((h.mean() - 26.6).abs() < 1e-9);
    }

    #[test]
    fn histogram_boundary_is_inclusive() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.inc_counter("h2d.bytes", 100);
        m.inc_counter("h2d.bytes", 50);
        m.set_gauge("stride", 2.0);
        m.observe("gap", &[0.001, 0.1], 0.05);
        assert_eq!(m.counter("h2d.bytes"), 150);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("stride"), Some(2.0));
        assert_eq!(m.gauge("missing"), None);
        assert_eq!(m.histogram("gap").unwrap().count(), 1);
    }

    #[test]
    fn clones_share_storage_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.inc_counter("ops", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("ops"), 400);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = MetricsRegistry::new();
        m.inc_counter("b", 2);
        m.inc_counter("a", 1);
        m.set_gauge("g", 9.5);
        m.observe("h", &[1.0], 0.5);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms[0].histogram.count(), 1);
    }

    #[test]
    fn quantile_interpolates_an_exact_uniform_fixture() {
        // 100 observations spread uniformly over (0, 10]: ten per bucket
        // with bounds 1..=10, so the CDF is exactly linear and every
        // quantile is known in closed form.
        let bounds: Vec<f64> = (1..=10).map(f64::from).collect();
        let mut h = Histogram::new(&bounds);
        for i in 0..100 {
            h.observe(i as f64 / 10.0 + 0.05);
        }
        assert!((h.quantile(0.50) - 5.0).abs() < 1e-9, "p50 {}", h.quantile(0.50));
        assert!((h.quantile(0.95) - 9.5).abs() < 1e-9, "p95 {}", h.quantile(0.95));
        assert!((h.quantile(0.99) - 9.9).abs() < 1e-9, "p99 {}", h.quantile(0.99));
        assert_eq!(h.quantile(0.0), 0.0, "q=0 is the distribution floor");
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_handles_point_masses_empty_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // A point mass in the (1, 2] bucket: every quantile interpolates
        // inside that one bucket.
        for _ in 0..4 {
            h.observe(1.5);
        }
        assert!((h.quantile(0.5) - 1.5).abs() < 1e-9);
        assert_eq!(h.quantile(1.0), 2.0, "q=1 hits the bucket's upper edge");
        // Overflow observations clamp to the last finite bound.
        let mut h = Histogram::new(&[1.0]);
        h.observe(50.0);
        assert_eq!(h.quantile(0.99), 1.0);
    }

    #[test]
    fn snapshot_surfaces_percentiles() {
        let m = MetricsRegistry::new();
        for i in 0..100 {
            m.observe("lat", &[1.0, 2.0, 3.0, 4.0], i as f64 / 25.0);
        }
        let snap = m.snapshot();
        let s = &snap.histograms[0];
        assert!(s.p50 > 0.0 && s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!((s.p50 - s.histogram.quantile(0.5)).abs() < 1e-12);
    }

    #[test]
    fn gauge_series_is_timestamped_ordered_and_bounded() {
        let m = MetricsRegistry::new();
        for i in 0..(GAUGE_SERIES_CAP * 2 + 7) {
            m.set_gauge("arena.in_use_bytes", i as f64);
        }
        let series = m.gauge_series("arena.in_use_bytes");
        assert!(series.len() <= GAUGE_SERIES_CAP + 1, "bounded: {}", series.len());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0), "timestamps ordered");
        let last = series.last().unwrap();
        assert_eq!(last.1, (GAUGE_SERIES_CAP * 2 + 6) as f64, "newest sample survives");
        assert!(m.gauge_series("missing").is_empty());
    }
}
