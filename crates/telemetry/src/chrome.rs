//! Chrome trace-event (Perfetto-compatible) JSON export.
//!
//! Serializes a [`Tracer`]'s event stream — or a bare [`Timeline`] — into
//! the Trace Event Format understood by `chrome://tracing` and
//! <https://ui.perfetto.dev>: `"X"` complete events with microsecond
//! timestamps, `"i"` instants, and `"M"` thread-name metadata assigning one
//! Perfetto row per track. The document round-trips through the in-tree
//! serde shim (see `dos-cli trace`, which verifies this after writing).
//!
//! Schema (documented in DESIGN.md §7):
//!
//! ```json
//! {
//!   "traceEvents": [
//!     {"name":"thread_name","cat":"__metadata","ph":"M","ts":0,"dur":0,
//!      "pid":1,"tid":1,"args":{"name":"cpu", ...}},
//!     {"name":"cpu-update:sg0","cat":"update","ph":"X","ts":0.0,
//!      "dur":1500.0,"pid":1,"tid":1,
//!      "args":{"resource":"cpu","work":123.0,"depth":0, ...}}
//!   ],
//!   "displayTimeUnit": "ms",
//!   "metrics": { "counters": [...], "gauges": [...], "histograms": [...] }
//! }
//! ```

// The Trace Event Format mandates camelCase top-level keys; the serde shim
// has no per-field rename, so the Rust identifiers carry the JSON spelling.
#![allow(non_snake_case)]

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::timeline::Timeline;
use crate::tracer::{EventKind, Tracer};

const SECS_TO_US: f64 = 1e6;

/// `args` payload of a [`ChromeEvent`]. For `"M"` metadata events only
/// `name` is meaningful; for spans, `resource`/`work`/`depth` carry the
/// [`crate::TraceEvent`] fields that have no native Trace Event slot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ChromeArgs {
    /// Thread name (metadata events).
    pub name: String,
    /// Hardware resource the span occupies (`""` when none).
    pub resource: String,
    /// Abstract work attributed to the span.
    pub work: f64,
    /// Nesting depth below the track root.
    pub depth: u64,
    /// Counter value (`"ph":"C"` gauge-series events only).
    pub value: f64,
}

/// One event in Trace Event Format.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ChromeEvent {
    /// Event name (span label).
    pub name: String,
    /// Category — we store the training phase here.
    pub cat: String,
    /// Event type: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (complete events).
    pub dur: f64,
    /// Process id (always 1 — one trace is one run).
    pub pid: u64,
    /// Thread id (one per track, assigned in order of first appearance).
    pub tid: u64,
    /// Extra payload.
    pub args: ChromeArgs,
}

/// A complete Trace Event Format document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ChromeTrace {
    /// All events (metadata first, then spans/instants by start time).
    pub traceEvents: Vec<ChromeEvent>,
    /// Display unit hint for the viewer.
    pub displayTimeUnit: String,
    /// Snapshot of the tracer's metrics registry (extension field; trace
    /// viewers ignore unknown top-level keys).
    pub metrics: MetricsSnapshot,
}

impl ChromeTrace {
    /// The tid assigned to `track`, if present.
    pub fn tid_of(&self, track: &str) -> Option<u64> {
        self.traceEvents
            .iter()
            .find(|e| e.ph == "M" && e.args.name == track)
            .map(|e| e.tid)
    }

    /// Iterates the non-metadata events.
    pub fn span_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.traceEvents.iter().filter(|e| e.ph != "M")
    }

    /// The `(microseconds, value)` samples of the named counter track
    /// (`"ph":"C"` events), in document order.
    pub fn counter_samples(&self, name: &str) -> Vec<(f64, f64)> {
        self.traceEvents
            .iter()
            .filter(|e| e.ph == "C" && e.name == name)
            .map(|e| (e.ts, e.args.value))
            .collect()
    }
}

fn metadata(tid: u64, track: &str) -> ChromeEvent {
    ChromeEvent {
        name: "thread_name".to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: 0.0,
        pid: 1,
        tid,
        args: ChromeArgs { name: track.to_string(), ..ChromeArgs::default() },
    }
}

/// Exports a tracer's events as a Trace Event Format document. Tracks
/// become Perfetto threads (tid 1, 2, ... in order of first appearance).
pub fn chrome_trace(tracer: &Tracer) -> ChromeTrace {
    let tracks = tracer.tracks();
    let tid_of = |track: &str| -> u64 {
        tracks.iter().position(|t| t == track).map_or(0, |i| i as u64 + 1)
    };
    let mut events: Vec<ChromeEvent> =
        tracks.iter().enumerate().map(|(i, t)| metadata(i as u64 + 1, t)).collect();
    for ev in tracer.events() {
        events.push(ChromeEvent {
            name: ev.name.clone(),
            cat: ev.phase.clone(),
            ph: match ev.kind {
                EventKind::Span => "X",
                EventKind::Instant => "i",
            }
            .to_string(),
            ts: ev.start * SECS_TO_US,
            dur: ev.dur * SECS_TO_US,
            pid: 1,
            tid: tid_of(&ev.track),
            args: ChromeArgs {
                name: String::new(),
                resource: ev.resource.clone(),
                work: ev.work,
                depth: ev.depth as u64,
                value: 0.0,
            },
        });
    }
    // Gauge time series render as Perfetto counter tracks: one `"C"`
    // event per retained sample, named after the gauge (counter tracks
    // are keyed by name, not tid).
    let metrics = tracer.metrics().snapshot();
    for gauge in &metrics.gauges {
        for (at, value) in tracer.metrics().gauge_series(&gauge.name) {
            events.push(ChromeEvent {
                name: gauge.name.clone(),
                cat: "counter".to_string(),
                ph: "C".to_string(),
                ts: at * SECS_TO_US,
                dur: 0.0,
                pid: 1,
                tid: 0,
                args: ChromeArgs { value, ..ChromeArgs::default() },
            });
        }
    }
    ChromeTrace { traceEvents: events, displayTimeUnit: "ms".to_string(), metrics }
}

/// Exports a bare [`Timeline`] (e.g. an [`crate::Span`] recording from the
/// simulator) as a Trace Event Format document, one track per resource.
pub fn chrome_trace_from_timeline(tl: &Timeline) -> ChromeTrace {
    let resources = tl.resources();
    let mut events: Vec<ChromeEvent> =
        resources.iter().enumerate().map(|(i, r)| metadata(i as u64 + 1, r)).collect();
    for (tid0, res) in resources.iter().enumerate() {
        for span in tl.for_resource(res) {
            events.push(ChromeEvent {
                name: span.label.clone(),
                cat: span.phase.clone(),
                ph: "X".to_string(),
                ts: span.start * SECS_TO_US,
                dur: (span.end - span.start) * SECS_TO_US,
                pid: 1,
                tid: tid0 as u64 + 1,
                args: ChromeArgs {
                    name: String::new(),
                    resource: res.clone(),
                    work: span.work,
                    depth: 0,
                    value: 0.0,
                },
            });
        }
    }
    ChromeTrace {
        traceEvents: events,
        displayTimeUnit: "ms".to_string(),
        metrics: MetricsSnapshot::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> Tracer {
        let tr = Tracer::new();
        tr.record_span("stream:update", "cpu", "cpu-update:sg0", "update", 0.0, 1.5, 10.0);
        tr.record_span("stream:h2d", "pcie.h2d", "prefetch:sg1", "update", 0.5, 0.7, 256.0);
        tr.instant_at("stream:update", "join", "update", 1.5);
        tr.metrics().inc_counter("subgroups", 2);
        tr
    }

    #[test]
    fn export_has_metadata_per_track_and_us_times() {
        let doc = chrome_trace(&sample_tracer());
        let meta: Vec<&ChromeEvent> =
            doc.traceEvents.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 2);
        assert!(meta.iter().all(|e| e.name == "thread_name"));
        assert_eq!(doc.tid_of("stream:update"), Some(1));
        assert_eq!(doc.tid_of("stream:h2d"), Some(2));
        let span = doc.span_events().find(|e| e.name == "cpu-update:sg0").unwrap();
        assert_eq!(span.ph, "X");
        assert_eq!(span.ts, 0.0);
        assert_eq!(span.dur, 1_500_000.0);
        assert_eq!(span.args.resource, "cpu");
        let inst = doc.span_events().find(|e| e.name == "join").unwrap();
        assert_eq!(inst.ph, "i");
        assert_eq!(doc.metrics.counters[0].value, 2);
    }

    #[test]
    fn document_round_trips_through_serde_shim() {
        let doc = chrome_trace(&sample_tracer());
        let json = serde_json::to_string_pretty(&doc).expect("serialize");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"displayTimeUnit\""));
        let back: ChromeTrace = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn timeline_export_tracks_resources() {
        let mut tl = Timeline::new();
        tl.record("gpu", "gpu-update:sg0", "update", 0.0, 1.0, 5.0);
        tl.record("cpu", "cpu-update:sg1", "update", 0.0, 2.0, 5.0);
        let doc = chrome_trace_from_timeline(&tl);
        assert_eq!(doc.tid_of("gpu"), Some(1));
        assert_eq!(doc.tid_of("cpu"), Some(2));
        assert_eq!(doc.span_events().count(), 2);
    }

    #[test]
    fn extra_top_level_keys_are_tolerated_on_parse() {
        // Perfetto emits documents with keys we do not model; `default` on
        // the container means absent fields parse, and our parser must not
        // choke on a minimal hand-written trace either.
        let json = r#"{"traceEvents": [], "displayTimeUnit": "ms"}"#;
        let doc: ChromeTrace = serde_json::from_str(json).expect("parse minimal");
        assert!(doc.traceEvents.is_empty());
    }

    #[test]
    fn gauge_series_export_as_counter_events_and_round_trip() {
        let tr = Tracer::new();
        tr.record_span("cpu", "", "update:sg0", "update", 0.0, 1.0, 0.0);
        tr.metrics().set_gauge("arena.in_use_bytes", 1024.0);
        tr.metrics().set_gauge("arena.in_use_bytes", 2048.0);
        tr.metrics().set_gauge("arena.high_water_bytes", 2048.0);
        let doc = chrome_trace(&tr);
        let in_use = doc.counter_samples("arena.in_use_bytes");
        assert_eq!(in_use.len(), 2);
        assert_eq!(in_use[0].1, 1024.0);
        assert_eq!(in_use[1].1, 2048.0);
        assert!(in_use[0].0 <= in_use[1].0, "counter timestamps ordered");
        assert_eq!(doc.counter_samples("arena.high_water_bytes").len(), 1);
        let counters: Vec<&ChromeEvent> =
            doc.traceEvents.iter().filter(|e| e.ph == "C").collect();
        assert!(counters.iter().all(|e| e.cat == "counter" && e.dur == 0.0));
        // The serde shim must carry `args.value` through unchanged.
        let json = serde_json::to_string_pretty(&doc).expect("serialize");
        let back: ChromeTrace = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, doc);
        assert_eq!(back.counter_samples("arena.in_use_bytes"), in_use);
    }

    #[test]
    fn interned_stream_serializes_bit_identically_to_the_expected_document() {
        // The interning refactor must be invisible in the exported JSON:
        // record a stream through the (interned) tracer and compare the
        // serialized document byte-for-byte against one built by hand from
        // owned strings — the exact document the pre-interning tracer
        // produced.
        let tr = Tracer::new();
        tr.record_span("cpu", "", "update:sg0", "update", 0.0, 1.5, 4.0);
        tr.record_span("device-worker", "gpu", "update:sg1", "update", 0.25, 1.0, 8.0);
        tr.record_span("cpu", "", "update:sg0", "update", 2.0, 3.0, 4.0);
        tr.instant_at("faults", "fault:pcie.h2d", "fault", 2.5);
        let args = |resource: &str, work: f64| ChromeArgs {
            name: String::new(),
            resource: resource.to_string(),
            work,
            depth: 0,
            value: 0.0,
        };
        let event = |name: &str, cat: &str, ph: &str, ts, dur, tid, args| ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: ph.to_string(),
            ts,
            dur,
            pid: 1,
            tid,
            args,
        };
        let expected = ChromeTrace {
            traceEvents: vec![
                metadata(1, "cpu"),
                metadata(2, "device-worker"),
                metadata(3, "faults"),
                event("update:sg0", "update", "X", 0.0, 1_500_000.0, 1, args("", 4.0)),
                event("update:sg1", "update", "X", 250_000.0, 750_000.0, 2, args("gpu", 8.0)),
                event("update:sg0", "update", "X", 2_000_000.0, 1_000_000.0, 1, args("", 4.0)),
                event("fault:pcie.h2d", "fault", "i", 2_500_000.0, 0.0, 3, args("", 0.0)),
            ],
            displayTimeUnit: "ms".to_string(),
            metrics: MetricsSnapshot::default(),
        };
        let got = serde_json::to_string_pretty(&chrome_trace(&tr)).expect("serialize");
        let want = serde_json::to_string_pretty(&expected).expect("serialize");
        assert_eq!(got, want, "interned export diverged from the string-backed document");
    }
}
