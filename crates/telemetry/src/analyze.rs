//! Overlap/stall analyzer: turns a trace into the paper's plotted numbers.
//!
//! Consumes a [`Timeline`] (from the simulator, or a [`crate::Tracer`] via
//! [`crate::Tracer::to_timeline`]) and reports, per training phase, the
//! quantities Figures 3, 4, and 15 visualize:
//!
//! * per-resource **busy fraction** (PCIe per direction → Figure 4 / §5.4's
//!   "<10% PCIe utilization" claim; GPU/CPU → Figure 15);
//! * pairwise **overlap efficiency** — of the time the less-busy resource of
//!   a pair is busy, how much coincides with the other being busy (the DOS
//!   update's CPU/GPU interleave claim);
//! * pipeline **fill/drain tails** — how long after the phase opens before
//!   two resources first run concurrently, and how long the phase runs on
//!   after concurrency last collapses to one (the Eq. 1 band's fill/drain
//!   terms);
//! * per-resource **idle-gap histograms** (stall accounting).
//!
//! [`TraceAnalysis::validate`] machine-checks the invariants the CI trace
//! step relies on: fractions and efficiencies in [0, 1], phase bounds
//! inside the run, and the phases covering the iteration end-to-end.

use serde::{Deserialize, Serialize};

use crate::metrics::Histogram;
use crate::timeline::Timeline;
use crate::tracer::{PhaseBoundary, Tracer};

/// Idle-gap histogram bucket bounds, in seconds (1µs .. 1s, then overflow).
pub const IDLE_GAP_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Busy statistics for one resource within one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Resource name (`"gpu"`, `"cpu"`, `"pcie.h2d"`, ...).
    pub resource: String,
    /// Seconds the resource was busy (interval union, overlaps merged).
    pub busy_secs: f64,
    /// `busy_secs / phase duration`, in [0, 1].
    pub busy_fraction: f64,
    /// First time the resource became busy in the phase.
    pub first_start: f64,
    /// Last time the resource was busy in the phase.
    pub last_end: f64,
    /// Number of raw spans recorded.
    pub span_count: u64,
    /// Histogram of idle gaps *between* busy intervals (bounds:
    /// [`IDLE_GAP_BOUNDS`]); leading/trailing idle is fill/drain.
    pub idle_gaps: Histogram,
}

/// Pairwise busy-time overlap between two resources within a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapStat {
    /// First resource of the pair.
    pub a: String,
    /// Second resource of the pair.
    pub b: String,
    /// Seconds both were busy simultaneously.
    pub overlap_secs: f64,
    /// `overlap_secs / min(busy_a, busy_b)`, in [0, 1]: 1.0 means the
    /// less-busy resource ran entirely under cover of the other.
    pub efficiency: f64,
}

/// Analysis of one training phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// Phase name (`"forward"`, `"backward"`, `"update"`, ...).
    pub phase: String,
    /// Earliest span start in the phase.
    pub start: f64,
    /// Latest span end in the phase.
    pub end: f64,
    /// `end - start`.
    pub duration: f64,
    /// Pipeline fill tail: seconds from `start` until two resources first
    /// run concurrently (0 when concurrency never reaches two).
    pub fill_secs: f64,
    /// Pipeline drain tail: seconds from the last two-wide concurrent
    /// moment until `end` (0 when concurrency never reaches two).
    pub drain_secs: f64,
    /// Per-resource busy statistics, sorted by resource name.
    pub resources: Vec<ResourceStats>,
    /// All resource pairs, sorted by `(a, b)`.
    pub overlaps: Vec<OverlapStat>,
}

/// Whole-trace analysis: one entry per phase, ordered by phase start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// End of the last span in the trace (seconds).
    pub total_secs: f64,
    /// Per-phase breakdowns.
    pub phases: Vec<PhaseAnalysis>,
}

/// Merges possibly-overlapping `[start, end]` intervals into a disjoint,
/// sorted list.
fn merge(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn measure(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Intersection of two disjoint sorted interval lists.
fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Pipeline fill/drain tails of a phase: seconds from the phase opening
/// until two resources first run concurrently, and from the last concurrent
/// moment until the phase closes. Phases that never reach two-wide
/// concurrency (or have a single resource) report (0, 0).
fn fill_drain(busy_sets: &[(String, Vec<(f64, f64)>)], start: f64, end: f64) -> (f64, f64) {
    let mut edges: Vec<(f64, i32)> = Vec::new();
    for (_, set) in busy_sets {
        for &(s, e) in set {
            edges.push((s, 1));
            edges.push((e, -1));
        }
    }
    // Opens before closes at equal times, so a zero-length touch counts.
    edges.sort_by(|x, y| x.0.total_cmp(&y.0).then(y.1.cmp(&x.1)));
    let mut depth = 0;
    let mut first2: Option<f64> = None;
    let mut last2: Option<f64> = None;
    for (t, d) in edges {
        let was = depth;
        depth += d;
        if depth >= 2 && first2.is_none() {
            first2 = Some(t);
        }
        if was >= 2 && depth < 2 {
            last2 = Some(t);
        }
    }
    match (first2, last2) {
        (Some(f), Some(l)) => (f - start, end - l),
        _ => (0.0, 0.0),
    }
}

/// Seconds during which `resource_a` was busy with `phase_a` work *while*
/// `resource_b` was busy with `phase_b` work, anywhere in the run.
///
/// The per-phase [`OverlapStat`]s only see pairs *within* one phase; this
/// measures concurrency *across* phases — the ZenFlow-style claim that
/// iteration `i`'s deferred CPU updates (`("update", "cpu")`) run under
/// cover of iteration `i+1`'s forward/backward (`("forward", "gpu")` /
/// `("backward", "gpu")`). Returns 0.0 when either side has no spans.
pub fn cross_phase_overlap_secs(
    tl: &Timeline,
    phase_a: &str,
    resource_a: &str,
    phase_b: &str,
    resource_b: &str,
) -> f64 {
    let busy = |phase: &str, resource: &str| -> Vec<(f64, f64)> {
        merge(
            tl.for_phase(phase)
                .filter(|s| s.resource == resource)
                .map(|s| (s.start, s.end))
                .collect(),
        )
    };
    measure(&intersect(&busy(phase_a, resource_a), &busy(phase_b, resource_b)))
}

/// Analyzes a timeline into per-phase busy/overlap/stall statistics,
/// deriving every phase window from span extents (earliest span start,
/// latest span end). Equivalent to [`analyze_with_boundaries`] with no
/// boundaries; prefer that (or [`analyze_tracer`]) when the emitter
/// publishes explicit phase edges, since span-derived windows mis-segment
/// interleaved phases.
pub fn analyze(tl: &Timeline) -> TraceAnalysis {
    analyze_with_boundaries(tl, &[])
}

/// Analyzes a tracer's events using its recorded phase-boundary instants:
/// `analyze_with_boundaries(&tracer.to_timeline(), &tracer.phase_boundaries())`.
pub fn analyze_tracer(tracer: &Tracer) -> TraceAnalysis {
    analyze_with_boundaries(&tracer.to_timeline(), &tracer.phase_boundaries())
}

/// Analyzes a timeline into per-phase busy/overlap/stall statistics.
///
/// A phase with a matching [`PhaseBoundary`] uses the boundary's `start` as
/// its authoritative opening edge — span time before it (an update-phase
/// prefetch overlapped into backward) is clipped out of the phase's busy
/// accounting — and closes at the later of the boundary's `end` and the
/// phase's latest span end (asynchronous flushes may spill past the
/// declared edge). Phases without a boundary fall back to span-derived
/// windows; boundaries whose phase has no spans still produce an (empty)
/// phase entry, so fully-degraded phases stay visible.
pub fn analyze_with_boundaries(tl: &Timeline, boundaries: &[PhaseBoundary]) -> TraceAnalysis {
    // Phases ordered by window start: the boundary's start where declared,
    // otherwise the first span start.
    let mut phase_names: Vec<(f64, String)> = Vec::new();
    for span in tl.spans() {
        match phase_names.iter_mut().find(|(_, p)| *p == span.phase) {
            Some(entry) => entry.0 = entry.0.min(span.start),
            None => phase_names.push((span.start, span.phase.clone())),
        }
    }
    for b in boundaries {
        match phase_names.iter_mut().find(|(_, p)| *p == b.phase) {
            Some(entry) => entry.0 = b.start,
            None => phase_names.push((b.start, b.phase.clone())),
        }
    }
    phase_names.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    let mut phases = Vec::with_capacity(phase_names.len());
    for (_, phase) in &phase_names {
        let spans: Vec<_> = tl.for_phase(phase).collect();
        let boundary = boundaries.iter().find(|b| &b.phase == phase);
        let span_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let span_end = spans.iter().map(|s| s.end).fold(f64::NEG_INFINITY, f64::max);
        let (start, end) = match boundary {
            Some(b) => (b.start, if span_end.is_finite() { b.end.max(span_end) } else { b.end }),
            None => (span_start, span_end.max(span_start)),
        };
        let duration = end - start;

        let mut resources: Vec<String> = spans.iter().map(|s| s.resource.clone()).collect();
        resources.sort();
        resources.dedup();

        let mut stats = Vec::with_capacity(resources.len());
        let mut busy_sets: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for res in &resources {
            // Clip to the phase window's opening edge: a span straddling an
            // authoritative boundary contributes only its in-window part.
            let raw: Vec<(f64, f64)> = spans
                .iter()
                .filter(|s| &s.resource == res)
                .map(|s| (s.start.max(start), s.end))
                .filter(|(a, b)| b > a)
                .collect();
            let span_count = raw.len() as u64;
            let merged = merge(raw);
            let busy_secs = measure(&merged);
            let mut idle_gaps = Histogram::new(IDLE_GAP_BOUNDS);
            for w in merged.windows(2) {
                idle_gaps.observe(w[1].0 - w[0].1);
            }
            stats.push(ResourceStats {
                resource: res.clone(),
                busy_secs,
                busy_fraction: if duration > 0.0 { (busy_secs / duration).min(1.0) } else { 0.0 },
                first_start: merged.first().map_or(start, |iv| iv.0),
                last_end: merged.last().map_or(end, |iv| iv.1),
                span_count,
                idle_gaps,
            });
            busy_sets.push((res.clone(), merged));
        }

        let (fill_secs, drain_secs) = fill_drain(&busy_sets, start, end);

        let mut overlaps = Vec::new();
        for i in 0..busy_sets.len() {
            for j in i + 1..busy_sets.len() {
                let overlap_secs = measure(&intersect(&busy_sets[i].1, &busy_sets[j].1));
                let floor = stats[i].busy_secs.min(stats[j].busy_secs);
                overlaps.push(OverlapStat {
                    a: busy_sets[i].0.clone(),
                    b: busy_sets[j].0.clone(),
                    overlap_secs,
                    efficiency: if floor > 0.0 { (overlap_secs / floor).min(1.0) } else { 0.0 },
                });
            }
        }

        phases.push(PhaseAnalysis {
            phase: phase.clone(),
            start,
            end,
            duration,
            fill_secs,
            drain_secs,
            resources: stats,
            overlaps,
        });
    }

    let total_secs =
        boundaries.iter().map(|b| b.end).fold(tl.end_time(), f64::max);
    TraceAnalysis { total_secs, phases }
}

impl TraceAnalysis {
    /// The analysis for the named phase, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseAnalysis> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Busy fraction of `resource` during `phase` (0.0 when either is
    /// absent from the trace).
    pub fn busy_fraction(&self, phase: &str, resource: &str) -> f64 {
        self.phase(phase)
            .and_then(|p| p.resources.iter().find(|r| r.resource == resource))
            .map_or(0.0, |r| r.busy_fraction)
    }

    /// Overlap efficiency between two resources during `phase` (order
    /// independent; 0.0 when the pair is absent).
    pub fn overlap_efficiency(&self, phase: &str, a: &str, b: &str) -> f64 {
        self.phase(phase)
            .and_then(|p| {
                p.overlaps
                    .iter()
                    .find(|o| (o.a == a && o.b == b) || (o.a == b && o.b == a))
            })
            .map_or(0.0, |o| o.efficiency)
    }

    /// Machine-checks the analyzer invariants; returns one message per
    /// violation (empty = healthy). Checked: every busy fraction and
    /// overlap efficiency lies in [0, 1]; every phase fits inside
    /// `[0, total_secs]` with `start <= end`; `fill + drain <= duration`;
    /// and the union of phase windows covers the run from the first span to
    /// `total_secs` (phase times sum to the iteration time) within 1%.
    pub fn validate(&self) -> Vec<String> {
        const EPS: f64 = 1e-9;
        let mut violations = Vec::new();
        for p in &self.phases {
            if p.start > p.end {
                violations.push(format!("phase {}: start {} > end {}", p.phase, p.start, p.end));
            }
            if p.start < -EPS || p.end > self.total_secs + EPS {
                violations.push(format!(
                    "phase {}: bounds [{}, {}] outside run [0, {}]",
                    p.phase, p.start, p.end, self.total_secs
                ));
            }
            if p.fill_secs + p.drain_secs > p.duration + EPS {
                violations.push(format!(
                    "phase {}: fill {} + drain {} exceed duration {}",
                    p.phase, p.fill_secs, p.drain_secs, p.duration
                ));
            }
            for r in &p.resources {
                if !(-EPS..=1.0 + EPS).contains(&r.busy_fraction) {
                    violations.push(format!(
                        "phase {} resource {}: busy fraction {} outside [0, 1]",
                        p.phase, r.resource, r.busy_fraction
                    ));
                }
            }
            for o in &p.overlaps {
                if !(-EPS..=1.0 + EPS).contains(&o.efficiency) {
                    violations.push(format!(
                        "phase {} overlap {}x{}: efficiency {} outside [0, 1]",
                        p.phase, o.a, o.b, o.efficiency
                    ));
                }
            }
        }
        if !self.phases.is_empty() {
            let first = self.phases.iter().map(|p| p.start).fold(f64::INFINITY, f64::min);
            let covered = measure(&merge(self.phases.iter().map(|p| (p.start, p.end)).collect()));
            let run = self.total_secs - first;
            if run > 0.0 && covered < 0.99 * run {
                violations.push(format!(
                    "phases cover {covered:.6}s of the {run:.6}s run (< 99%): \
                     phase times do not sum to the iteration time"
                ));
            }
        }
        violations
    }

    /// Renders the analysis as an ASCII report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace analysis: {} phase(s), {:.6} s total\n",
            self.phases.len(),
            self.total_secs
        );
        for p in &self.phases {
            out.push_str(&format!(
                "phase {:<12} [{:.6}, {:.6}]  dur {:.6}s  fill {:.6}s  drain {:.6}s\n",
                p.phase, p.start, p.end, p.duration, p.fill_secs, p.drain_secs
            ));
            for r in &p.resources {
                let stalls = r.idle_gaps.count();
                out.push_str(&format!(
                    "  {:<10} busy {:.6}s ({:5.1}%)  spans {:>4}  idle gaps {} (mean {:.1} us, p50/p95/p99 {:.1}/{:.1}/{:.1} us)\n",
                    r.resource,
                    r.busy_secs,
                    r.busy_fraction * 100.0,
                    r.span_count,
                    stalls,
                    r.idle_gaps.mean() * 1e6,
                    r.idle_gaps.quantile(0.50) * 1e6,
                    r.idle_gaps.quantile(0.95) * 1e6,
                    r.idle_gaps.quantile(0.99) * 1e6,
                ));
            }
            for o in &p.overlaps {
                if o.overlap_secs > 0.0 {
                    out.push_str(&format!(
                        "  overlap {:<10} x {:<10} {:.6}s  (efficiency {:5.1}%)\n",
                        o.a,
                        o.b,
                        o.overlap_secs,
                        o.efficiency * 100.0
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two phases: a "forward" with gpu solo, an "update" where cpu runs
    /// 0..4 and gpu runs 1..3 (fully covered by cpu), pcie 3.5..4.
    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.record("gpu", "fwd", "forward", 0.0, 2.0, 10.0);
        tl.record("cpu", "cpu-update:sg0", "update", 2.0, 4.0, 4.0);
        tl.record("cpu", "cpu-update:sg1", "update", 4.0, 6.0, 4.0);
        tl.record("gpu", "gpu-update:sg2", "update", 3.0, 5.0, 4.0);
        tl.record("pcie.h2d", "prefetch:sg2", "update", 5.5, 6.0, 64.0);
        tl
    }

    #[test]
    fn phases_ordered_by_start_with_bounds() {
        let a = analyze(&sample());
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].phase, "forward");
        assert_eq!(a.phases[1].phase, "update");
        let upd = a.phase("update").unwrap();
        assert_eq!(upd.start, 2.0);
        assert_eq!(upd.end, 6.0);
        assert_eq!(upd.duration, 4.0);
        assert_eq!(a.total_secs, 6.0);
    }

    #[test]
    fn busy_fractions_merge_overlapping_spans() {
        let a = analyze(&sample());
        assert!((a.busy_fraction("update", "cpu") - 1.0).abs() < 1e-12);
        assert!((a.busy_fraction("update", "gpu") - 0.5).abs() < 1e-12);
        assert!((a.busy_fraction("update", "pcie.h2d") - 0.125).abs() < 1e-12);
        assert_eq!(a.busy_fraction("update", "nvme"), 0.0);
        assert_eq!(a.busy_fraction("missing-phase", "cpu"), 0.0);
    }

    #[test]
    fn overlap_efficiency_is_cover_of_less_busy_side() {
        let a = analyze(&sample());
        // gpu busy 2s entirely inside cpu busy 4s: efficiency 1.0.
        assert!((a.overlap_efficiency("update", "cpu", "gpu") - 1.0).abs() < 1e-12);
        // Order-independent lookup.
        assert!((a.overlap_efficiency("update", "gpu", "cpu") - 1.0).abs() < 1e-12);
        // pcie (0.5s) entirely inside cpu busy: efficiency 1.0 too.
        assert!((a.overlap_efficiency("update", "pcie.h2d", "cpu") - 1.0).abs() < 1e-12);
        // gpu [3,5] vs pcie [5.5,6]: no overlap.
        assert_eq!(a.overlap_efficiency("update", "gpu", "pcie.h2d"), 0.0);
    }

    #[test]
    fn fill_and_drain_track_concurrency_edges() {
        let a = analyze(&sample());
        let upd = a.phase("update").unwrap();
        // cpu runs alone on [2, 3]; gpu joins at 3 → fill 1.0s. The last
        // concurrent stretch (cpu+pcie) runs to the phase end at 6 →
        // drain 0.0s.
        assert!((upd.fill_secs - 1.0).abs() < 1e-12);
        assert!(upd.drain_secs.abs() < 1e-12);
        // A solo phase has no pipeline to fill.
        let fwd = a.phase("forward").unwrap();
        assert_eq!((fwd.fill_secs, fwd.drain_secs), (0.0, 0.0));
    }

    #[test]
    fn idle_gaps_are_binned() {
        let mut tl = Timeline::new();
        tl.record("cpu", "a", "update", 0.0, 1.0, 1.0);
        tl.record("cpu", "b", "update", 1.5, 2.0, 1.0); // 0.5 s gap
        tl.record("cpu", "c", "update", 2.0, 3.0, 1.0); // contiguous
        let a = analyze(&tl);
        let cpu = &a.phase("update").unwrap().resources[0];
        assert_eq!(cpu.idle_gaps.count(), 1);
        assert!((cpu.idle_gaps.sum() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn healthy_trace_validates_clean() {
        let a = analyze(&sample());
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    #[test]
    fn coverage_gap_is_flagged() {
        let mut tl = Timeline::new();
        tl.record("cpu", "a", "forward", 0.0, 1.0, 1.0);
        tl.record("cpu", "b", "update", 50.0, 51.0, 1.0); // 49 s of nothing
        let a = analyze(&tl);
        let violations = a.validate();
        assert!(
            violations.iter().any(|v| v.contains("do not sum")),
            "{violations:?}"
        );
    }

    #[test]
    fn empty_timeline_analyzes_empty() {
        let a = analyze(&Timeline::new());
        assert!(a.phases.is_empty());
        assert!(a.validate().is_empty());
    }

    #[test]
    fn analysis_serializes_round_trip() {
        let a = analyze(&sample());
        let json = serde_json::to_string_pretty(&a).expect("serialize");
        let back: TraceAnalysis = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, a);
    }

    #[test]
    fn boundaries_segment_interleaved_phases() {
        // An update-phase prefetch starts during backward: span-derived
        // segmentation drags the update window back to t=8; explicit
        // boundaries keep the phases disjoint.
        let mut tl = Timeline::new();
        tl.record("gpu", "bwd", "backward", 0.0, 10.0, 1.0);
        tl.record("pcie.h2d", "prefetch:sg0", "update", 8.0, 12.0, 1.0);
        tl.record("gpu", "gpu-update:sg0", "update", 10.0, 14.0, 1.0);

        let plain = analyze(&tl);
        assert_eq!(plain.phase("update").unwrap().start, 8.0);

        let bounds = [
            PhaseBoundary { phase: "backward".into(), start: 0.0, end: 10.0 },
            PhaseBoundary { phase: "update".into(), start: 10.0, end: 14.0 },
        ];
        let a = analyze_with_boundaries(&tl, &bounds);
        let upd = a.phase("update").unwrap();
        assert_eq!(upd.start, 10.0);
        assert_eq!(upd.end, 14.0);
        // The prefetch contributes only its in-window half [10, 12].
        let h2d = upd.resources.iter().find(|r| r.resource == "pcie.h2d").unwrap();
        assert!((h2d.busy_secs - 2.0).abs() < 1e-12);
        assert!((a.busy_fraction("update", "pcie.h2d") - 0.5).abs() < 1e-12);
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    #[test]
    fn spans_spilling_past_a_boundary_widen_the_phase() {
        let mut tl = Timeline::new();
        tl.record("cpu", "upd", "update", 0.0, 5.0, 1.0);
        tl.record("nvme", "async-flush", "update", 4.0, 9.0, 1.0);
        let bounds = [PhaseBoundary { phase: "update".into(), start: 0.0, end: 5.0 }];
        let a = analyze_with_boundaries(&tl, &bounds);
        let upd = a.phase("update").unwrap();
        assert_eq!(upd.start, 0.0);
        assert_eq!(upd.end, 9.0, "trailing async span widens the window");
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    #[test]
    fn boundary_only_phase_stays_visible() {
        // A fully-degraded phase may emit no spans at all; its declared
        // window still shows up (with no resources) so campaigns can see it.
        let mut tl = Timeline::new();
        tl.record("cpu", "upd", "update", 2.0, 4.0, 1.0);
        let bounds = [
            PhaseBoundary { phase: "forward".into(), start: 0.0, end: 2.0 },
            PhaseBoundary { phase: "update".into(), start: 2.0, end: 4.0 },
        ];
        let a = analyze_with_boundaries(&tl, &bounds);
        assert_eq!(a.phases.len(), 2);
        let fwd = a.phase("forward").unwrap();
        assert_eq!((fwd.start, fwd.end), (0.0, 2.0));
        assert!(fwd.resources.is_empty());
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    #[test]
    fn no_boundaries_matches_legacy_analyze() {
        let tl = sample();
        assert_eq!(analyze_with_boundaries(&tl, &[]), analyze(&tl));
    }

    #[test]
    fn analyze_tracer_uses_recorded_boundaries() {
        let tr = Tracer::new();
        tr.record_span("stream", "gpu", "bwd", "backward", 0.0, 10.0, 1.0);
        tr.record_span("stream", "pcie.h2d", "prefetch", "update", 8.0, 12.0, 1.0);
        tr.record_span("stream", "gpu", "upd", "update", 10.0, 14.0, 1.0);
        tr.phase_boundary("backward", 0.0, 10.0);
        tr.phase_boundary("update", 10.0, 14.0);
        let a = analyze_tracer(&tr);
        assert_eq!(a.phase("update").unwrap().start, 10.0);
        assert_eq!(a.phase("backward").unwrap().end, 10.0);
        assert!(a.validate().is_empty(), "{:?}", a.validate());
    }

    #[test]
    fn cross_phase_overlap_measures_concurrency_across_phases() {
        // Deferred cpu updates [2, 6] run while the next iteration's
        // forward [3, 5] and backward [5, 8] occupy the gpu.
        let mut tl = Timeline::new();
        tl.record("cpu", "cpu-update:sg1", "update", 2.0, 6.0, 4.0);
        tl.record("gpu", "fwd", "forward", 3.0, 5.0, 10.0);
        tl.record("gpu", "bwd", "backward", 5.0, 8.0, 10.0);
        let fwd = cross_phase_overlap_secs(&tl, "update", "cpu", "forward", "gpu");
        let bwd = cross_phase_overlap_secs(&tl, "update", "cpu", "backward", "gpu");
        assert!((fwd - 2.0).abs() < 1e-12, "fwd overlap {fwd}");
        assert!((bwd - 1.0).abs() < 1e-12, "bwd overlap {bwd}");
        // Wrong resource or absent phase: zero.
        assert_eq!(cross_phase_overlap_secs(&tl, "update", "gpu", "forward", "gpu"), 0.0);
        assert_eq!(cross_phase_overlap_secs(&tl, "update", "cpu", "nvme-io", "nvme"), 0.0);
    }

    #[test]
    fn cross_phase_overlap_merges_fragmented_spans() {
        let mut tl = Timeline::new();
        tl.record("cpu", "a", "update", 0.0, 1.0, 1.0);
        tl.record("cpu", "b", "update", 0.5, 2.0, 1.0); // overlapping: merge
        tl.record("gpu", "fwd", "forward", 1.5, 3.0, 1.0);
        let secs = cross_phase_overlap_secs(&tl, "update", "cpu", "forward", "gpu");
        assert!((secs - 0.5).abs() < 1e-12, "overlap {secs}");
    }

    #[test]
    fn render_mentions_each_phase_and_resource() {
        let text = analyze(&sample()).render();
        assert!(text.contains("phase forward"));
        assert!(text.contains("phase update"));
        assert!(text.contains("pcie.h2d"));
        assert!(text.contains("overlap"));
    }
}
