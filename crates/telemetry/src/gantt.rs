//! ASCII Gantt rendering of timelines.
//!
//! Renders schedules the way the paper's Figures 5 and 6 illustrate them:
//! one row per resource, time flowing left to right, each span drawn with a
//! glyph derived from its label. Used by the `fig5_schedule_gantt` and
//! `fig6_gradient_path_gantt` binaries.

use crate::timeline::Timeline;

/// Renders `timeline` as an ASCII Gantt chart `width` characters wide.
///
/// Spans are drawn with the first character of their label (`#` when the
/// label is empty); later spans overwrite earlier ones where they collide
/// within a row. A scale line in seconds is appended.
///
/// # Panics
///
/// Panics if `width < 10`.
pub fn render_gantt(timeline: &Timeline, width: usize) -> String {
    assert!(width >= 10, "width too small");
    let end = timeline.end_time();
    if end == 0.0 {
        return String::from("(empty timeline)\n");
    }
    let resources = timeline.resources();
    let name_w = resources.iter().map(String::len).max().unwrap_or(4).max(4);
    let mut out = String::new();
    for res in &resources {
        let mut row = vec![b'.'; width];
        for span in timeline.for_resource(res) {
            // Clamp every span to at least one cell so zero-width spans
            // (instants, sub-cell transfers) stay visible.
            let a = (((span.start / end) * width as f64).floor() as usize).min(width - 1);
            let b = (((span.end / end) * width as f64).ceil() as usize).clamp(a + 1, width);
            // Non-ASCII first bytes would tear the row's UTF-8; fall back
            // to the generic glyph instead.
            let glyph = span.label.bytes().next().filter(u8::is_ascii).unwrap_or(b'#');
            for cell in row.iter_mut().take(b).skip(a) {
                *cell = glyph;
            }
        }
        out.push_str(&format!(
            "{:>name_w$} |{}|\n",
            res,
            String::from_utf8_lossy(&row),
        ));
    }
    // Scale line.
    out.push_str(&format!(
        "{:>name_w$} |0{:>pad$}|\n",
        "t(s)",
        format!("{end:.3}"),
        pad = width - 1,
    ));
    out
}

/// Renders a legend mapping the first-character glyphs used in the chart to
/// full labels (one entry per distinct label prefix).
pub fn render_legend(timeline: &Timeline) -> String {
    let mut seen: Vec<(u8, String)> = Vec::new();
    for span in timeline.spans() {
        let glyph = span.label.bytes().next().unwrap_or(b'#');
        let stem = span.label.split(':').next().unwrap_or(&span.label).to_string();
        if !seen.iter().any(|(g, s)| *g == glyph && *s == stem) {
            seen.push((glyph, stem));
        }
    }
    let mut out = String::from("legend: ");
    for (i, (g, stem)) in seen.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push(*g as char);
        out.push_str(" = ");
        out.push_str(stem);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Timeline {
        let mut tl = Timeline::new();
        tl.record("gpu", "update:sg1", "update", 0.0, 1.0, 1.0);
        tl.record("cpu", "cpu-update:sg0", "update", 0.0, 2.0, 2.0);
        tl.record("pcie.h2d", "prefetch:sg1", "update", 0.5, 1.0, 100.0);
        tl
    }

    #[test]
    fn rows_per_resource_and_scale_line() {
        let chart = render_gantt(&timeline(), 40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4); // 3 resources + scale
        assert!(lines[0].contains("gpu"));
        assert!(lines[3].contains("t(s)"));
    }

    #[test]
    fn glyph_density_tracks_duration() {
        let chart = render_gantt(&timeline(), 40);
        let cpu_row = chart.lines().find(|l| l.trim_start().starts_with("cpu ")).unwrap();
        let gpu_row = chart.lines().find(|l| l.trim_start().starts_with("gpu ")).unwrap();
        let cpu_busy = cpu_row.matches('c').count();
        let gpu_busy = gpu_row.matches('u').count();
        assert!(cpu_busy > gpu_busy, "cpu row {cpu_busy} vs gpu row {gpu_busy}");
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(render_gantt(&Timeline::new(), 40), "(empty timeline)\n");
    }

    #[test]
    fn legend_lists_distinct_stems() {
        let legend = render_legend(&timeline());
        assert!(legend.contains("u = update"));
        assert!(legend.contains("c = cpu-update"));
        assert!(legend.contains("p = prefetch"));
    }

    #[test]
    #[should_panic(expected = "width too small")]
    fn width_validated() {
        let _ = render_gantt(&Timeline::new(), 5);
    }

    #[test]
    fn zero_width_spans_still_draw_one_cell() {
        // A 1 ms span on a 100 s timeline occupies far less than one cell at
        // width 40; it used to round to nothing. It must draw exactly one
        // glyph, even at the extreme right edge.
        let mut tl = Timeline::new();
        tl.record("gpu", "work", "update", 0.0, 100.0, 1.0);
        tl.record("cpu", "blip", "update", 50.0, 50.001, 1.0);
        tl.record("nvme", "zip", "update", 100.0, 100.0, 0.0);
        let chart = render_gantt(&tl, 40);
        let cpu_row = chart.lines().find(|l| l.trim_start().starts_with("cpu ")).unwrap();
        assert_eq!(cpu_row.matches('b').count(), 1, "sub-cell span lost: {chart}");
        let nvme_row = chart.lines().find(|l| l.trim_start().starts_with("nvme ")).unwrap();
        assert_eq!(nvme_row.matches('z').count(), 1, "edge span lost: {chart}");
        // The in-row glyph sits at the last cell, not past the border.
        assert!(nvme_row.trim_end().ends_with("z|"), "{chart}");
    }
}
