//! # dos-telemetry — unified tracing, metrics, timelines, and analysis
//!
//! The reproduction's observability layer (the paper's NVML, §3):
//!
//! * [`Tracer`] — a lock-cheap, thread-safe event recorder both clocks feed:
//!   wall-clock scoped spans ([`Tracer::span`]) from the real threaded
//!   pipeline and trainer, and explicit-time spans ([`Tracer::record_span`])
//!   replayed from the discrete-event simulator. A [`MetricsRegistry`] of
//!   counters, gauges, and fixed-bucket [`Histogram`]s rides along.
//! * [`Timeline`] — busy [`Span`]s per resource, with windowed utilization
//!   and throughput series — the data behind the paper's GPU-memory
//!   (Figure 3), PCIe-traffic (Figure 4), and resource-utilization
//!   (Figure 15) plots.
//! * [`chrome_trace`] — Chrome trace-event / Perfetto JSON export, openable
//!   in <https://ui.perfetto.dev>, alongside ASCII Gantt charts
//!   ([`render_gantt`]) in the style of Figures 5 and 6.
//! * [`analyze`] — the overlap/stall analyzer: per-phase PCIe busy
//!   fractions, CPU/GPU overlap efficiency, pipeline fill/drain tails, and
//!   idle-gap histograms, with machine-checkable invariants
//!   ([`TraceAnalysis::validate`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Telemetry must never take the training loop down: failures surface as
// values, not panics; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod analyze;
mod chrome;
mod expose;
mod flight;
mod gantt;
mod health;
mod intern;
mod metrics;
mod timeline;
mod tracer;

pub use analyze::{
    analyze, analyze_tracer, analyze_with_boundaries, cross_phase_overlap_secs, OverlapStat,
    PhaseAnalysis, ResourceStats, TraceAnalysis, IDLE_GAP_BOUNDS,
};
pub use chrome::{chrome_trace, chrome_trace_from_timeline, ChromeArgs, ChromeEvent, ChromeTrace};
pub use expose::{
    http_get, parse_prometheus, prometheus_text, split_name_labels, JsonRouteFn, MetricsServer,
    PromSample, SharedDoc,
};
pub use flight::{
    install_flight_panic_hook, FlightDump, FlightEvent, FlightRecorder,
};
pub use gantt::{render_gantt, render_legend};
pub use health::{
    window_stats, HealthBoard, HealthConfig, HealthEvent, HealthEventKind, HealthMonitor,
    HealthSnapshot, IterationReport, BOARD_RECENT_CAP, HEALTH_TRACK,
};
pub use metrics::{
    CounterSample, GaugeSample, Histogram, HistogramSample, MetricsRegistry, MetricsSnapshot,
    GAUGE_SERIES_CAP,
};
pub use timeline::{Sample, Span, Timeline};
pub use tracer::{
    EventKind, PhaseBoundary, SpanGuard, TraceEvent, Tracer, CONTROL_TRACK, PHASE_TRACK,
};
