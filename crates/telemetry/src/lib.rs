//! # dos-telemetry — timelines, utilization sampling, and Gantt export
//!
//! The reproduction's NVML (§3): simulators and pipelines record busy
//! [`Span`]s into a [`Timeline`], from which windowed utilization and
//! throughput series are derived — the data behind the paper's GPU-memory
//! (Figure 3), PCIe-traffic (Figure 4), and resource-utilization (Figure 15)
//! plots — and ASCII Gantt charts ([`render_gantt`]) in the style of the
//! schedule illustrations (Figures 5 and 6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gantt;
mod timeline;

pub use gantt::{render_gantt, render_legend};
pub use timeline::{Sample, Span, Timeline};
