//! Online health and anomaly detection for a running training job.
//!
//! Post-hoc analysis ([`crate::analyze`]) answers "what happened" after a
//! run; this module answers "is it healthy *now*". The trainer aggregates
//! each iteration into an [`IterationReport`] (throughput, stall/overlap
//! fractions, arena behavior, degradation state) and feeds it to a
//! [`HealthMonitor`], which keeps EWMA baselines and flags three anomaly
//! classes:
//!
//! * **iteration stall** — one iteration took far longer than the moving
//!   baseline (`iter_secs > stall_factor × EWMA`);
//! * **throughput regression** — sustained params/s fell below a fraction
//!   of the baseline (`pps < regression_factor × EWMA`);
//! * **arena thrash** — the staging arena keeps allocating instead of
//!   reusing after warmup (per-iteration miss fraction above threshold).
//!
//! Detections are [`HealthEvent`]s: the caller emits them as `health:*`
//! tracer instants (a `health:degraded` instant additionally triggers the
//! attached flight recorder's dump) and as structured JSON log lines
//! ([`HealthEvent::json_line`]). A cloneable [`HealthBoard`] holds the
//! latest report and recent events for the `/health` endpoint of the
//! metrics exposition server.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::tracer::{EventKind, TraceEvent};

/// Track name `health:*` detection instants are recorded on.
pub const HEALTH_TRACK: &str = "health";

/// Recent [`HealthEvent`]s a [`HealthBoard`] retains for its snapshot.
pub const BOARD_RECENT_CAP: usize = 64;

/// Per-iteration aggregation produced by the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationReport {
    /// Iteration index (0-based).
    pub iteration: u64,
    /// Wall-clock duration of the iteration, seconds.
    pub iter_secs: f64,
    /// Parameters updated this iteration.
    pub params: u64,
    /// Throughput, params per second.
    pub pps: f64,
    /// Fraction of the iteration the CPU track spent idle (0.0 when no
    /// trace window was available).
    pub stall_fraction: f64,
    /// CPU/device busy-time overlap divided by the smaller of the two
    /// busy times (0.0 when either side recorded nothing).
    pub overlap_efficiency: f64,
    /// Subgroups updated on the device this iteration.
    pub device_subgroups: u64,
    /// Subgroups updated on the CPU this iteration.
    pub cpu_subgroups: u64,
    /// Arena leases served from the freelists this iteration.
    pub arena_reuse_hits: u64,
    /// Arena leases that had to allocate this iteration.
    pub arena_allocation_misses: u64,
    /// Sticky arena high-water mark, bytes.
    pub arena_high_water_bytes: u64,
    /// True when the pipeline ran degraded (device worker lost).
    pub degraded: bool,
}

/// What a [`HealthEvent`] detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum HealthEventKind {
    /// One iteration far above the EWMA baseline duration.
    IterationStall,
    /// Throughput below a fraction of the EWMA baseline.
    ThroughputRegression,
    /// Arena allocating instead of reusing after warmup.
    ArenaThrash,
    /// The pipeline reported a degraded (worker-lost) step.
    Degraded,
}

impl HealthEventKind {
    /// The tracer-instant name for this detection (`health:*`).
    pub fn instant_name(self) -> &'static str {
        match self {
            HealthEventKind::IterationStall => "health:stall",
            HealthEventKind::ThroughputRegression => "health:regression",
            HealthEventKind::ArenaThrash => "health:arena-thrash",
            HealthEventKind::Degraded => "health:degraded",
        }
    }
}

/// One anomaly detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Anomaly class.
    pub kind: HealthEventKind,
    /// Iteration the detection fired on.
    pub iteration: u64,
    /// Human-readable detail (observed value vs baseline).
    pub detail: String,
}

impl HealthEvent {
    /// One structured JSON log line (`{"type":"health",...}`).
    pub fn json_line(&self) -> String {
        let kind = serde_json::to_string(&self.kind).unwrap_or_else(|_| "\"unknown\"".into());
        let detail = serde_json::to_string(&self.detail).unwrap_or_else(|_| "\"\"".into());
        format!(
            "{{\"type\":\"health\",\"kind\":{kind},\"iteration\":{},\"detail\":{detail}}}",
            self.iteration
        )
    }
}

/// Detector thresholds. The defaults are deliberately loose — production
/// monitoring must be quiet on a healthy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct HealthConfig {
    /// EWMA smoothing factor in (0, 1]; higher tracks faster.
    pub alpha: f64,
    /// Iterations observed before the detectors arm (baselines need a few
    /// samples, and the first iterations legitimately miss in the arena).
    pub warmup: u64,
    /// An iteration is a stall when `iter_secs > stall_factor × EWMA`.
    pub stall_factor: f64,
    /// A regression when `pps < regression_factor × EWMA`.
    pub regression_factor: f64,
    /// Arena thrash when the per-iteration miss fraction exceeds this
    /// after warmup.
    pub thrash_miss_fraction: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            alpha: 0.3,
            warmup: 3,
            stall_factor: 3.0,
            regression_factor: 0.33,
            thrash_miss_fraction: 0.5,
        }
    }
}

/// EWMA-based anomaly detector over a stream of [`IterationReport`]s.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    seen: u64,
    ewma_iter_secs: Option<f64>,
    ewma_pps: Option<f64>,
}

impl Default for HealthMonitor {
    fn default() -> HealthMonitor {
        HealthMonitor::new(HealthConfig::default())
    }
}

impl HealthMonitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(cfg: HealthConfig) -> HealthMonitor {
        HealthMonitor { cfg, seen: 0, ewma_iter_secs: None, ewma_pps: None }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Current iteration-duration baseline, if any samples arrived.
    pub fn ewma_iter_secs(&self) -> Option<f64> {
        self.ewma_iter_secs
    }

    /// Current throughput baseline, if any samples arrived.
    pub fn ewma_pps(&self) -> Option<f64> {
        self.ewma_pps
    }

    /// Feeds one iteration; returns the detections it fired (empty on a
    /// healthy iteration). Detections compare against the baselines from
    /// *before* this sample, then the sample is folded in.
    pub fn observe(&mut self, r: &IterationReport) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        if r.degraded {
            events.push(HealthEvent {
                kind: HealthEventKind::Degraded,
                iteration: r.iteration,
                detail: "pipeline reported a degraded (worker-lost) step".to_string(),
            });
        }
        let armed = self.seen >= self.cfg.warmup;
        if armed {
            if let Some(base) = self.ewma_iter_secs {
                if base > 0.0 && r.iter_secs > self.cfg.stall_factor * base {
                    events.push(HealthEvent {
                        kind: HealthEventKind::IterationStall,
                        iteration: r.iteration,
                        detail: format!(
                            "iteration took {:.6}s vs EWMA {:.6}s (factor {:.1})",
                            r.iter_secs, base, self.cfg.stall_factor
                        ),
                    });
                }
            }
            if let Some(base) = self.ewma_pps {
                if base > 0.0 && r.pps < self.cfg.regression_factor * base {
                    events.push(HealthEvent {
                        kind: HealthEventKind::ThroughputRegression,
                        iteration: r.iteration,
                        detail: format!(
                            "throughput {:.3e} pps vs EWMA {:.3e} (floor factor {:.2})",
                            r.pps, base, self.cfg.regression_factor
                        ),
                    });
                }
            }
            let leases = r.arena_reuse_hits + r.arena_allocation_misses;
            if leases > 0 {
                let miss_fraction = r.arena_allocation_misses as f64 / leases as f64;
                if miss_fraction > self.cfg.thrash_miss_fraction {
                    events.push(HealthEvent {
                        kind: HealthEventKind::ArenaThrash,
                        iteration: r.iteration,
                        detail: format!(
                            "arena miss fraction {miss_fraction:.2} ({} misses / {} leases) \
                             after warmup",
                            r.arena_allocation_misses, leases
                        ),
                    });
                }
            }
        }
        let a = self.cfg.alpha.clamp(f64::EPSILON, 1.0);
        let fold = |base: &mut Option<f64>, sample: f64| {
            *base = Some(match *base {
                Some(b) => (1.0 - a) * b + a * sample,
                None => sample,
            });
        };
        fold(&mut self.ewma_iter_secs, r.iter_secs);
        fold(&mut self.ewma_pps, r.pps);
        self.seen += 1;
        events
    }
}

#[derive(Debug, Default)]
struct BoardState {
    iterations: u64,
    last: Option<IterationReport>,
    recent_events: Vec<HealthEvent>,
    total_events: u64,
    ewma_iter_secs: f64,
    ewma_pps: f64,
}

/// Shared, cloneable publication point between the trainer's health loop
/// and the `/health` endpoint of the metrics server.
#[derive(Debug, Clone, Default)]
pub struct HealthBoard {
    state: Arc<Mutex<BoardState>>,
}

/// Serializable copy of a [`HealthBoard`] (the `/health` payload).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct HealthSnapshot {
    /// Iterations published so far.
    pub iterations: u64,
    /// The most recent iteration report.
    pub last: Option<IterationReport>,
    /// The newest detections (bounded by [`BOARD_RECENT_CAP`]).
    pub recent_events: Vec<HealthEvent>,
    /// Detections ever fired.
    pub total_events: u64,
    /// Iteration-duration EWMA baseline (0.0 before any sample).
    pub ewma_iter_secs: f64,
    /// Throughput EWMA baseline (0.0 before any sample).
    pub ewma_pps: f64,
    /// True when the latest iteration ran degraded.
    pub degraded: bool,
}

impl HealthBoard {
    /// Creates an empty board.
    pub fn new() -> HealthBoard {
        HealthBoard::default()
    }

    /// Publishes one iteration's report, its detections, and the
    /// monitor's current baselines.
    pub fn publish(&self, report: IterationReport, events: &[HealthEvent], monitor: &HealthMonitor) {
        let mut st = self.state.lock();
        st.iterations += 1;
        st.last = Some(report);
        st.total_events += events.len() as u64;
        st.recent_events.extend_from_slice(events);
        if st.recent_events.len() > BOARD_RECENT_CAP {
            let drop = st.recent_events.len() - BOARD_RECENT_CAP;
            st.recent_events.drain(..drop);
        }
        st.ewma_iter_secs = monitor.ewma_iter_secs().unwrap_or(0.0);
        st.ewma_pps = monitor.ewma_pps().unwrap_or(0.0);
    }

    /// A point-in-time copy for serialization.
    pub fn snapshot(&self) -> HealthSnapshot {
        let st = self.state.lock();
        HealthSnapshot {
            iterations: st.iterations,
            last: st.last,
            recent_events: st.recent_events.clone(),
            total_events: st.total_events,
            ewma_iter_secs: st.ewma_iter_secs,
            ewma_pps: st.ewma_pps,
            degraded: st.last.is_some_and(|r| r.degraded),
        }
    }
}

/// Computes `(stall_fraction, overlap_efficiency)` for the window
/// `[start, end]` from a slice of trace events: the idle fraction of
/// `cpu_track` and the busy-time overlap between `cpu_track` and
/// `device_track` relative to the smaller of the two. Returns `(0.0,
/// 0.0)` when the window is empty or no spans intersect it.
pub fn window_stats(
    events: &[TraceEvent],
    cpu_track: &str,
    device_track: &str,
    start: f64,
    end: f64,
) -> (f64, f64) {
    let dur = end - start;
    if dur <= 0.0 {
        return (0.0, 0.0);
    }
    let busy = |track: &str| -> Vec<(f64, f64)> {
        let mut spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.track == track)
            .map(|e| (e.start.max(start), (e.start + e.dur).min(end)))
            .filter(|&(s, e)| e > s)
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    };
    let total = |iv: &[(f64, f64)]| iv.iter().map(|&(s, e)| e - s).sum::<f64>();
    let cpu = busy(cpu_track);
    let dev = busy(device_track);
    let cpu_busy = total(&cpu);
    let dev_busy = total(&dev);
    let stall = (1.0 - cpu_busy / dur).clamp(0.0, 1.0);
    if cpu_busy <= 0.0 || dev_busy <= 0.0 {
        return (stall, 0.0);
    }
    // Overlap of two sorted interval unions.
    let mut overlap = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < cpu.len() && j < dev.len() {
        let lo = cpu[i].0.max(dev[j].0);
        let hi = cpu[i].1.min(dev[j].1);
        if hi > lo {
            overlap += hi - lo;
        }
        if cpu[i].1 < dev[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    (stall, (overlap / cpu_busy.min(dev_busy)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(iteration: u64, iter_secs: f64, pps: f64) -> IterationReport {
        IterationReport {
            iteration,
            iter_secs,
            params: 1000,
            pps,
            stall_fraction: 0.0,
            overlap_efficiency: 0.0,
            device_subgroups: 2,
            cpu_subgroups: 2,
            arena_reuse_hits: 8,
            arena_allocation_misses: 0,
            arena_high_water_bytes: 4096,
            degraded: false,
        }
    }

    #[test]
    fn healthy_stream_stays_quiet() {
        let mut mon = HealthMonitor::default();
        for i in 0..20 {
            let events = mon.observe(&report(i, 0.01, 100_000.0));
            assert!(events.is_empty(), "iteration {i}: {events:?}");
        }
        assert!(mon.ewma_pps().unwrap() > 0.0);
    }

    #[test]
    fn stall_and_regression_fire_after_warmup_only() {
        let mut mon = HealthMonitor::default();
        // An outlier during warmup is swallowed.
        assert!(mon.observe(&report(0, 10.0, 1.0)).is_empty());
        let mut mon = HealthMonitor::default();
        for i in 0..5 {
            assert!(mon.observe(&report(i, 0.01, 100_000.0)).is_empty());
        }
        let events = mon.observe(&report(5, 0.2, 5_000.0));
        let kinds: Vec<HealthEventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&HealthEventKind::IterationStall), "{events:?}");
        assert!(kinds.contains(&HealthEventKind::ThroughputRegression), "{events:?}");
    }

    #[test]
    fn arena_thrash_needs_a_majority_of_misses() {
        let mut mon = HealthMonitor::default();
        for i in 0..5 {
            mon.observe(&report(i, 0.01, 100_000.0));
        }
        let mut thrash = report(5, 0.01, 100_000.0);
        thrash.arena_reuse_hits = 1;
        thrash.arena_allocation_misses = 9;
        let events = mon.observe(&thrash);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::ArenaThrash);
        let mut ok = report(6, 0.01, 100_000.0);
        ok.arena_allocation_misses = 1;
        ok.arena_reuse_hits = 9;
        assert!(mon.observe(&ok).is_empty());
    }

    #[test]
    fn degraded_reports_always_fire() {
        let mut mon = HealthMonitor::default();
        let mut r = report(0, 0.01, 100_000.0);
        r.degraded = true;
        let events = mon.observe(&r);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, HealthEventKind::Degraded);
        assert_eq!(events[0].kind.instant_name(), "health:degraded");
    }

    #[test]
    fn json_line_is_valid_json() {
        let ev = HealthEvent {
            kind: HealthEventKind::IterationStall,
            iteration: 7,
            detail: "iteration took \"long\"".to_string(),
        };
        let line = ev.json_line();
        let back: serde::Value = serde_json::from_str(&line).expect("log line parses");
        let map = back.as_map().expect("object").to_vec();
        let get = |k: &str| map.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(get("type"), Some(serde::Value::Str("health".to_string())));
        assert_eq!(get("kind"), Some(serde::Value::Str("iteration_stall".to_string())));
        assert_eq!(get("iteration"), Some(serde::Value::Int(7)));
    }

    #[test]
    fn board_publishes_and_bounds_recent_events() {
        let board = HealthBoard::new();
        let mut mon = HealthMonitor::default();
        for i in 0..(BOARD_RECENT_CAP as u64 + 10) {
            let mut r = report(i, 0.01, 100_000.0);
            r.degraded = true;
            let events = mon.observe(&r);
            board.publish(r, &events, &mon);
        }
        let snap = board.snapshot();
        assert_eq!(snap.iterations, BOARD_RECENT_CAP as u64 + 10);
        assert_eq!(snap.recent_events.len(), BOARD_RECENT_CAP);
        assert_eq!(snap.total_events, BOARD_RECENT_CAP as u64 + 10);
        assert!(snap.degraded);
        assert!(snap.ewma_pps > 0.0);
        let json = serde_json::to_string_pretty(&snap).expect("serialize");
        let back: HealthSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn window_stats_measure_idle_and_overlap() {
        let mk = |track: &str, start: f64, dur: f64| TraceEvent {
            track: track.to_string(),
            name: "s".to_string(),
            phase: "update".to_string(),
            resource: String::new(),
            start,
            dur,
            work: 0.0,
            depth: 0,
            kind: EventKind::Span,
        };
        // CPU busy [0,2] and [3,4]; device busy [1,4]; window [0,4].
        let events =
            vec![mk("cpu", 0.0, 2.0), mk("cpu", 3.0, 1.0), mk("device-worker", 1.0, 3.0)];
        let (stall, overlap) = window_stats(&events, "cpu", "device-worker", 0.0, 4.0);
        // CPU busy 3s of 4 → stall 0.25; overlap [1,2]+[3,4]=2s over
        // min(3,3)=3 → 2/3.
        assert!((stall - 0.25).abs() < 1e-9, "stall {stall}");
        assert!((overlap - 2.0 / 3.0).abs() < 1e-9, "overlap {overlap}");
        // Empty window and missing tracks are inert.
        assert_eq!(window_stats(&events, "cpu", "device-worker", 4.0, 4.0), (0.0, 0.0));
        assert_eq!(window_stats(&events, "nope", "device-worker", 0.0, 4.0), (1.0, 0.0));
    }
}
