//! A lock-cheap, thread-safe tracer unifying simulated and wall clocks.
//!
//! Every instrumented component — the HAL discrete-event engine, the
//! `dos-sim` scenarios, the crossbeam-threaded hybrid pipeline, the
//! functional trainer — emits [`TraceEvent`]s into one [`Tracer`] handle:
//!
//! * **wall-clock** emitters open scoped [`SpanGuard`]s ([`Tracer::span`])
//!   that time themselves against the tracer's epoch and record on drop,
//!   nesting naturally (a per-thread depth counter tracks parents);
//! * **simulated-clock** emitters replay an already-scheduled timeline via
//!   [`Tracer::record_span`] with explicit start/end seconds.
//!
//! Both land in the same event stream, so one exporter
//! ([`crate::chrome_trace`]) and one analyzer ([`crate::analyze`]) serve
//! both worlds. Each event carries a *track* (a Perfetto thread row: a real
//! thread or a simulator stream) and optionally a *resource* (the hardware
//! unit it occupies: `"gpu"`, `"pcie.h2d"`, ...), which is what the
//! overlap analyzer aggregates by.
//!
//! Internally events are stored in interned form ([`crate::intern`]): four
//! `u32` symbol ids instead of four owned `String`s, so the steady-state
//! record path allocates nothing. Strings are materialized only when a
//! consumer asks ([`Tracer::events`]). A tracer can also carry an always-on
//! [`FlightRecorder`] ring ([`Tracer::with_flight`] /
//! [`Tracer::flight_only`]) that keeps the last N events and dumps them
//! automatically when a `fault:*` or `health:degraded` instant lands.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::flight::FlightRecorder;
use crate::intern::{RawEvent, SymbolTable, EMPTY_SYM};
use crate::metrics::MetricsRegistry;
use crate::timeline::Timeline;

/// Track name carrying `phase-begin:`/`phase-end:` boundary instants
/// (emitted by [`Tracer::phase_boundary`], consumed by
/// [`Tracer::phase_boundaries`] and `analyze_with_boundaries`).
pub const PHASE_TRACK: &str = "phases";

/// Track name carrying `control:*` decision instants emitted by the
/// adaptive control plane (`dos-control`): retunes, ladder transitions,
/// resident resizes, and recoveries. Consumed by
/// [`Tracer::control_instants`] and rendered as its own Perfetto row.
pub const CONTROL_TRACK: &str = "control";

/// An explicit phase window, reconstructed from paired
/// `phase-begin:<phase>` / `phase-end:<phase>` instants on the
/// [`PHASE_TRACK`] track.
///
/// Span-derived phase segmentation breaks down once phases interleave (an
/// update-phase prefetch issued during backward drags the update window
/// backwards); emitters that know their true phase edges publish them as
/// boundary instants instead, and the analyzer treats those as
/// authoritative.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBoundary {
    /// Phase name (`"forward"`, `"update"`, ...).
    pub phase: String,
    /// Authoritative phase start, seconds.
    pub start: f64,
    /// Declared phase end, seconds. Spans may legitimately spill past it
    /// (asynchronous flushes); consumers widen as needed.
    pub end: f64,
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (`start..start + dur`).
    Span,
    /// A zero-duration instant marker.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Track the event belongs to (thread name or simulator stream).
    pub track: String,
    /// Event label, e.g. `"cpu-update:sg3"`.
    pub name: String,
    /// Training phase, e.g. `"update"` (Chrome category).
    pub phase: String,
    /// Hardware resource occupied, or `""` when the event is purely a
    /// track-local annotation.
    pub resource: String,
    /// Start time in seconds (since the tracer epoch for wall-clock spans,
    /// since t=0 for simulated spans).
    pub start: f64,
    /// Duration in seconds (0.0 for instants).
    pub dur: f64,
    /// Abstract work attributed to the span (FLOPs, bytes); 0.0 if unknown.
    pub work: f64,
    /// Nesting depth below the track's root (0 = top-level).
    pub depth: usize,
    /// Span or instant.
    pub kind: EventKind,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    symbols: Arc<SymbolTable>,
    /// Unbounded event store; empty forever in flight-only mode.
    events: Mutex<Vec<RawEvent>>,
    /// False in [`Tracer::flight_only`] mode: only the bounded ring keeps
    /// events, so the tracer can stay attached for the whole life of a
    /// production job.
    store_events: bool,
    flight: Option<FlightRecorder>,
    metrics: MetricsRegistry,
}

thread_local! {
    static THREAD_TRACK: RefCell<Option<String>> = const { RefCell::new(None) };
    static THREAD_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Thread-safe trace recorder. Cloning is cheap and shares storage, so the
/// same tracer can be handed to every worker thread of a pipeline.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a tracer whose wall-clock epoch (t=0) is "now".
    pub fn new() -> Tracer {
        Tracer::build(true, None)
    }

    /// Creates a tracer that, in addition to the full event store, mirrors
    /// every event into a bounded [`FlightRecorder`] ring of `capacity`
    /// events. The ring shares the tracer's symbol table, so mirroring is
    /// a single `Copy` write.
    pub fn with_flight(capacity: usize) -> Tracer {
        Tracer::build(true, Some(capacity))
    }

    /// Creates an always-on tracer that keeps **only** the bounded flight
    /// ring: [`Tracer::events`] stays empty no matter how long the job
    /// runs, memory is `capacity * sizeof(RawEvent)`, and the last
    /// `capacity` events are available via [`Tracer::flight`] (and dumped
    /// automatically on faults). This is the production-monitoring mode.
    pub fn flight_only(capacity: usize) -> Tracer {
        Tracer::build(false, Some(capacity))
    }

    fn build(store_events: bool, flight_capacity: Option<usize>) -> Tracer {
        let epoch = Instant::now();
        let symbols = Arc::new(SymbolTable::new());
        let flight =
            flight_capacity.map(|cap| FlightRecorder::with_symbols(cap, Arc::clone(&symbols)));
        Tracer {
            inner: Arc::new(Inner {
                epoch,
                symbols,
                events: Mutex::new(Vec::new()),
                store_events,
                flight,
                metrics: MetricsRegistry::with_epoch(epoch),
            }),
        }
    }

    /// The attached flight recorder, when this tracer was built with
    /// [`Tracer::with_flight`] or [`Tracer::flight_only`].
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.flight.as_ref()
    }

    /// Seconds elapsed since the tracer's epoch.
    pub fn now(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// Names the *calling thread's* track for subsequent [`Tracer::span`] /
    /// [`Tracer::instant`] calls. The setting is thread-local (it applies to
    /// every tracer used from this thread) and stays until overwritten.
    pub fn set_thread_track(&self, name: &str) {
        THREAD_TRACK.with(|t| *t.borrow_mut() = Some(name.to_string()));
    }

    /// Interns the calling thread's track name. No allocation once the
    /// name has been seen: the thread-local string is looked up by `&str`.
    fn current_track_id(&self) -> u32 {
        THREAD_TRACK.with(|t| match t.borrow().as_deref() {
            Some(name) => self.inner.symbols.intern(name),
            None => self.inner.symbols.intern(std::thread::current().name().unwrap_or("thread")),
        })
    }

    fn intern(&self, name: &str) -> u32 {
        self.inner.symbols.intern(name)
    }

    /// Opens a wall-clock scoped span on the calling thread's track; the
    /// span is recorded when the returned guard drops. Nested guards record
    /// increasing [`TraceEvent::depth`].
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, name: &str, phase: &str) -> SpanGuard {
        let track = self.current_track_id();
        self.span_ids(track, EMPTY_SYM, self.intern(name), self.intern(phase))
    }

    /// Like [`Tracer::span`], but on an explicit track and attributing the
    /// time to `resource` (empty string for none).
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span_on(&self, track: &str, resource: &str, name: &str, phase: &str) -> SpanGuard {
        self.span_ids(
            self.intern(track),
            self.intern(resource),
            self.intern(name),
            self.intern(phase),
        )
    }

    fn span_ids(&self, track: u32, resource: u32, name: u32, phase: u32) -> SpanGuard {
        let depth = THREAD_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard {
            tracer: self.clone(),
            track,
            resource,
            name,
            phase,
            start: self.now(),
            work: 0.0,
            depth,
        }
    }

    /// Records a wall-clock instant event on the calling thread's track.
    pub fn instant(&self, name: &str, phase: &str) {
        let t = self.now();
        let track = self.current_track_id();
        self.push_raw(RawEvent {
            track,
            name: self.intern(name),
            phase: self.intern(phase),
            resource: EMPTY_SYM,
            start: t,
            dur: 0.0,
            work: 0.0,
            depth: THREAD_DEPTH.with(Cell::get) as u32,
            kind: EventKind::Instant,
        });
    }

    /// Records a span with explicit times — the simulated-clock entry
    /// point. `start`/`end` are seconds on the emitter's own clock.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        track: &str,
        resource: &str,
        name: &str,
        phase: &str,
        start: f64,
        end: f64,
        work: f64,
    ) {
        assert!(end >= start, "span ends before it starts: [{start}, {end}]");
        self.push_raw(RawEvent {
            track: self.intern(track),
            name: self.intern(name),
            phase: self.intern(phase),
            resource: self.intern(resource),
            start,
            dur: end - start,
            work,
            depth: 0,
            kind: EventKind::Span,
        });
    }

    /// Publishes an explicit phase window as a pair of boundary instants
    /// (`phase-begin:<phase>` at `start`, `phase-end:<phase>` at `end`) on
    /// the [`PHASE_TRACK`] track. Emit one per phase per run; repeated
    /// emissions for the same phase widen the reconstructed window.
    pub fn phase_boundary(&self, phase: &str, start: f64, end: f64) {
        self.instant_at(PHASE_TRACK, &format!("phase-begin:{phase}"), phase, start);
        self.instant_at(PHASE_TRACK, &format!("phase-end:{phase}"), phase, end);
    }

    /// Reconstructs [`PhaseBoundary`] windows from the boundary instants
    /// recorded via [`Tracer::phase_boundary`], ordered by start. Phases
    /// with a begin but no end (or vice versa) are skipped; duplicate
    /// emissions widen the window (earliest begin, latest end).
    pub fn phase_boundaries(&self) -> Vec<PhaseBoundary> {
        let mut begins: Vec<(String, f64)> = Vec::new();
        let mut ends: Vec<(String, f64)> = Vec::new();
        for ev in self.events() {
            if ev.kind != EventKind::Instant || ev.track != PHASE_TRACK {
                continue;
            }
            if let Some(p) = ev.name.strip_prefix("phase-begin:") {
                match begins.iter_mut().find(|(n, _)| n == p) {
                    Some(e) => e.1 = e.1.min(ev.start),
                    None => begins.push((p.to_string(), ev.start)),
                }
            } else if let Some(p) = ev.name.strip_prefix("phase-end:") {
                match ends.iter_mut().find(|(n, _)| n == p) {
                    Some(e) => e.1 = e.1.max(ev.start),
                    None => ends.push((p.to_string(), ev.start)),
                }
            }
        }
        let mut out: Vec<PhaseBoundary> = begins
            .into_iter()
            .filter_map(|(phase, start)| {
                ends.iter().find(|(n, _)| *n == phase).map(|&(_, end)| PhaseBoundary {
                    phase,
                    start,
                    end: end.max(start),
                })
            })
            .collect();
        out.sort_by(|a, b| a.start.total_cmp(&b.start));
        out
    }

    /// Records a control-plane decision instant (`control:<what>`) at an
    /// explicit time on the [`CONTROL_TRACK`] track. `what` names the
    /// decision, e.g. `retune:k=3`, `ladder:dos->residents-only`,
    /// `residents:4`, `recover:k=2`.
    pub fn control_decision(&self, what: &str, at: f64) {
        self.instant_at(CONTROL_TRACK, &format!("control:{what}"), "control", at);
    }

    /// All `control:*` decision instants recorded on the
    /// [`CONTROL_TRACK`] track, ordered by time.
    pub fn control_instants(&self) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|ev| {
                ev.kind == EventKind::Instant
                    && ev.track == CONTROL_TRACK
                    && ev.name.starts_with("control:")
            })
            .collect()
    }

    /// Records an instant event at an explicit time on an explicit track.
    pub fn instant_at(&self, track: &str, name: &str, phase: &str, at: f64) {
        self.push_raw(RawEvent {
            track: self.intern(track),
            name: self.intern(name),
            phase: self.intern(phase),
            resource: EMPTY_SYM,
            start: at,
            dur: 0.0,
            work: 0.0,
            depth: 0,
            kind: EventKind::Instant,
        });
    }

    fn push_raw(&self, ev: RawEvent) {
        if self.inner.store_events {
            self.inner.events.lock().push(ev);
        }
        if let Some(flight) = &self.inner.flight {
            flight.record_raw(ev);
            // Fault and degradation instants trigger an automatic dump so
            // every incident ships its last-N-events context. Instants are
            // rare, so the string resolve here is off the hot path.
            if ev.kind == EventKind::Instant {
                let name = self.inner.symbols.resolve(ev.name);
                if name.starts_with("fault:") || name.starts_with("health:degraded") {
                    flight.dump(&name);
                }
            }
        }
    }

    fn materialize(&self, ev: &RawEvent) -> TraceEvent {
        let sym = &self.inner.symbols;
        TraceEvent {
            track: sym.resolve(ev.track).to_string(),
            name: sym.resolve(ev.name).to_string(),
            phase: sym.resolve(ev.phase).to_string(),
            resource: sym.resolve(ev.resource).to_string(),
            start: ev.start,
            dur: ev.dur,
            work: ev.work,
            depth: ev.depth as usize,
            kind: ev.kind,
        }
    }

    /// The metrics registry sharing this tracer's lifetime.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// A snapshot of all recorded events, sorted by start time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let raw = self.inner.events.lock().clone();
        let mut evs: Vec<TraceEvent> = raw.iter().map(|ev| self.materialize(ev)).collect();
        evs.sort_by(|a, b| a.start.total_cmp(&b.start));
        evs
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.events.lock().is_empty()
    }

    /// Discards all recorded events (metrics are kept).
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }

    /// Distinct track names in order of first appearance.
    pub fn tracks(&self) -> Vec<String> {
        let evs = self.inner.events.lock();
        let mut ids: Vec<u32> = Vec::new();
        for ev in evs.iter() {
            if !ids.contains(&ev.track) {
                ids.push(ev.track);
            }
        }
        ids.into_iter().map(|id| self.inner.symbols.resolve(id).to_string()).collect()
    }

    /// Converts the span events into a [`Timeline`] for the analyzer and
    /// Gantt renderer. A span's timeline resource is its `resource` field
    /// when set, otherwise its track; instants are skipped.
    pub fn to_timeline(&self) -> Timeline {
        let mut tl = Timeline::new();
        for ev in self.events() {
            if ev.kind != EventKind::Span {
                continue;
            }
            let resource = if ev.resource.is_empty() { &ev.track } else { &ev.resource };
            tl.record(resource, &ev.name, &ev.phase, ev.start, ev.start + ev.dur, ev.work);
        }
        tl
    }
}

/// Guard for a wall-clock scoped span; records the event when dropped.
///
/// Holds only interned symbol ids, so dropping the guard records the span
/// without allocating.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    track: u32,
    resource: u32,
    name: u32,
    phase: u32,
    start: f64,
    work: f64,
    depth: usize,
}

impl SpanGuard {
    /// Attributes abstract work (FLOPs, bytes) to the span.
    pub fn set_work(&mut self, work: f64) {
        self.work = work;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.tracer.now();
        THREAD_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        self.tracer.push_raw(RawEvent {
            track: self.track,
            name: self.name,
            phase: self.phase,
            resource: self.resource,
            start: self.start,
            dur: (end - self.start).max(0.0),
            work: self.work,
            depth: self.depth as u32,
            kind: EventKind::Span,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_spans_record_on_drop_with_nesting() {
        let tr = Tracer::new();
        tr.set_thread_track("main");
        {
            let _outer = tr.span("outer", "update");
            {
                let _inner = tr.span("inner", "update");
            }
        }
        let evs = tr.events();
        assert_eq!(evs.len(), 2);
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.track, "main");
        assert!(inner.start >= outer.start);
        assert!(inner.start + inner.dur <= outer.start + outer.dur + 1e-9);
    }

    #[test]
    fn explicit_time_spans_carry_sim_clock() {
        let tr = Tracer::new();
        tr.record_span("stream:update", "gpu", "gpu-update:sg0", "update", 1.0, 2.5, 42.0);
        let evs = tr.events();
        assert_eq!(evs[0].start, 1.0);
        assert_eq!(evs[0].dur, 1.5);
        assert_eq!(evs[0].work, 42.0);
        assert_eq!(evs[0].resource, "gpu");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn backwards_span_rejected() {
        Tracer::new().record_span("t", "", "x", "p", 2.0, 1.0, 0.0);
    }

    #[test]
    fn clones_share_events_across_threads() {
        let tr = Tracer::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let tr = tr.clone();
                s.spawn(move || {
                    tr.set_thread_track(&format!("worker{i}"));
                    let _g = tr.span("job", "update");
                });
            }
        });
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.tracks().len(), 4);
    }

    #[test]
    fn to_timeline_maps_resource_or_track() {
        let tr = Tracer::new();
        tr.record_span("stream", "pcie.h2d", "h2d", "update", 0.0, 1.0, 8.0);
        tr.record_span("cpu", "", "cpu-update", "update", 0.0, 2.0, 0.0);
        tr.instant_at("cpu", "marker", "update", 0.5);
        let tl = tr.to_timeline();
        assert_eq!(tl.spans().len(), 2);
        assert_eq!(tl.for_resource("pcie.h2d").count(), 1);
        assert_eq!(tl.for_resource("cpu").count(), 1);
    }

    #[test]
    fn instants_are_zero_duration() {
        let tr = Tracer::new();
        tr.instant("tick", "forward");
        let evs = tr.events();
        assert_eq!(evs[0].kind, EventKind::Instant);
        assert_eq!(evs[0].dur, 0.0);
    }

    #[test]
    fn phase_boundaries_round_trip_ordered() {
        let tr = Tracer::new();
        tr.phase_boundary("update", 10.0, 14.0);
        tr.phase_boundary("forward", 0.0, 4.0);
        tr.phase_boundary("backward", 4.0, 10.0);
        let bs = tr.phase_boundaries();
        assert_eq!(bs.len(), 3);
        assert_eq!(bs[0], PhaseBoundary { phase: "forward".into(), start: 0.0, end: 4.0 });
        assert_eq!(bs[1].phase, "backward");
        assert_eq!(bs[2], PhaseBoundary { phase: "update".into(), start: 10.0, end: 14.0 });
    }

    #[test]
    fn repeated_boundaries_widen_and_incomplete_pairs_are_skipped() {
        let tr = Tracer::new();
        tr.phase_boundary("update", 5.0, 8.0);
        tr.phase_boundary("update", 4.0, 9.0);
        tr.instant_at(PHASE_TRACK, "phase-begin:orphan", "orphan", 1.0);
        // Unrelated instants on other tracks are ignored.
        tr.instant_at("cpu", "phase-begin:bogus", "update", 0.0);
        let bs = tr.phase_boundaries();
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0], PhaseBoundary { phase: "update".into(), start: 4.0, end: 9.0 });
    }

    #[test]
    fn control_instants_filter_their_track() {
        let tr = Tracer::new();
        tr.control_decision("retune:k=3", 1.5);
        tr.control_decision("ladder:dos->residents-only", 2.0);
        tr.instant_at("cpu", "control:bogus", "update", 0.5);
        tr.instant_at(CONTROL_TRACK, "unrelated", "control", 0.7);
        let evs = tr.control_instants();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "control:retune:k=3");
        assert_eq!(evs[0].start, 1.5);
        assert_eq!(evs[1].name, "control:ladder:dos->residents-only");
    }

    #[test]
    fn metrics_ride_along() {
        let tr = Tracer::new();
        tr.metrics().inc_counter("spans", 1);
        assert_eq!(tr.clone().metrics().counter("spans"), 1);
    }

    #[test]
    fn with_flight_mirrors_events_into_the_ring() {
        let tr = Tracer::with_flight(8);
        tr.record_span("cpu", "", "update:sg0", "update", 0.0, 1.0, 0.0);
        tr.instant_at("cpu", "tick", "update", 1.5);
        let flight = tr.flight().expect("flight attached");
        assert_eq!(flight.len(), 2);
        assert_eq!(tr.len(), 2, "full store still records");
        let ring = flight.events();
        assert_eq!(ring[0].name, "update:sg0");
        assert_eq!(ring[1].name, "tick");
    }

    #[test]
    fn flight_only_keeps_the_ring_but_not_the_store() {
        let tr = Tracer::flight_only(4);
        for i in 0..10 {
            tr.record_span("cpu", "", &format!("s{i}"), "update", i as f64, i as f64 + 0.5, 0.0);
        }
        assert!(tr.is_empty(), "flight-only mode stores no events");
        assert!(tr.events().is_empty());
        let flight = tr.flight().expect("flight attached");
        assert_eq!(flight.len(), 4);
        assert_eq!(flight.total_recorded(), 10);
        let names: Vec<String> = flight.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"], "newest N in order");
    }

    #[test]
    fn fault_instants_trigger_an_automatic_flight_dump() {
        let tr = Tracer::with_flight(16);
        tr.record_span("cpu", "", "update:sg0", "update", 0.0, 1.0, 0.0);
        assert!(tr.flight().and_then(FlightRecorder::last_dump).is_none());
        tr.instant_at("faults", "fault:pcie.h2d", "fault", 1.2);
        let dump = tr.flight().and_then(FlightRecorder::last_dump).expect("auto dump");
        assert_eq!(dump.reason, "fault:pcie.h2d");
        assert!(dump.events.iter().any(|e| e.name == "fault:pcie.h2d"));
        assert!(dump.events.iter().any(|e| e.name == "update:sg0"), "context rides along");
        tr.instant_at("health", "health:degraded", "health", 2.0);
        let dump = tr.flight().and_then(FlightRecorder::last_dump).expect("second dump");
        assert_eq!(dump.reason, "health:degraded");
    }
}
