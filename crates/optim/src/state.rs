//! Mixed-precision optimizer state over a flat parameter space.
//!
//! [`MixedPrecisionState`] is the host-side FP32 optimizer state of §2:
//! master parameters `p`, momentum `m`, and variance `v`, updated from
//! (upscaled) gradients, then downscaled to FP16 for the device copy. The
//! `update_range` method is the primitive that subgroup schedulers
//! (`dos-zero` partitioning + `dos-core` interleaving) drive: it updates any
//! contiguous element range independently of the others.

use serde::{Deserialize, Serialize};

use dos_tensor::convert::downscale_f32_chunked;
use dos_tensor::F16;

use crate::rule::UpdateRule;

/// FP32 master optimizer state (parameters, momentum, variance) with
/// range-wise updates and FP16 downscaling.
///
/// # Examples
///
/// ```
/// use dos_optim::{MixedPrecisionState, UpdateRule};
///
/// let mut state = MixedPrecisionState::new(vec![1.0, 2.0, 3.0, 4.0], UpdateRule::adam(), 0.1);
/// let grads = vec![0.5, -0.5, 0.25, 0.0];
/// state.begin_step();
/// state.update_range(0..2, &grads[0..2]);
/// state.update_range(2..4, &grads[2..4]);
/// let fp16 = state.downscale_range(0..4);
/// assert_eq!(fp16.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPrecisionState {
    p: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    rule: UpdateRule,
    lr: f32,
    step: u64,
}

impl MixedPrecisionState {
    /// Creates state from initial FP32 master parameters.
    pub fn new(params: Vec<f32>, rule: UpdateRule, lr: f32) -> MixedPrecisionState {
        let n = params.len();
        MixedPrecisionState { p: params, m: vec![0.0; n], v: vec![0.0; n], rule, lr, step: 0 }
    }

    /// Reassembles state from its raw buffers — the inverse of the
    /// `params()`/`momentum()`/`variance()`/`step_count()` accessors. Used
    /// by elastic data-parallel resume, which re-shards a gathered
    /// full-space checkpoint across a different world size.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `v` length differs from `p`.
    pub fn from_parts(
        p: Vec<f32>,
        m: Vec<f32>,
        v: Vec<f32>,
        rule: UpdateRule,
        lr: f32,
        step: u64,
    ) -> MixedPrecisionState {
        assert_eq!(m.len(), p.len(), "momentum length mismatch");
        assert_eq!(v.len(), p.len(), "variance length mismatch");
        MixedPrecisionState { p, m, v, rule, lr, step }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The master parameters.
    pub fn params(&self) -> &[f32] {
        &self.p
    }

    /// The first-moment buffer.
    pub fn momentum(&self) -> &[f32] {
        &self.m
    }

    /// The second-moment buffer.
    pub fn variance(&self) -> &[f32] {
        &self.v
    }

    /// The completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (schedulers).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Begins a new optimizer step: increments the step counter that Adam's
    /// bias correction uses. Every element range must then be updated
    /// exactly once (in any order, on any device) before the next
    /// `begin_step`.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Updates the contiguous element range `range` with its gradients.
    ///
    /// Embarrassingly parallel across ranges: disjoint ranges may be updated
    /// in any order or concurrently and produce identical results
    /// (see the permutation proptests).
    ///
    /// # Panics
    ///
    /// Panics if `begin_step` has not been called, the range is out of
    /// bounds, or `grads.len()` differs from the range length.
    pub fn update_range(&mut self, range: std::ops::Range<usize>, grads: &[f32]) {
        assert!(self.step > 0, "update_range before begin_step");
        assert!(range.end <= self.p.len(), "range out of bounds");
        assert_eq!(grads.len(), range.len(), "gradient length mismatch");
        self.rule.apply(
            self.step,
            self.lr,
            &mut self.p[range.clone()],
            grads,
            &mut self.m[range.clone()],
            &mut self.v[range],
        );
    }

    /// Performs a whole step over all elements (the monolithic baseline the
    /// sharded paths are verified against).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.len()`.
    pub fn full_step(&mut self, grads: &[f32]) {
        self.begin_step();
        self.update_range(0..self.p.len(), grads);
    }

    /// Downscales a range of master parameters to FP16 (the `D_c` operation
    /// of the performance model).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn downscale_range(&self, range: std::ops::Range<usize>) -> Vec<F16> {
        assert!(range.end <= self.p.len(), "range out of bounds");
        let src = &self.p[range];
        let mut out = vec![F16::ZERO; src.len()];
        downscale_f32_chunked(src, &mut out, 0).expect("lengths match by construction");
        out
    }

    /// Borrows `(p, m, v)` slices of a range — what gets staged to the GPU
    /// when a subgroup is scheduled there (Algorithm 1's prefetch).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn snapshot_range(&self, range: std::ops::Range<usize>) -> (&[f32], &[f32], &[f32]) {
        assert!(range.end <= self.p.len(), "range out of bounds");
        (&self.p[range.clone()], &self.m[range.clone()], &self.v[range])
    }

    /// Writes back `(p, m, v)` for a range — Algorithm 1's flush-out after a
    /// GPU-side update.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the range.
    pub fn write_back_range(
        &mut self,
        range: std::ops::Range<usize>,
        p: &[f32],
        m: &[f32],
        v: &[f32],
    ) {
        assert!(range.end <= self.p.len(), "range out of bounds");
        assert_eq!(p.len(), range.len(), "p length mismatch");
        assert_eq!(m.len(), range.len(), "m length mismatch");
        assert_eq!(v.len(), range.len(), "v length mismatch");
        self.p[range.clone()].copy_from_slice(p);
        self.m[range.clone()].copy_from_slice(m);
        self.v[range].copy_from_slice(v);
    }

    /// The update rule.
    pub fn rule(&self) -> UpdateRule {
        self.rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 + 11) % 17) as f32 / 17.0 - 0.5).collect()
    }

    #[test]
    fn sharded_equals_monolithic() {
        let init: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let g = grads(100);
        let mut mono = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
        mono.full_step(&g);

        let mut sharded = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        sharded.begin_step();
        // Update in a scrambled subgroup order.
        for &(a, b) in &[(60, 100), (0, 30), (30, 60)] {
            sharded.update_range(a..b, &g[a..b]);
        }
        assert_eq!(mono.params(), sharded.params());
        assert_eq!(mono.momentum(), sharded.momentum());
        assert_eq!(mono.variance(), sharded.variance());
    }

    #[test]
    fn from_parts_round_trips_through_accessors() {
        let mut s = MixedPrecisionState::new(vec![1.0, 2.0, 3.0], UpdateRule::adam(), 0.05);
        s.full_step(&grads(3));
        let rebuilt = MixedPrecisionState::from_parts(
            s.params().to_vec(),
            s.momentum().to_vec(),
            s.variance().to_vec(),
            s.rule(),
            s.lr(),
            s.step_count(),
        );
        assert_eq!(rebuilt, s);
        // And it keeps stepping identically.
        let mut a = s.clone();
        let mut b = rebuilt;
        a.full_step(&grads(3));
        b.full_step(&grads(3));
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_steps_track_step_count() {
        let mut s = MixedPrecisionState::new(vec![1.0; 4], UpdateRule::adam(), 0.1);
        assert_eq!(s.step_count(), 0);
        s.full_step(&[0.1; 4]);
        s.full_step(&[0.1; 4]);
        assert_eq!(s.step_count(), 2);
    }

    #[test]
    fn snapshot_and_write_back_round_trip() {
        let mut s = MixedPrecisionState::new(vec![1.0, 2.0, 3.0], UpdateRule::adam(), 0.1);
        s.full_step(&[0.5, 0.5, 0.5]);
        let (p, m, v) = s.snapshot_range(1..3);
        let (p, m, v) = (p.to_vec(), m.to_vec(), v.to_vec());
        let before = s.params().to_vec();
        s.write_back_range(1..3, &p, &m, &v);
        assert_eq!(s.params(), &before[..]);
    }

    #[test]
    fn downscale_matches_f16_rounding() {
        let s = MixedPrecisionState::new(vec![0.1, 1.0, -2.5], UpdateRule::adam(), 0.1);
        let half = s.downscale_range(0..3);
        assert_eq!(half[1].to_f32(), 1.0);
        assert_eq!(half[2].to_f32(), -2.5);
        assert!((half[0].to_f32() - 0.1).abs() < 1e-4);
    }

    #[test]
    fn lr_is_adjustable() {
        let mut s = MixedPrecisionState::new(vec![1.0], UpdateRule::adam(), 0.1);
        s.set_lr(0.5);
        assert_eq!(s.lr(), 0.5);
    }

    #[test]
    #[should_panic(expected = "before begin_step")]
    fn update_requires_begin_step() {
        let mut s = MixedPrecisionState::new(vec![1.0], UpdateRule::adam(), 0.1);
        s.update_range(0..1, &[0.1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_bounds_checked() {
        let mut s = MixedPrecisionState::new(vec![1.0], UpdateRule::adam(), 0.1);
        s.begin_step();
        s.update_range(0..2, &[0.1, 0.2]);
    }
}
