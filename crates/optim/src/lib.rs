//! # dos-optim — adaptive optimizers with mixed-precision, range-sharded state
//!
//! Optimizer substrate of the *Deep Optimizer States* reproduction. Three
//! things the paper depends on live here:
//!
//! * [`UpdateRule`] — Adam/AdamW/Adagrad/RMSProp as *element-wise* rules,
//!   which is the property (§4.1) that lets subgroups be updated in any
//!   order on any device without changing results;
//! * [`MixedPrecisionState`] — the host-resident FP32 master state
//!   (parameters, momentum, variance) with `update_range`,
//!   `snapshot_range`/`write_back_range` (Algorithm 1's prefetch/flush), and
//!   FP16 downscaling (`D_c` in the performance model);
//! * [`ModelOptimizer`] — the functional driver that trains real `dos-nn`
//!   models, with configurable gradient-precision paths mirroring Figure 6.
//!
//! The element-wise loops themselves live in [`kernels`]: chunked,
//! autovectorizable implementations (`U_c` in the performance model) that
//! are bit-identical to the retained scalar oracle
//! ([`UpdateRule::apply_reference`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels;
mod loss_scale;
mod model_opt;
mod rule;
mod schedule;
mod state;

pub use loss_scale::DynamicLossScaler;
pub use model_opt::{GradPrecision, ModelOptimizer};
pub use rule::UpdateRule;
pub use schedule::{clip_grad_norm, LrSchedule};
pub use state::MixedPrecisionState;
