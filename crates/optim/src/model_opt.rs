//! Model-facing optimizer driver for the functional training path.

use serde::{Deserialize, Serialize};

use dos_nn::VisitParams;
use dos_tensor::kernels::round_through_f16;

use crate::rule::UpdateRule;
use crate::state::MixedPrecisionState;

/// How gradients travel from the model to the FP32 optimizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradPrecision {
    /// Keep gradients in FP32 end to end (the paper's optimized path: the
    /// FP16→FP32 upscale happens *before* the flush, so the optimizer sees
    /// full-precision values rounded only once by the FP16 backward).
    Fp32,
    /// Round gradients through FP16 before the optimizer consumes them —
    /// the conventional mixed-precision flush (FP16 gradients staged to the
    /// host and upscaled there).
    Fp16Flush,
}

/// Drives a [`MixedPrecisionState`] against any [`VisitParams`] model:
/// gathers gradients, steps the FP32 master state, and writes parameters
/// back (optionally rounding the "device copy" to FP16 as real
/// mixed-precision training does).
///
/// # Examples
///
/// ```
/// use dos_nn::{Gpt, GptConfig, VisitParams};
/// use dos_optim::{GradPrecision, ModelOptimizer, UpdateRule};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Gpt::new(GptConfig::tiny(), &mut rng);
/// let mut opt = ModelOptimizer::new(&mut model, UpdateRule::adam(), 1e-2, GradPrecision::Fp32, false);
/// let loss0 = model.loss_and_backward(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
/// opt.step(&mut model);
/// let loss1 = model.loss_only(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
/// assert!(loss1 < loss0);
/// ```
#[derive(Debug, Clone)]
pub struct ModelOptimizer {
    state: MixedPrecisionState,
    grad_precision: GradPrecision,
    fp16_device_params: bool,
}

impl ModelOptimizer {
    /// Creates an optimizer whose FP32 master copy is initialized from the
    /// model's current parameters.
    ///
    /// `fp16_device_params` rounds the parameters written back to the model
    /// through FP16, emulating the FP16 device copy of mixed-precision
    /// training (the FP32 masters stay exact inside the optimizer).
    pub fn new(
        model: &mut impl VisitParams,
        rule: UpdateRule,
        lr: f32,
        grad_precision: GradPrecision,
        fp16_device_params: bool,
    ) -> ModelOptimizer {
        let params = model.gather_params();
        ModelOptimizer {
            state: MixedPrecisionState::new(params, rule, lr),
            grad_precision,
            fp16_device_params,
        }
    }

    /// The underlying FP32 state.
    pub fn state(&self) -> &MixedPrecisionState {
        &self.state
    }

    /// Mutable access to the underlying FP32 state (subgroup schedulers).
    pub fn state_mut(&mut self) -> &mut MixedPrecisionState {
        &mut self.state
    }

    /// Gathers the model's gradients with the configured precision path.
    pub fn gather_grads(&self, model: &mut impl VisitParams) -> Vec<f32> {
        let mut grads = model.gather_grads();
        if self.grad_precision == GradPrecision::Fp16Flush {
            round_through_f16(&mut grads);
        }
        grads
    }

    /// One full optimizer step: gather grads → update masters → write
    /// parameters back to the model → zero grads.
    pub fn step(&mut self, model: &mut impl VisitParams) {
        let grads = self.gather_grads(model);
        self.state.full_step(&grads);
        self.write_back(model);
        model.zero_grads();
    }

    /// Writes the master parameters back into the model, applying the
    /// FP16-device rounding if configured. Exposed separately so subgroup
    /// schedulers can update the state out-of-order first.
    pub fn write_back(&self, model: &mut impl VisitParams) {
        if self.fp16_device_params {
            let mut rounded = self.state.params().to_vec();
            round_through_f16(&mut rounded);
            model.scatter_params(&rounded);
        } else {
            model.scatter_params(self.state.params());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_nn::{Gpt, GptConfig};
    use dos_tensor::F16;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Gpt {
        let mut rng = StdRng::seed_from_u64(seed);
        Gpt::new(GptConfig::tiny(), &mut rng)
    }

    #[test]
    fn training_reduces_loss_over_iterations() {
        let mut m = model(0);
        let mut opt =
            ModelOptimizer::new(&mut m, UpdateRule::adam(), 5e-3, GradPrecision::Fp32, false);
        let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let targets = [1usize, 4, 1, 5, 9, 2, 6, 5];
        let first = m.loss_and_backward(&tokens, &targets, 2, 4);
        opt.step(&mut m);
        let mut last = first;
        for _ in 0..10 {
            last = m.loss_and_backward(&tokens, &targets, 2, 4);
            opt.step(&mut m);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn fp16_flush_changes_but_tracks_fp32_path() {
        let mut m1 = model(1);
        let mut m2 = model(1);
        let mut o1 =
            ModelOptimizer::new(&mut m1, UpdateRule::adam(), 1e-2, GradPrecision::Fp32, false);
        let mut o2 =
            ModelOptimizer::new(&mut m2, UpdateRule::adam(), 1e-2, GradPrecision::Fp16Flush, false);
        let tokens = [1usize, 2, 3, 4];
        let targets = [2usize, 3, 4, 5];
        m1.loss_and_backward(&tokens, &targets, 1, 4);
        m2.loss_and_backward(&tokens, &targets, 1, 4);
        o1.step(&mut m1);
        o2.step(&mut m2);
        let p1 = o1.state().params();
        let p2 = o2.state().params();
        assert_ne!(p1, p2, "fp16 rounding should perturb something");
        let max_diff = p1
            .iter()
            .zip(p2.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-2, "fp16 flush diverged: {max_diff}");
    }

    #[test]
    fn fp16_device_params_round_model_copy() {
        let mut m = model(2);
        let opt =
            ModelOptimizer::new(&mut m, UpdateRule::adam(), 1e-2, GradPrecision::Fp32, true);
        opt.write_back(&mut m);
        for p in m.gather_params() {
            assert_eq!(p, F16::from_f32(p).to_f32(), "param {p} not f16-representable");
        }
    }

    #[test]
    fn zero_grads_after_step() {
        let mut m = model(3);
        let mut opt =
            ModelOptimizer::new(&mut m, UpdateRule::adam(), 1e-2, GradPrecision::Fp32, false);
        m.loss_and_backward(&[1, 2, 3, 4], &[2, 3, 4, 5], 1, 4);
        opt.step(&mut m);
        assert!(m.gather_grads().iter().all(|&g| g == 0.0));
    }
}
