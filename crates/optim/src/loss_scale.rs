//! Loss scaling for FP16 mixed-precision training.
//!
//! FP16 gradients underflow below 2⁻²⁴ (§2's mixed-precision background);
//! production recipes multiply the loss by a scale factor before backward
//! and divide the gradients by it before the optimizer consumes them.
//! [`DynamicLossScaler`] implements the standard dynamic scheme: halve the
//! scale on overflow (non-finite gradients), double it after a window of
//! clean steps.

use serde::{Deserialize, Serialize};

/// Dynamic loss scaler with overflow back-off and periodic growth.
///
/// # Examples
///
/// ```
/// use dos_optim::DynamicLossScaler;
/// let mut scaler = DynamicLossScaler::new(1024.0);
/// let mut grads = vec![0.5, -0.25];
/// for g in grads.iter_mut() { *g *= scaler.scale(); } // backward with scaled loss
/// assert!(scaler.unscale_check(&mut grads));           // safe to step
/// assert_eq!(grads, vec![0.5, -0.25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicLossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    clean_steps: u32,
    overflows: u64,
}

impl DynamicLossScaler {
    /// Creates a scaler with the given initial scale and the conventional
    /// dynamics (grow 2× every 2000 clean steps, halve on overflow).
    ///
    /// # Panics
    ///
    /// Panics if `initial_scale` is not positive and finite.
    pub fn new(initial_scale: f32) -> DynamicLossScaler {
        assert!(
            initial_scale.is_finite() && initial_scale > 0.0,
            "initial scale must be positive"
        );
        DynamicLossScaler {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            clean_steps: 0,
            overflows: 0,
        }
    }

    /// A scaler that grows every `interval` clean steps (tests, small runs).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_growth_interval(mut self, interval: u32) -> DynamicLossScaler {
        assert!(interval > 0, "growth interval must be positive");
        self.growth_interval = interval;
        self
    }

    /// The current scale to multiply the loss (or gradients) by.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Overflow events observed so far.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Unscales `grads` in place and updates the scale dynamics.
    ///
    /// Returns `true` if the gradients are finite and the optimizer step
    /// should proceed; `false` if an overflow was detected — the gradients
    /// are zeroed, the step must be skipped, and the scale has been reduced.
    pub fn unscale_check(&mut self, grads: &mut [f32]) -> bool {
        let inv = 1.0 / self.scale;
        let mut overflow = false;
        for g in grads.iter_mut() {
            if !g.is_finite() {
                overflow = true;
                break;
            }
            *g *= inv;
        }
        if overflow {
            grads.fill(0.0);
            self.scale = (self.scale * self.backoff_factor).max(1.0);
            self.clean_steps = 0;
            self.overflows += 1;
            false
        } else {
            self.clean_steps += 1;
            if self.clean_steps >= self.growth_interval {
                self.scale = (self.scale * self.growth_factor).min(f32::MAX / 4.0);
                self.clean_steps = 0;
            }
            true
        }
    }
}

impl Default for DynamicLossScaler {
    fn default() -> Self {
        DynamicLossScaler::new(65536.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_steps_unscale_exactly() {
        let mut s = DynamicLossScaler::new(8.0);
        let mut g = vec![8.0f32, -16.0, 0.0];
        assert!(s.unscale_check(&mut g));
        assert_eq!(g, vec![1.0, -2.0, 0.0]);
        assert_eq!(s.overflow_count(), 0);
    }

    #[test]
    fn overflow_backs_off_and_skips() {
        let mut s = DynamicLossScaler::new(1024.0);
        let mut g = vec![1.0f32, f32::INFINITY];
        assert!(!s.unscale_check(&mut g));
        assert_eq!(g, vec![0.0, 0.0], "gradients zeroed so a step is a no-op");
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.overflow_count(), 1);
        let mut g = vec![f32::NAN];
        assert!(!s.unscale_check(&mut g));
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn growth_after_clean_window() {
        let mut s = DynamicLossScaler::new(4.0).with_growth_interval(3);
        for _ in 0..2 {
            assert!(s.unscale_check(&mut [1.0, 2.0]));
            assert_eq!(s.scale(), 4.0);
        }
        assert!(s.unscale_check(&mut [1.0]));
        assert_eq!(s.scale(), 8.0, "third clean step doubles");
        // Overflow resets the clean-step counter.
        assert!(s.unscale_check(&mut [1.0]));
        assert!(s.unscale_check(&mut [1.0]));
        assert!(!s.unscale_check(&mut [f32::INFINITY]));
        assert_eq!(s.scale(), 4.0);
        assert!(s.unscale_check(&mut [1.0]));
        assert_eq!(s.scale(), 4.0, "counter restarted after overflow");
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut s = DynamicLossScaler::new(2.0);
        for _ in 0..10 {
            let _ = s.unscale_check(&mut [f32::NAN]);
        }
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn scaling_rescues_tiny_fp16_gradients() {
        use dos_tensor::F16;
        // A gradient below the FP16 subnormal floor vanishes unscaled...
        let tiny = 1e-8f32;
        assert_eq!(F16::from_f32(tiny).to_f32(), 0.0);
        // ...but survives the round trip once scaled by 2^16.
        let mut s = DynamicLossScaler::new(65536.0);
        let scaled = F16::from_f32(tiny * s.scale()).to_f32();
        let mut g = vec![scaled];
        assert!(s.unscale_check(&mut g));
        assert!((g[0] - tiny).abs() / tiny < 0.01, "recovered {} vs {tiny}", g[0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_initial_scale() {
        let _ = DynamicLossScaler::new(0.0);
    }
}
