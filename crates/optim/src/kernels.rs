//! Chunked, autovectorizable optimizer update kernels.
//!
//! The rules in [`crate::UpdateRule`] are element-wise, so the per-element
//! arithmetic can be restructured freely *between* elements without
//! changing a single bit — as long as the expression applied to each
//! element stays identical (every division stays a division, every
//! operand order is preserved; IEEE-754 `add`/`mul`/`div`/`sqrt` are
//! exactly rounded, scalar or SIMD). The kernels here walk the four state
//! slices in lock-step chunks with all bounds checks hoisted, which is the
//! shape LLVM's loop vectorizer turns into packed `sqrt`/`div` lanes.
//!
//! [`apply_reference`] keeps the original scalar loops as the oracle;
//! bit-identity is enforced by the unit tests here, the `kernels` arm of
//! the conformance harness (`dos-oracle`), and proptests across rules ×
//! stride policies × non-lane-multiple subgroup sizes.

use crate::rule::UpdateRule;

/// Elements per chunk: large enough to amortize loop setup, small enough
/// that `p/g/m/v` chunks stay cache-resident together.
pub const CHUNK: usize = 1024;

fn check_lengths(step: u64, p: &[f32], g: &[f32], m: &[f32], v: &[f32]) {
    assert!(step > 0, "step is 1-based");
    let n = p.len();
    assert_eq!(g.len(), n, "gradient length mismatch");
    assert_eq!(m.len(), n, "momentum length mismatch");
    assert_eq!(v.len(), n, "variance length mismatch");
}

#[allow(clippy::too_many_arguments)]
fn adam_chunk(
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    bc1: f32,
    bc2: f32,
    lr: f32,
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
) {
    for (((pi, &gi), mi), vi) in p.iter_mut().zip(g).zip(m.iter_mut()).zip(v.iter_mut()) {
        let mn = beta1 * *mi + (1.0 - beta1) * gi;
        let vn = beta2 * *vi + (1.0 - beta2) * gi * gi;
        *mi = mn;
        *vi = vn;
        let mhat = mn / bc1;
        let vhat = vn / bc2;
        *pi -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * *pi);
    }
}

fn adagrad_chunk(eps: f32, lr: f32, p: &mut [f32], g: &[f32], v: &mut [f32]) {
    for ((pi, &gi), vi) in p.iter_mut().zip(g).zip(v.iter_mut()) {
        let vn = *vi + gi * gi;
        *vi = vn;
        *pi -= lr * gi / (vn.sqrt() + eps);
    }
}

fn rmsprop_chunk(alpha: f32, eps: f32, lr: f32, p: &mut [f32], g: &[f32], v: &mut [f32]) {
    for ((pi, &gi), vi) in p.iter_mut().zip(g).zip(v.iter_mut()) {
        let vn = alpha * *vi + (1.0 - alpha) * gi * gi;
        *vi = vn;
        *pi -= lr * gi / (vn.sqrt() + eps);
    }
}

/// Applies `rule` to the element range, chunked and autovectorizable.
/// Bit-identical to [`apply_reference`] for every input.
///
/// # Panics
///
/// Panics if slice lengths differ or `step == 0`.
pub fn apply(
    rule: &UpdateRule,
    step: u64,
    lr: f32,
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
) {
    check_lengths(step, p, g, m, v);
    match *rule {
        UpdateRule::Adam { beta1, beta2, eps, weight_decay } => {
            let bc1 = 1.0 - beta1.powi(step as i32);
            let bc2 = 1.0 - beta2.powi(step as i32);
            for (((pc, gc), mc), vc) in p
                .chunks_mut(CHUNK)
                .zip(g.chunks(CHUNK))
                .zip(m.chunks_mut(CHUNK))
                .zip(v.chunks_mut(CHUNK))
            {
                adam_chunk(beta1, beta2, eps, weight_decay, bc1, bc2, lr, pc, gc, mc, vc);
            }
        }
        UpdateRule::Adagrad { eps } => {
            for ((pc, gc), vc) in
                p.chunks_mut(CHUNK).zip(g.chunks(CHUNK)).zip(v.chunks_mut(CHUNK))
            {
                adagrad_chunk(eps, lr, pc, gc, vc);
            }
        }
        UpdateRule::RmsProp { alpha, eps } => {
            for ((pc, gc), vc) in
                p.chunks_mut(CHUNK).zip(g.chunks(CHUNK)).zip(v.chunks_mut(CHUNK))
            {
                rmsprop_chunk(alpha, eps, lr, pc, gc, vc);
            }
        }
    }
}

/// The original scalar loops, retained verbatim as the bit-exactness
/// oracle for [`apply`].
///
/// # Panics
///
/// Panics if slice lengths differ or `step == 0`.
pub fn apply_reference(
    rule: &UpdateRule,
    step: u64,
    lr: f32,
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
) {
    check_lengths(step, p, g, m, v);
    let n = p.len();
    match *rule {
        UpdateRule::Adam { beta1, beta2, eps, weight_decay } => {
            let bc1 = 1.0 - beta1.powi(step as i32);
            let bc2 = 1.0 - beta2.powi(step as i32);
            for i in 0..n {
                m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * p[i]);
            }
        }
        UpdateRule::Adagrad { eps } => {
            for i in 0..n {
                v[i] += g[i] * g[i];
                p[i] -= lr * g[i] / (v[i].sqrt() + eps);
            }
        }
        UpdateRule::RmsProp { alpha, eps } => {
            for i in 0..n {
                v[i] = alpha * v[i] + (1.0 - alpha) * g[i] * g[i];
                p[i] -= lr * g[i] / (v[i].sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rules() -> [UpdateRule; 4] {
        [UpdateRule::adam(), UpdateRule::adamw(0.013), UpdateRule::adagrad(), UpdateRule::rmsprop()]
    }

    fn synth(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                (x % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn vectorized_matches_reference_across_rules_steps_and_tails() {
        // Sizes straddling the chunk boundary and SIMD lane widths
        // (including the non-multiple-of-lane-width tails).
        for n in [0usize, 1, 3, 7, 15, 16, 17, 255, 256, 257, 1023, 1024, 1025, 4097] {
            for rule in rules() {
                let mut pa = synth(n, 1);
                let mut ma = synth(n, 2);
                let mut va: Vec<f32> = synth(n, 3).iter().map(|x| x.abs()).collect();
                let (mut pb, mut mb, mut vb) = (pa.clone(), ma.clone(), va.clone());
                for step in 1..=3u64 {
                    let g = synth(n, 4 + step as u32);
                    apply(&rule, step, 0.017, &mut pa, &g, &mut ma, &mut va);
                    apply_reference(&rule, step, 0.017, &mut pb, &g, &mut mb, &mut vb);
                }
                let bits = |s: &[f32]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&pa), bits(&pb), "params diverged: {rule:?} n={n}");
                assert_eq!(bits(&ma), bits(&mb), "momentum diverged: {rule:?} n={n}");
                assert_eq!(bits(&va), bits(&vb), "variance diverged: {rule:?} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_rejected() {
        apply(&UpdateRule::adam(), 0, 0.1, &mut [0.0], &[0.0], &mut [0.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        apply(&UpdateRule::adam(), 1, 0.1, &mut [0.0, 1.0], &[0.0], &mut [0.0; 2], &mut [0.0; 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_inputs_stay_bit_identical(
            n in 1usize..600,
            seed in 0u32..1_000_000,
            ridx in 0usize..4,
            step in 1u64..5,
        ) {
            let rule = rules()[ridx];
            let mut pa = synth(n, seed);
            let g = synth(n, seed ^ 0xABCD);
            let mut ma = synth(n, seed ^ 0x1111);
            let mut va: Vec<f32> = synth(n, seed ^ 0x2222).iter().map(|x| x.abs()).collect();
            let (mut pb, mut mb, mut vb) = (pa.clone(), ma.clone(), va.clone());
            apply(&rule, step, 0.005, &mut pa, &g, &mut ma, &mut va);
            apply_reference(&rule, step, 0.005, &mut pb, &g, &mut mb, &mut vb);
            prop_assert!(pa.iter().zip(&pb).all(|(a, b)| a.to_bits() == b.to_bits()));
            prop_assert!(ma.iter().zip(&mb).all(|(a, b)| a.to_bits() == b.to_bits()));
            prop_assert!(va.iter().zip(&vb).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
