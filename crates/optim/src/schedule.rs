//! Learning-rate schedules and gradient clipping.
//!
//! Standard LLM-training auxiliaries (the paper trains with the usual
//! Megatron/DeepSpeed recipe): linear warmup into cosine decay, and global
//! gradient-norm clipping. Both are pure functions of the step/gradients,
//! so they compose with any update scheduling.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LrSchedule {
    /// A constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `peak` over `warmup_steps`, then cosine
    /// decay to `peak * min_factor` at `total_steps` (and held there).
    WarmupCosine {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Warmup length in steps.
        warmup_steps: u64,
        /// Total schedule length in steps.
        total_steps: u64,
        /// Final rate as a fraction of `peak`.
        min_factor: f32,
    },
    /// Linear warmup then linear decay to zero at `total_steps`.
    WarmupLinear {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Warmup length in steps.
        warmup_steps: u64,
        /// Total schedule length in steps.
        total_steps: u64,
    },
}

impl LrSchedule {
    /// The learning rate at 1-based step `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn lr_at(&self, step: u64) -> f32 {
        assert!(step > 0, "step is 1-based");
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::WarmupCosine { peak, warmup_steps, total_steps, min_factor } => {
                if step <= warmup_steps {
                    peak * step as f32 / warmup_steps.max(1) as f32
                } else if step >= total_steps {
                    peak * min_factor
                } else {
                    let progress = (step - warmup_steps) as f32
                        / (total_steps - warmup_steps).max(1) as f32;
                    let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                    peak * (min_factor + (1.0 - min_factor) * cosine)
                }
            }
            LrSchedule::WarmupLinear { peak, warmup_steps, total_steps } => {
                if step <= warmup_steps {
                    peak * step as f32 / warmup_steps.max(1) as f32
                } else if step >= total_steps {
                    0.0
                } else {
                    let progress = (step - warmup_steps) as f32
                        / (total_steps - warmup_steps).max(1) as f32;
                    peak * (1.0 - progress)
                }
            }
        }
    }
}

/// Scales `grads` in place so their global L2 norm is at most `max_norm`;
/// returns the pre-clipping norm. The norm is computed in `f64` and the
/// scale applied uniformly, matching `torch.nn.utils.clip_grad_norm_`.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grads.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>().sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(1), 0.1);
        assert_eq!(s.lr_at(1_000_000), 0.1);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            warmup_steps: 10,
            total_steps: 110,
            min_factor: 0.1,
        };
        // Linear warmup.
        assert!((s.lr_at(5) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(10) - 1.0).abs() < 1e-6);
        // Midpoint of cosine: halfway between peak and floor.
        assert!((s.lr_at(60) - 0.55).abs() < 1e-2);
        // Floor at and beyond the end.
        assert!((s.lr_at(110) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(500) - 0.1).abs() < 1e-6);
        // Monotone decay after warmup.
        let decays: Vec<f32> = (10..=110).map(|t| s.lr_at(t)).collect();
        assert!(decays.windows(2).all(|w| w[1] <= w[0] + 1e-7));
    }

    #[test]
    fn warmup_linear_reaches_zero() {
        let s = LrSchedule::WarmupLinear { peak: 2.0, warmup_steps: 4, total_steps: 8 };
        assert!((s.lr_at(2) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(4) - 2.0).abs() < 1e-6);
        assert!((s.lr_at(6) - 1.0).abs() < 1e-6);
        assert_eq!(s.lr_at(8), 0.0);
        assert_eq!(s.lr_at(9), 0.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_rejected() {
        let _ = LrSchedule::Constant { lr: 0.1 }.lr_at(0);
    }

    #[test]
    fn clipping_scales_only_when_needed() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_grad_norm(&mut g, 10.0);
        assert_eq!(norm, 5.0);
        assert_eq!(g, vec![3.0, 4.0]); // untouched below the limit

        let norm = clip_grad_norm(&mut g, 1.0);
        assert_eq!(norm, 5.0);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-6);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6, "direction preserved");
    }

    #[test]
    fn clipping_handles_zero_gradients() {
        let mut g = vec![0.0f32; 8];
        assert_eq!(clip_grad_norm(&mut g, 1.0), 0.0);
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_max_norm_rejected() {
        clip_grad_norm(&mut [1.0], 0.0);
    }
}
