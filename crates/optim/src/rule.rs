//! Element-wise adaptive update rules.
//!
//! The paper's scheduling freedom comes from one property (§4.1): adaptive
//! learning-rate optimizers — Adam, Adagrad, RMSProp — are *embarrassingly
//! parallel across elements*, so optimizer subgroups can be updated in any
//! order, on any device, without synchronization or accuracy impact. Every
//! rule here is a pure function of `(p[i], g[i], m[i], v[i], step)`, which is
//! what makes the subgroup-permutation invariance tests in this crate (and
//! the interleaved pipeline in `dos-core`) possible.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of an element-wise update rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum UpdateRule {
    /// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW).
    Adam {
        /// First-moment decay (default 0.9).
        beta1: f32,
        /// Second-moment decay (default 0.999).
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Decoupled weight decay (0 for plain Adam).
        weight_decay: f32,
    },
    /// Adagrad (Duchi et al.): `v` accumulates squared gradients; `m` unused.
    Adagrad {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// RMSProp (Graves): `v` is an exponential moving average of squared
    /// gradients; `m` unused.
    RmsProp {
        /// Squared-gradient decay (default 0.99).
        alpha: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl UpdateRule {
    /// Adam with the conventional defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn adam() -> UpdateRule {
        UpdateRule::Adam { beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }

    /// AdamW with the given decoupled weight decay.
    pub fn adamw(weight_decay: f32) -> UpdateRule {
        UpdateRule::Adam { beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay }
    }

    /// Adagrad with the conventional default ε.
    pub fn adagrad() -> UpdateRule {
        UpdateRule::Adagrad { eps: 1e-10 }
    }

    /// RMSProp with the conventional defaults.
    pub fn rmsprop() -> UpdateRule {
        UpdateRule::RmsProp { alpha: 0.99, eps: 1e-8 }
    }

    /// Applies the rule to a contiguous range of elements.
    ///
    /// `step` is the 1-based global step count (used for Adam's bias
    /// correction). All four slices must be the same length. Delegates to
    /// the chunked vectorized kernels ([`crate::kernels::apply`]), which
    /// are bit-identical to the scalar oracle
    /// ([`UpdateRule::apply_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or `step == 0`.
    pub fn apply(
        &self,
        step: u64,
        lr: f32,
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
    ) {
        crate::kernels::apply(self, step, lr, p, g, m, v);
    }

    /// The scalar reference implementation — the oracle the vectorized
    /// kernels are conformance-tested against. Same contract as
    /// [`UpdateRule::apply`].
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or `step == 0`.
    pub fn apply_reference(
        &self,
        step: u64,
        lr: f32,
        p: &mut [f32],
        g: &[f32],
        m: &mut [f32],
        v: &mut [f32],
    ) {
        crate::kernels::apply_reference(self, step, lr, p, g, m, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_first_step_is_signed_lr() {
        // With bias correction, the first Adam step is ~lr * sign(g).
        let rule = UpdateRule::adam();
        let mut p = vec![1.0f32, 1.0];
        let mut m = vec![0.0; 2];
        let mut v = vec![0.0; 2];
        rule.apply(1, 0.1, &mut p, &[0.5, -0.5], &mut m, &mut v);
        assert!((p[0] - 0.9).abs() < 1e-4, "p[0]={}", p[0]);
        assert!((p[1] - 1.1).abs() < 1e-4, "p[1]={}", p[1]);
    }

    #[test]
    fn adam_matches_reference_two_steps() {
        // Hand-computed reference for a single element.
        let (b1, b2, eps, lr) = (0.9f32, 0.999f32, 1e-8f32, 0.01f32);
        let rule = UpdateRule::Adam { beta1: b1, beta2: b2, eps, weight_decay: 0.0 };
        let mut p = vec![2.0f32];
        let mut m = vec![0.0];
        let mut v = vec![0.0];
        let g1 = 0.3f32;
        rule.apply(1, lr, &mut p, &[g1], &mut m, &mut v);
        let m1 = (1.0 - b1) * g1;
        let v1 = (1.0 - b2) * g1 * g1;
        let p1 = 2.0 - lr * (m1 / (1.0 - b1)) / ((v1 / (1.0 - b2)).sqrt() + eps);
        assert!((p[0] - p1).abs() < 1e-6);
        let g2 = -0.1f32;
        rule.apply(2, lr, &mut p, &[g2], &mut m, &mut v);
        let m2 = b1 * m1 + (1.0 - b1) * g2;
        let v2 = b2 * v1 + (1.0 - b2) * g2 * g2;
        let p2 = p1
            - lr * (m2 / (1.0 - b1 * b1)) / ((v2 / (1.0 - b2 * b2)).sqrt() + eps);
        assert!((p[0] - p2).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_weights() {
        let rule = UpdateRule::adamw(0.1);
        let mut p = vec![1.0f32];
        let mut m = vec![0.0];
        let mut v = vec![0.0];
        rule.apply(1, 0.01, &mut p, &[0.0], &mut m, &mut v);
        assert!((p[0] - (1.0 - 0.01 * 0.1)).abs() < 1e-7);
    }

    #[test]
    fn adagrad_accumulates_monotonically() {
        let rule = UpdateRule::adagrad();
        let mut p = vec![0.0f32];
        let mut m = vec![0.0];
        let mut v = vec![0.0];
        rule.apply(1, 0.1, &mut p, &[1.0], &mut m, &mut v);
        let d1 = -p[0];
        let before = p[0];
        rule.apply(2, 0.1, &mut p, &[1.0], &mut m, &mut v);
        let d2 = before - p[0];
        assert!(d2 < d1, "adagrad steps should shrink: {d1} then {d2}");
        assert!(v[0] > 1.9);
    }

    #[test]
    fn rmsprop_tracks_recent_magnitude() {
        let rule = UpdateRule::rmsprop();
        let mut p = vec![0.0f32];
        let mut m = vec![0.0];
        let mut v = vec![0.0];
        for s in 1..=500 {
            rule.apply(s, 0.01, &mut p, &[2.0], &mut m, &mut v);
        }
        // v converges toward g^2 = 4 (alpha=0.99 => ~1% residual at 500 steps).
        assert!((v[0] - 4.0).abs() < 0.1, "v={}", v[0]);
    }

    #[test]
    fn elementwise_independence() {
        // Updating [a, b] together equals updating each alone — the property
        // that makes subgroup scheduling safe.
        let rule = UpdateRule::adam();
        let g = [0.7f32, -0.3];
        let mut p_all = vec![1.0f32, 2.0];
        let mut m_all = vec![0.0; 2];
        let mut v_all = vec![0.0; 2];
        rule.apply(1, 0.05, &mut p_all, &g, &mut m_all, &mut v_all);

        for i in 0..2 {
            let mut p = vec![[1.0f32, 2.0][i]];
            let mut m = vec![0.0];
            let mut v = vec![0.0];
            rule.apply(1, 0.05, &mut p, &[g[i]], &mut m, &mut v);
            assert_eq!(p[0], p_all[i]);
            assert_eq!(m[0], m_all[i]);
            assert_eq!(v[0], v_all[i]);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_rejected() {
        UpdateRule::adam().apply(0, 0.1, &mut [0.0], &[0.0], &mut [0.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        UpdateRule::adam().apply(1, 0.1, &mut [0.0, 1.0], &[0.0], &mut [0.0, 0.0], &mut [0.0, 0.0]);
    }
}
