//! Property tests for the paper's core correctness claim (§4.1): optimizer
//! subgroups can be updated in any order without affecting the result.

use dos_optim::{MixedPrecisionState, UpdateRule};
use proptest::prelude::*;

/// Builds a random partition of `0..n` into contiguous ranges.
fn partition(n: usize, cuts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    bounds.windows(2).map(|w| w[0]..w[1]).filter(|r| !r.is_empty()).collect()
}

fn rules() -> impl Strategy<Value = UpdateRule> {
    prop_oneof![
        Just(UpdateRule::adam()),
        Just(UpdateRule::adamw(0.01)),
        Just(UpdateRule::adagrad()),
        Just(UpdateRule::rmsprop()),
    ]
}

proptest! {
    /// Any partition, updated in any permutation, equals the monolithic step
    /// bit-for-bit — for every supported rule.
    #[test]
    fn subgroup_permutation_invariance(
        n in 1usize..120,
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        perm_seed in any::<u64>(),
        rule in rules(),
    ) {
        let init: Vec<f32> = (0..n).map(|i| ((i * 31 + 7) % 23) as f32 / 23.0).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i * 17 + 3) % 19) as f32 / 19.0 - 0.5).collect();

        let mut mono = MixedPrecisionState::new(init.clone(), rule, 0.01);
        mono.full_step(&grads);

        let mut ranges = partition(n, &cuts);
        // Deterministic pseudo-shuffle of the subgroup order.
        let len = ranges.len();
        for i in 0..len {
            let j = ((perm_seed.rotate_left(i as u32) as usize) % len).min(len - 1);
            ranges.swap(i, j);
        }

        let mut sharded = MixedPrecisionState::new(init, rule, 0.01);
        sharded.begin_step();
        for r in &ranges {
            sharded.update_range(r.clone(), &grads[r.clone()]);
        }

        prop_assert_eq!(mono.params(), sharded.params());
        prop_assert_eq!(mono.momentum(), sharded.momentum());
        prop_assert_eq!(mono.variance(), sharded.variance());
    }

    /// Multi-step: interleaving different partitions across steps still
    /// matches the monolithic trajectory.
    #[test]
    fn multi_step_sharded_trajectory(
        n in 2usize..60,
        steps in 1usize..5,
        cuts in proptest::collection::vec(any::<usize>(), 0..4),
    ) {
        let init: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let mut mono = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.02);
        let mut sharded = MixedPrecisionState::new(init, UpdateRule::adam(), 0.02);
        for s in 0..steps {
            let grads: Vec<f32> = (0..n).map(|i| ((i + s) as f32 * 0.7).cos()).collect();
            mono.full_step(&grads);
            sharded.begin_step();
            let mut ranges = partition(n, &cuts);
            if s % 2 == 1 { ranges.reverse(); }
            for r in ranges {
                sharded.update_range(r.clone(), &grads[r]);
            }
        }
        prop_assert_eq!(mono.params(), sharded.params());
    }

    /// snapshot -> external update -> write_back equals updating in place
    /// (the GPU-offload round trip of Algorithm 1).
    #[test]
    fn offload_round_trip_equivalence(
        n in 4usize..80,
        split in 1usize..3,
    ) {
        let split = (n / (split + 1)).max(1);
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
        let grads: Vec<f32> = (0..n).map(|i| (i as f32 * 0.9).sin() * 0.1).collect();

        let mut inplace = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
        inplace.full_step(&grads);

        let mut offloaded = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        offloaded.begin_step();
        // First range updated "on the CPU" in place.
        offloaded.update_range(0..split, &grads[0..split]);
        // Second range round-trips through a simulated device buffer.
        let (p, m, v) = offloaded.snapshot_range(split..n);
        let (mut p, mut m, mut v) = (p.to_vec(), m.to_vec(), v.to_vec());
        offloaded.rule().apply(1, 0.01, &mut p, &grads[split..n], &mut m, &mut v);
        offloaded.write_back_range(split..n, &p, &m, &v);

        prop_assert_eq!(inplace.params(), offloaded.params());
        prop_assert_eq!(inplace.momentum(), offloaded.momentum());
        prop_assert_eq!(inplace.variance(), offloaded.variance());
    }
}
